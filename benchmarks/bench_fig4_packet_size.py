"""Fig. 4 -- execution time vs request packet size, per PCIe bandwidth.

Paper setup: PCIe links at 4/8/16/32/64 GB/s; packet sizes 64 B..4096 B.
Expected shape: a convex curve with the optimum around 256 B; the paper
quantifies 64 B at +12% and 4096 B at +36% relative to the optimum.

The packet-size dependence is visible across *all* link speeds in the
paper's figure, so this experiment runs the wide-ingest systolic
configuration (the link, not the array, must be the bottleneck).
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep
from repro.sweep.experiments import (
    FIG4_LINKS as LINKS,
    FIG4_PACKETS as PACKETS,
)


def _run_sweep(size: int) -> dict:
    spec = build_sweep("fig4-packet-grid", size=size)
    return run_sweep(spec, **sweep_options()).results()


def test_fig4_packet_size_sweep(benchmark, repro_mode):
    size = scaled(256, 2048)

    results = benchmark.pedantic(
        lambda: _run_sweep(size), rounds=1, iterations=1
    )

    banner(f"Fig. 4: packet-size sweep, GEMM {size}")
    rows = []
    for label in LINKS:
        row = [f"{label} GB/s"]
        for packet in PACKETS:
            row.append(f"{results[(label, packet)].seconds * 1e6:.0f}")
        rows.append(row)
    print(format_table(
        ["link \\ packet B"] + [str(p) for p in PACKETS],
        rows,
        title="execution time (us)",
    ))

    # Overheads relative to each link's optimum.
    print("\nOverhead vs optimum (paper: 64 B -> +12%, 4096 B -> +36%):")
    convex_links = 0
    for label in LINKS:
        series = {p: results[(label, p)].ticks for p in PACKETS}
        best_packet = min(series, key=series.get)
        small = 100 * (series[64] / series[best_packet] - 1)
        large = 100 * (series[4096] / series[best_packet] - 1)
        print(
            f"  {label:3d} GB/s: optimum {best_packet:4d} B, "
            f"64 B {small:+.1f}%, 4096 B {large:+.1f}%"
        )
        if series[64] > series[best_packet] < series[4096]:
            convex_links += 1

    # Shape assertions: convexity (both extremes lose) on most links and
    # an interior optimum on the paper's headline 8 GB/s link.  Our
    # low-speed optimum sits a few doublings right of the paper's 256 B
    # (EXPERIMENTS.md); the fastest link matches 256 B exactly.
    assert convex_links >= 3, "packet-size curve not convex"
    series8 = {p: results[(8, p)].ticks for p in PACKETS}
    best8 = min(series8, key=series8.get)
    assert 128 <= best8 <= 2048, f"8 GB/s optimum at {best8} B"
