#!/usr/bin/env python
"""Simulator-core microbenchmarks: the tracked perf trajectory.

Measures the hot paths the sweep engine leans on -- raw event-loop
throughput, cancellation churn, quiesce-throttled idle loops, one GEMM
point, a stats snapshot, a small fig6 grid, and the result server's
warm-query latency and miss-coalescing factor -- and records them in
``BENCH_core.json`` so every PR can show its perf delta against the
committed numbers (see docs/PERFORMANCE.md).

Usage::

    python benchmarks/bench_perf_core.py                  # print metrics
    python benchmarks/bench_perf_core.py --quick          # CI-sized run
    python benchmarks/bench_perf_core.py --record after   # update JSON
    python benchmarks/bench_perf_core.py --quick --check BENCH_core.json

``--record {before,after}`` merges the current run into the JSON file
under the current mode (quick/full).  ``--check`` compares the current
run against the file's ``after`` numbers and exits non-zero on a >30%
(``--tolerance``) regression; comparisons use *calibration-normalized*
values so the gate tracks simulator regressions, not machine speed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
try:  # honour an externally-provided tree (e.g. PYTHONPATH to a baseline)
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SystemConfig  # noqa: E402
from repro.core.runner import (  # noqa: E402
    GemmRunner,
    run_gemm,
    run_multi_gemm,
    run_peer_transfer,
)
from repro.sim.eventq import ParallelSimulator, Simulator  # noqa: E402
from repro.sweep import build_sweep, run_sweep  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_core.json"

#: Metrics where larger is faster; everything else is seconds-like.
HIGHER_IS_BETTER = {
    "calib_kops",
    "event_throughput_eps",
    "event_cancel_eps",
    "idle_loop_eps",
    "surrogate_grid_eps",
    "serve_coalesce_x",
}

#: Metrics gated *absolutely* (the value is already a fraction sitting
#: near zero, so a relative tolerance is meaningless): name -> max
#: allowed value.  Excluded from normalization and speedup ratios.
ABSOLUTE_GATES = {"tracer_off_overhead": 0.02}

#: Metrics gated absolutely from *below*: name -> min allowed value.
#: ``serve_coalesce_x`` is a machine-free ratio (identical concurrent
#: cold queries per simulation actually run), so calibration
#: normalization would corrupt it and a relative tolerance is
#: meaningless -- anything under the floor means miss coalescing broke.
ABSOLUTE_MIN_GATES = {"serve_coalesce_x": 6.0}


def _best_of(fn, repeats: int = 5):
    """Run ``fn`` ``repeats`` times; return the fastest (value, seconds)."""
    best = None
    for _ in range(repeats):
        value, elapsed = fn()
        if best is None or elapsed < best[1]:
            best = (value, elapsed)
    return best


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def bench_calibration() -> float:
    """Machine-speed yardstick: pure-Python kilo-ops per second.

    Used to normalize the regression gate across hosts of different
    speeds -- the ratio metric/calibration is (roughly) machine-free.
    """

    def run():
        n = 200_000
        t0 = time.perf_counter()
        acc = 0
        values = list(range(64))
        for i in range(n):
            acc += values[i & 63] * 3 + (i >> 2)
        t1 = time.perf_counter()
        assert acc > 0
        return n / 1e3 / (t1 - t0), t1 - t0

    return _best_of(run)[0]


# ----------------------------------------------------------------------
# Event-loop microbenchmarks
# ----------------------------------------------------------------------
#: Self-rescheduling trains kept in flight by the throughput bench.  A
#: busy simulated system (multi-channel DMA, pipelined links, DRAM banks)
#: holds hundreds of pending events, and heap depth is exactly where
#: event-comparison cost shows up (log-depth sifts on every push/pop).
EVENT_TRAINS = 512


def bench_event_throughput(total_events: int) -> float:
    """Self-rescheduling event trains: pure queue+dispatch throughput."""

    def run():
        sim = Simulator()

        # Varied coprime-ish delays so the heap order actually churns.
        def make_train(delay):
            def fire():
                sim.schedule(delay, fire)

            return fire

        for i in range(EVENT_TRAINS):
            sim.schedule(3 + (i * 7) % 97, make_train(3 + (i * 11) % 101))

        t0 = time.perf_counter()
        sim.run(max_events=total_events)
        t1 = time.perf_counter()
        return sim.events_executed / (t1 - t0), t1 - t0

    return _best_of(run)[0]


def bench_event_cancel(total_events: int) -> float:
    """Schedule-then-cancel churn: exercises lazy deletion + reuse."""

    def run():
        sim = Simulator()

        def fire():
            victim = sim.schedule(10, _noop)
            victim.cancel()
            sim.schedule(3, fire)

        sim.schedule(1, fire)
        t0 = time.perf_counter()
        sim.run(max_events=total_events)
        t1 = time.perf_counter()
        return sim.events_executed / (t1 - t0), t1 - t0

    return _best_of(run)[0]


def _noop() -> None:
    pass


def bench_idle_loop(total_events: int) -> float:
    """run_until_idle with a flag quiesce: measures throttled re-checks."""

    def run():
        sim = Simulator()
        state = {"left": total_events}

        def fire():
            state["left"] -= 1
            if state["left"] > 0:
                sim.schedule(2, fire)

        sim.schedule(1, fire)
        t0 = time.perf_counter()
        sim.run_until_idle(lambda: state["left"] <= 0)
        t1 = time.perf_counter()
        return total_events / (t1 - t0), t1 - t0

    return _best_of(run)[0]


# ----------------------------------------------------------------------
# System-level benchmarks
# ----------------------------------------------------------------------
def bench_gemm_point(size: int) -> float:
    """One warm GEMM point (memoized system, like a sweep worker sees)."""
    config = SystemConfig.pcie_8gb()
    run_gemm(config, size, size, size)  # warm the system memo

    def run():
        t0 = time.perf_counter()
        run_gemm(config, size, size, size)
        t1 = time.perf_counter()
        return t1 - t0, t1 - t0

    return _best_of(run)[0]


def bench_multigemm_point(size: int, devices: int = 2) -> float:
    """One warm multi-device contention point on the switched fabric.

    Exercises the topology subsystem's hot paths: per-endpoint DMA entry
    ports, round-robin arbitration on the shared links, and the
    cluster-wide snapshot.
    """
    config = SystemConfig.pcie_2gb(num_accelerators=devices)
    run_multi_gemm(config, size, size, size)  # warm the system memo

    def run():
        t0 = time.perf_counter()
        run_multi_gemm(config, size, size, size)
        t1 = time.perf_counter()
        return t1 - t0, t1 - t0

    return _best_of(run)[0]


def bench_p2p_transfer(size_bytes: int) -> float:
    """One warm peer-to-peer DMA point (endpoint -> switch -> endpoint)."""
    config = SystemConfig.pcie_2gb(num_accelerators=2)
    run_peer_transfer(config, size_bytes, mode="p2p")  # warm the memo

    def run():
        t0 = time.perf_counter()
        run_peer_transfer(config, size_bytes, mode="p2p")
        t1 = time.perf_counter()
        return t1 - t0, t1 - t0

    return _best_of(run)[0]


def bench_pdes_point(size: int, domains: int = 4) -> float:
    """One warm multi-device point under intra-point PDES.

    Same workload as :func:`bench_multigemm_point` scaled to four
    endpoints, but simulated on a :class:`ParallelSimulator` with one
    event domain per endpoint subtree (docs/PARALLEL.md).  The delta
    against the classic path is the price of domain-partitioned
    execution on a real system model.
    """
    config = SystemConfig.pcie_2gb(num_accelerators=domains).with_domains(
        domains
    )
    run_multi_gemm(config, size, size, size)  # warm the system memo

    def run():
        t0 = time.perf_counter()
        run_multi_gemm(config, size, size, size)
        t1 = time.perf_counter()
        return t1 - t0, t1 - t0

    return _best_of(run)[0]


def bench_pdes_sync_overhead(total_events: int, domains: int = 4) -> float:
    """Domain-sync overhead: parallel minus classic loop time.

    Runs the same self-rescheduling event trains once on a classic
    :class:`Simulator` and once on a :class:`ParallelSimulator` whose
    trains are spread across ``domains`` event domains (quantum 1, so
    every distinct tick is its own lockstep round).  The difference is
    the pure cost of the quantum barrier plus the K-way head scan --
    the overhead budget that intra-point PDES must amortize.

    A difference of two timings amplifies machine noise, so instead of
    subtracting independent best-ofs this takes the *median of paired
    differences*: each repeat times classic and parallel back to back,
    so transient contention hits both sides of one pair and cancels.
    """

    def populate(sim, to_domain):
        def make_train(delay):
            def fire():
                sim.schedule(delay, fire)

            return fire

        for i in range(EVENT_TRAINS):
            to_domain(
                i % domains, 3 + (i * 7) % 97, make_train(3 + (i * 11) % 101)
            )

    def run_classic():
        sim = Simulator()
        populate(sim, lambda dom, delay, fn: sim.schedule(delay, fn))
        t0 = time.perf_counter()
        sim.run(max_events=total_events)
        t1 = time.perf_counter()
        return t1 - t0

    def run_parallel():
        sim = ParallelSimulator(domains, quantum=1)
        populate(sim, sim.schedule_in)
        t0 = time.perf_counter()
        sim.run(max_events=total_events)
        t1 = time.perf_counter()
        return t1 - t0

    diffs = sorted(run_parallel() - run_classic() for _ in range(5))
    return max(diffs[len(diffs) // 2], 0.0)


def bench_tracer_off_overhead(size: int) -> float:
    """Fractional cost of the *disabled* telemetry layer on a warm point.

    With telemetry merely importable (module loaded, session inactive)
    every component hook is ``None`` and the only telemetry work left on
    a point is the system factory consulting the session on each
    acquisition.  This bench times a warm GEMM point on that normal
    path, then again with the per-acquisition consultation
    short-circuited, and reports the median of paired fractional
    differences (pairing cancels transient machine noise, as in
    :func:`bench_pdes_sync_overhead`).  The per-event ``is None`` hook
    checks are co-located with pre-existing branches and cannot be
    separated out; everything the telemetry layer *added* to the point
    path is what this measures.  CI gates it absolutely (<2%, see
    ``ABSOLUTE_GATES``) -- a relative tolerance is useless on a number
    that should sit at zero.
    """
    from repro.telemetry import state as telemetry_state

    config = SystemConfig.pcie_8gb()
    telemetry_state.deactivate()
    run_gemm(config, size, size, size)  # warm the system memo

    def timed_points() -> float:
        t0 = time.perf_counter()
        for _ in range(3):
            run_gemm(config, size, size, size)
        return time.perf_counter() - t0

    real_hook = telemetry_state.on_system_acquired

    def noop_hook(system) -> None:
        return None

    def one_side(short_circuit: bool) -> float:
        if short_circuit:
            telemetry_state.on_system_acquired = noop_hook
        try:
            return timed_points()
        finally:
            telemetry_state.on_system_acquired = real_hook

    diffs = []
    for pair in range(9):
        # Alternate which side runs first so cache-warming / frequency
        # drift biases cancel across pairs instead of accumulating.
        if pair % 2 == 0:
            with_layer = one_side(False)
            without_layer = one_side(True)
        else:
            without_layer = one_side(True)
            with_layer = one_side(False)
        diffs.append((with_layer - without_layer) / without_layer)
    diffs.sort()
    return max(diffs[len(diffs) // 2], 0.0)


def bench_snapshot(size: int, iterations: int) -> float:
    """Stat snapshot cost in microseconds, one component touched.

    Mirrors the per-point pattern of a sweep: between snapshots only a
    handful of components mutate, so the walk should cost O(touched).
    """
    config = SystemConfig.pcie_8gb()
    runner = GemmRunner()
    system = runner.acquire_system(config)
    runner.drive(system, m=size, k=size, n=size)
    touched = system.mem_ctrl.stats.scalar("bytes")
    runner.snapshot(system)  # prime any caches

    def run():
        t0 = time.perf_counter()
        for _ in range(iterations):
            touched.inc(0)  # dirty one component, values unchanged
            runner.snapshot(system)
        t1 = time.perf_counter()
        return (t1 - t0) / iterations * 1e6, t1 - t0

    return _best_of(run)[0]


def bench_fig6_grid(size: int) -> float:
    """Serial, uncached fig6(a) small-GEMM grid: sweep wall-clock."""
    spec = build_sweep("fig6a-mem-bandwidth", size=size)

    def run():
        t0 = time.perf_counter()
        report = run_sweep(spec, workers=1, cache=False)
        t1 = time.perf_counter()
        assert report.misses == len(spec.points)
        return t1 - t0, t1 - t0

    return _best_of(run, repeats=3)[0]


def bench_surrogate_grid(quick: bool) -> float:
    """Vectorized surrogate scoring throughput, points per second.

    Scores a cross-product GEMM design grid (matrix size x packet size x
    lane speed x lane count x memory bandwidth) through the analytical
    tier's batch path -- the ``estimate_grid`` rate the fidelity ladder
    leans on to make million-point grids browsable (docs/SURROGATE.md
    gates this at >= 100k points/s).
    """
    from repro.surrogate import SurrogateGrid, estimate_grid

    sizes = 20 if quick else 40
    grid = SurrogateGrid(
        base=SystemConfig.pcie_8gb(),
        axes={
            "size": [16 * (i + 1) for i in range(sizes)],
            "packet_size": [64, 128, 256, 512, 1024, 2048, 4096],
            "lane_gbps": [2.5, 5.0, 8.0, 16.0, 32.0, 64.0],
            "lanes": [1, 2, 4, 8, 16],
            "mem_gbps": [10, 20, 40, 80, 160, 320],
        },
    )

    def run():
        t0 = time.perf_counter()
        estimates = estimate_grid(grid)
        t1 = time.perf_counter()
        assert estimates.num_points == grid.num_points
        return grid.num_points / (t1 - t0), t1 - t0

    return _best_of(run, repeats=3)[0]


def bench_ladder_fig6(size: int) -> float:
    """Fidelity ladder on the fig6 grid: score, prune to 10%, simulate.

    Same grid as :func:`bench_fig6_grid`, but pruned by the surrogate
    before simulation -- the recorded ratio ``fig6_grid_s /
    ladder_fig6_s`` is the ladder's end-to-end win (>= 5x at top-K=10%).
    """
    from repro.surrogate import LadderSpec, run_ladder

    spec = build_sweep("fig6a-mem-bandwidth", size=size)
    ladder = LadderSpec(spec=spec, top_k="10%", margin=0.0)

    def run():
        t0 = time.perf_counter()
        report = run_ladder(ladder, workers=1, cache=False)
        t1 = time.perf_counter()
        assert report.pruned > 0
        return t1 - t0, t1 - t0

    return _best_of(run, repeats=3)[0]


# ----------------------------------------------------------------------
# Result-server benchmarks (docs/SERVING.md)
# ----------------------------------------------------------------------
#: Small served sweep: two 16x16 GEMM points, keyed by packet size.
SERVE_SWEEP = "packet-size"
SERVE_ARGS = {"size": 16, "packets": [64, 128]}
SERVE_KEY = "64"


def bench_serve_query_lat(quick: bool) -> float:
    """Warm point-query p50 through the result server, microseconds.

    Starts a real server on an ephemeral port against a throwaway cache
    directory, fills one point, then times warm queries over a single
    keep-alive connection -- the steady-state cost of serving a cached
    record over HTTP (parse, index lookup, cache read, JSON response).
    """
    import http.client
    import tempfile

    from repro.serve import ServeSettings, ServerThread

    rounds = 200 if quick else 600
    body = json.dumps(
        {"sweep": SERVE_SWEEP, "key": SERVE_KEY, "args": SERVE_ARGS}
    )
    with tempfile.TemporaryDirectory() as tmp:
        settings = ServeSettings(port=0, cache_dir=tmp, batch_window=0.0)
        with ServerThread(settings) as st:
            conn = http.client.HTTPConnection(st.host, st.port, timeout=120)

            def once() -> dict:
                conn.request("POST", "/query", body=body)
                response = conn.getresponse()
                return json.loads(response.read())

            assert once()["cached"] is False  # the one cold fill
            samples = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                payload = once()
                samples.append((time.perf_counter() - t0) * 1e6)
            conn.close()
            assert payload["cached"] is True
    samples.sort()
    return samples[len(samples) // 2]


def bench_serve_coalesce() -> float:
    """Single-flight factor: identical concurrent colds per simulation.

    Eight clients ask for the same uncached point at once; the ratio of
    queries to points actually simulated (the service's fill-points
    probe) is 8.0 when miss coalescing works and 1.0 when every client
    pays for its own run.  Machine-free by construction, so CI gates it
    absolutely (>= 6, see ``ABSOLUTE_MIN_GATES``).
    """
    import http.client
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import ServeSettings, ServerThread

    clients = 8
    body = json.dumps(
        {"sweep": SERVE_SWEEP, "key": SERVE_KEY, "args": SERVE_ARGS}
    )
    with tempfile.TemporaryDirectory() as tmp:
        settings = ServeSettings(port=0, cache_dir=tmp, batch_window=0.02)
        with ServerThread(settings) as st:
            def one(_index: int) -> None:
                conn = http.client.HTTPConnection(st.host, st.port,
                                                  timeout=120)
                conn.request("POST", "/query", body=body)
                response = conn.getresponse()
                assert response.status == 200, response.read()
                response.read()
                conn.close()

            with ThreadPoolExecutor(clients) as pool:
                list(pool.map(one, range(clients)))
            simulated = st.service.fill_points
    assert simulated >= 1
    return round(clients / simulated, 2)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def collect_metrics(quick: bool) -> dict:
    events = 100_000 if quick else 300_000
    gemm_size = 64 if quick else 96
    grid_size = 128 if quick else 256
    snap_iters = 200 if quick else 500

    metrics = {}
    metrics["calib_kops"] = round(bench_calibration(), 1)
    metrics["event_throughput_eps"] = round(bench_event_throughput(events), 1)
    metrics["event_cancel_eps"] = round(bench_event_cancel(events), 1)
    metrics["idle_loop_eps"] = round(bench_idle_loop(events), 1)
    metrics["gemm_point_s"] = round(bench_gemm_point(gemm_size), 4)
    metrics["multigemm_point_s"] = round(
        bench_multigemm_point(gemm_size), 4
    )
    metrics["p2p_transfer_s"] = round(
        bench_p2p_transfer(128 * 1024 if quick else 512 * 1024), 4
    )
    metrics["pdes_point_s"] = round(bench_pdes_point(gemm_size), 4)
    metrics["pdes_sync_overhead_s"] = round(
        bench_pdes_sync_overhead(events), 4
    )
    metrics["snapshot_us"] = round(bench_snapshot(gemm_size, snap_iters), 2)
    metrics["tracer_off_overhead"] = round(
        bench_tracer_off_overhead(gemm_size), 4
    )
    metrics["fig6_grid_s"] = round(bench_fig6_grid(grid_size), 3)
    metrics["surrogate_grid_eps"] = round(bench_surrogate_grid(quick), 1)
    metrics["ladder_fig6_s"] = round(bench_ladder_fig6(grid_size), 3)
    metrics["serve_query_lat_us"] = round(bench_serve_query_lat(quick), 1)
    metrics["serve_coalesce_x"] = bench_serve_coalesce()
    return metrics


def merge_best(old: Optional[dict], new: dict) -> dict:
    """Fold a fresh run into recorded numbers, keeping the best of each.

    Re-recording the same key therefore acts as extra best-of rounds --
    interleaving ``--record before`` / ``--record after`` runs averages
    out machine-speed drift between the two trees being compared.

    The ``_normalized`` sub-dict merges recursively: each run computes
    its normalized values from *its own* calibration before merging, so
    the regression gate never compares against a raw metric paired with
    a different run's ``calib_kops``.
    """
    if not old:
        return new
    merged = dict(old)
    for name, value in new.items():
        prior = merged.get(name)
        if name == "_normalized":
            merged[name] = merge_best(
                prior if isinstance(prior, dict) else None, value
            )
        elif not isinstance(prior, (int, float)):
            merged[name] = value
        elif name in HIGHER_IS_BETTER:
            merged[name] = max(prior, value)
        else:
            merged[name] = min(prior, value)
    return merged


def speedups(before: dict, after: dict) -> dict:
    """Per-metric speedup factor (>1 means after is faster)."""
    out = {}
    for name, old in before.items():
        new = after.get(name)
        if not isinstance(old, (int, float)) or not new:
            continue
        if name == "calib_kops" or name.startswith("_"):
            continue  # machine yardstick / bookkeeping, not tracked
        if name in ABSOLUTE_GATES or name in ABSOLUTE_MIN_GATES:
            continue  # absolutely gated; a ratio of it is noise
        ratio = new / old if name in HIGHER_IS_BETTER else old / new
        out[name] = round(ratio, 2)
    return out


def normalized(metrics: dict) -> dict:
    """Calibration-normalized values (machine-speed independent).

    Recorded runs carry their own coherent normalization under
    ``_normalized`` (same-run calibration); when present it is returned
    as-is, so merged documents never pair a metric with another run's
    ``calib_kops``.
    """
    stored = metrics.get("_normalized")
    if isinstance(stored, dict):
        return stored
    calib = metrics.get("calib_kops") or 1.0
    out = {}
    for name, value in metrics.items():
        if name == "calib_kops" or name.startswith("_"):
            continue
        if name in ABSOLUTE_GATES or name in ABSOLUTE_MIN_GATES:
            continue  # already dimensionless; gated absolutely
        if not isinstance(value, (int, float)):
            continue
        # eps/calib and seconds*calib are both ~machine-free.
        out[name] = (value / calib if name in HIGHER_IS_BETTER
                     else value * calib)
    return out


def check_regression(current: dict, committed: dict, tolerance: float) -> int:
    """Exit code 1 if any normalized metric regressed past tolerance."""
    norm_now = normalized(current)
    norm_ref = normalized(committed)
    failures = []
    for name, ref in norm_ref.items():
        now = norm_now.get(name)
        if now is None or ref == 0:
            continue
        if name in HIGHER_IS_BETTER:
            regression = (ref - now) / ref
        else:
            regression = (now - ref) / ref
        marker = "REGRESSED" if regression > tolerance else "ok"
        print(f"  {name:24s} {regression * 100:+7.1f}%  {marker}")
        if regression > tolerance:
            failures.append(name)
    for name, limit in ABSOLUTE_GATES.items():
        now = current.get(name)
        if not isinstance(now, (int, float)):
            continue
        marker = "REGRESSED" if now > limit else "ok"
        print(f"  {name:24s} {now * 100:+7.2f}% "
              f"(absolute limit {limit * 100:.0f}%)  {marker}")
        if now > limit:
            failures.append(name)
    for name, floor in ABSOLUTE_MIN_GATES.items():
        now = current.get(name)
        if not isinstance(now, (int, float)):
            continue
        marker = "REGRESSED" if now < floor else "ok"
        print(f"  {name:24s} {now:8.2f}  "
              f"(absolute floor {floor:g})  {marker}")
        if now < floor:
            failures.append(name)
    if failures:
        print(f"perf check FAILED: {', '.join(failures)} "
              f"regressed more than {tolerance * 100:.0f}%")
        return 1
    print("perf check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized problem set")
    parser.add_argument("--record", choices=["before", "after"],
                        help="merge this run into the JSON under the key")
    parser.add_argument("--out", default=str(DEFAULT_JSON),
                        help="JSON file for --record (default BENCH_core.json)")
    parser.add_argument("--check", metavar="JSON",
                        help="compare against the file's 'after' numbers")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression for --check")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"bench_perf_core [{mode}] on {platform.python_version()} ...")
    metrics = collect_metrics(args.quick)
    for name, value in metrics.items():
        print(f"  {name:24s} {value:>14,.2f}")
    # Pair this run's metrics with its own calibration for the gate.
    metrics["_normalized"] = {
        name: round(value, 4) for name, value in normalized(metrics).items()
    }

    if args.record:
        path = Path(args.out)
        doc = json.loads(path.read_text()) if path.exists() else {"schema": 1}
        section = doc.setdefault(mode, {})
        section[args.record] = merge_best(section.get(args.record), metrics)
        if "before" in section and "after" in section:
            section["speedup"] = speedups(section["before"], section["after"])
        doc["meta"] = {
            "python": platform.python_version(),
            "generated_by": "benchmarks/bench_perf_core.py",
        }
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"recorded {mode}/{args.record} -> {path}")

    if args.check:
        doc = json.loads(Path(args.check).read_text())
        committed = (doc.get(mode) or {}).get("after")
        if not committed:
            print(f"no {mode}/after numbers in {args.check}; nothing to check")
            return 0
        print(f"checking against {args.check} [{mode}/after], "
              f"tolerance {args.tolerance * 100:.0f}%:")
        return check_regression(metrics, committed, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
