"""Fig. 3 -- GEMM execution time vs PCIe lanes and per-lane speed.

Paper setup: 2048x2048 GEMM; lanes in {2, 4, 8, 16}, lane speeds from
2 to 64 Gb/s.  Expected shape: execution time falls monotonically with
bandwidth and saturates when the system turns compute-bound around the
16-lane configurations; the paper's best-vs-worst gap is ~11.1x
(1109.9%).
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep

LANES = (2, 4, 8, 16)
SPEEDS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _run_sweep(size: int) -> dict:
    spec = build_sweep("pcie-bandwidth", size=size,
                       lanes=LANES, speeds=SPEEDS)
    return run_sweep(spec, **sweep_options()).results()


def test_fig3_bandwidth_sweep(benchmark, repro_mode):
    size = scaled(256, 2048)

    results = benchmark.pedantic(
        lambda: _run_sweep(size), rounds=1, iterations=1
    )

    banner(f"Fig. 3: PCIe bandwidth sweep, GEMM {size}")
    rows = []
    for lanes in LANES:
        row = [f"x{lanes}"]
        for gbps in SPEEDS:
            row.append(f"{results[(lanes, gbps)].seconds * 1e6:.0f}")
        rows.append(row)
    print(format_table(
        ["lanes \\ Gb/s"] + [f"{s:g}" for s in SPEEDS],
        rows,
        title="execution time (us)",
    ))

    ticks = {key: r.ticks for key, r in results.items()}
    worst = max(ticks.values())
    best = min(ticks.values())
    print(f"\nBest outperforms worst by {worst / best:.1f}x "
          f"(paper: up to 11.1x / 1109.9%)")

    # Shape assertions ------------------------------------------------
    # Monotone in lane speed for every lane count.
    for lanes in LANES:
        series = [ticks[(lanes, s)] for s in SPEEDS]
        assert all(a >= b for a, b in zip(series, series[1:])), (
            f"execution time not monotone for x{lanes}"
        )
    # Compute-bound saturation: at 16 lanes the fastest two speeds are
    # within a few percent of each other.
    fast = ticks[(16, SPEEDS[-1])]
    near = ticks[(16, SPEEDS[-2])]
    assert near / fast < 1.05, "no compute-bound saturation at 16 lanes"
    # The gap is an order of magnitude, as in the paper.
    assert worst / best > 5
