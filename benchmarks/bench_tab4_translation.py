"""Table IV -- address-translation metrics vs matrix size.

Paper setup: GEMM sizes 64..2048 under the DC access method with the
SMMU in the path.  The paper's row set: memory footprint (pages),
translation count, mean translation time, PTW count, mean PTW time,
uTLB lookups, uTLB misses, and translation overhead %.

Exact identities reproduced by construction:

* footprint pages = 3 * N^2 * 4 B / 4 KiB  (12 pages at N=64, 12288 at
  N=2048 -- matches the paper exactly),
* uTLB lookups = streamed lines = N^3/128 reads + N^2/16 writebacks.

Shapes reproduced by mechanism: the overhead percentage is U-shaped
(6.02% at 64 -> 1.00% at 1024 -> 6.49% at 2048 in the paper) because
small problems amortize translation poorly while the 2048 footprint
(12288 pages) overflows the 4096-entry main TLB and PTW counts explode
(paper: 7.7k at 1024 -> 479k at 2048).

Runs through the ``tab4-translation`` registered sweep; the Table IV
metric dict is part of the cached GEMM record, so replays are free.
"""

from conftest import FULL, banner, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep

SIZES_REDUCED = (64, 128, 256, 512)
SIZES_FULL = (64, 128, 256, 512, 1024, 2048)

#: Paper values for reference printing.
PAPER = {
    "memory_footprint_pages": {64: 12, 128: 48, 256: 192, 512: 768,
                               1024: 3072, 2048: 12288},
    "trans_overhead_pct": {64: 6.02, 128: 1.87, 256: 1.59, 512: 1.30,
                           1024: 1.00, 2048: 6.49},
    "ptw_times": {64: 15, 128: 54, 256: 227, 512: 1034,
                  1024: 7675, 2048: 479244},
}


def _run_sizes(sizes) -> dict:
    spec = build_sweep("tab4-translation", sizes=sizes)
    return run_sweep(spec, **sweep_options()).results()


def test_table4_translation(benchmark, repro_mode):
    sizes = SIZES_FULL if FULL else SIZES_REDUCED

    results = benchmark.pedantic(
        lambda: _run_sizes(sizes), rounds=1, iterations=1
    )

    banner("Table IV: address translation vs matrix size")
    metrics = [
        "memory_footprint_pages",
        "translation_times",
        "trans_mean_cycles",
        "ptw_times",
        "ptw_mean_cycles",
        "utlb_lookup_times",
        "utlb_miss_times",
        "trans_overhead_pct",
    ]
    rows = []
    for metric in metrics:
        row = [metric]
        for size in sizes:
            value = results[size].table4[metric]
            row.append(f"{value:.2f}" if isinstance(value, float) else str(value))
        rows.append(row)
    print(format_table(["metric"] + [str(s) for s in sizes], rows))

    print("\nPaper reference rows:")
    for metric, values in PAPER.items():
        shown = {s: v for s, v in values.items() if s in sizes}
        print(f"  {metric}: {shown}")

    # Exact identities -------------------------------------------------
    for size in sizes:
        table4 = results[size].table4
        expected_pages = 3 * size * size * 4 // 4096
        assert table4["memory_footprint_pages"] == expected_pages, (
            f"footprint mismatch at {size}"
        )
        expected_lookups = size**3 // 128 + size * size * 4 // 64
        assert table4["utlb_lookup_times"] == expected_lookups

    # Shape: translation overhead is elevated at the smallest size
    # relative to the mid sizes (left arm of the paper's U).
    overheads = {s: results[s].table4["trans_overhead_pct"] for s in sizes}
    assert overheads[64] > overheads[256]
    if FULL:
        # Right arm: the 2048 footprint bursts the main TLB.
        assert overheads[2048] > overheads[1024]
        ptw = {s: results[s].table4["ptw_times"] for s in sizes}
        assert ptw[2048] > 20 * ptw[1024]
