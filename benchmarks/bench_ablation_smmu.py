"""Ablation -- SMMU sizing (uTLB and main TLB).

Not a paper figure: quantifies the translation-hardware sizing behind
Table IV.  Shrinking the uTLB raises miss counts (more main-TLB stalls);
shrinking the main TLB below the footprint recreates the paper's
PTW cliff at any problem size.

Runs through the ``ablation-smmu`` registered sweep; the Table IV
metrics ride inside each cached GEMM record.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep


def test_ablation_smmu_sizing(benchmark, repro_mode):
    size = scaled(128, 1024)
    footprint_pages = 3 * size * size * 4 // 4096

    def run_all():
        spec = build_sweep("ablation-smmu", size=size)
        return run_sweep(spec, **sweep_options()).results()

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner(f"Ablation: SMMU sizing, GEMM {size} "
           f"({footprint_pages} pages footprint)")
    rows = []
    for name, r in results.items():
        t4 = r.table4
        rows.append(
            (
                name,
                f"{r.seconds * 1e6:.1f}",
                int(t4["utlb_miss_times"]),
                int(t4["ptw_times"]),
                f"{t4['trans_overhead_pct']:.2f}%",
            )
        )
    print(format_table(
        ["variant", "exec us", "uTLB misses", "PTWs", "overhead"], rows
    ))

    # Smaller uTLB -> more misses.
    assert (
        results["uTLB 8"].table4["utlb_miss_times"]
        >= results["uTLB 32"].table4["utlb_miss_times"]
        >= results["uTLB 128"].table4["utlb_miss_times"]
    )
    # Main TLB below the footprint walks far more often (the Table IV
    # cliff mechanism at any scale).
    thrash_key = next(k for k in results if "thrash" in k)
    fits_key = next(k for k in results if "fits" in k)
    assert (
        results[thrash_key].table4["ptw_times"]
        > 3 * results[fits_key].table4["ptw_times"]
    )
