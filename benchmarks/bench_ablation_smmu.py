"""Ablation -- SMMU sizing (uTLB and main TLB).

Not a paper figure: quantifies the translation-hardware sizing behind
Table IV.  Shrinking the uTLB raises miss counts (more main-TLB stalls);
shrinking the main TLB below the footprint recreates the paper's
PTW cliff at any problem size.
"""

from conftest import banner, scaled

from repro import SystemConfig, format_table, run_gemm
from repro.smmu.smmu import SMMUConfig


def test_ablation_smmu_sizing(benchmark, repro_mode):
    size = scaled(128, 1024)
    footprint_pages = 3 * size * size * 4 // 4096

    def run_all():
        out = {}
        for utlb in (8, 32, 128):
            config = SystemConfig.pcie_2gb(
                smmu=SMMUConfig(utlb_entries=utlb)
            )
            out[f"uTLB {utlb}"] = run_gemm(config, size, size, size)
        # Main TLB below/above the footprint (power-of-two sizes).  A
        # 1-entry uTLB exposes every page transition to the main TLB so
        # its capacity, not uTLB locality, is what is measured.
        small_tlb = max(8, 1 << max(0, footprint_pages // 4).bit_length())
        for tlb, label in ((small_tlb, "thrash"), (4096, "fits")):
            config = SystemConfig.pcie_2gb(
                smmu=SMMUConfig(utlb_entries=1, tlb_entries=tlb,
                                tlb_assoc=min(8, tlb))
            )
            out[f"TLB {tlb} ({label})"] = run_gemm(config, size, size, size)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner(f"Ablation: SMMU sizing, GEMM {size} "
           f"({footprint_pages} pages footprint)")
    rows = []
    for name, r in results.items():
        t4 = r.table4
        rows.append(
            (
                name,
                f"{r.seconds * 1e6:.1f}",
                int(t4["utlb_miss_times"]),
                int(t4["ptw_times"]),
                f"{t4['trans_overhead_pct']:.2f}%",
            )
        )
    print(format_table(
        ["variant", "exec us", "uTLB misses", "PTWs", "overhead"], rows
    ))

    # Smaller uTLB -> more misses.
    assert (
        results["uTLB 8"].table4["utlb_miss_times"]
        >= results["uTLB 32"].table4["utlb_miss_times"]
        >= results["uTLB 128"].table4["utlb_miss_times"]
    )
    # Main TLB below the footprint walks far more often (the Table IV
    # cliff mechanism at any scale).
    thrash_key = next(k for k in results if "thrash" in k)
    fits_key = next(k for k in results if "fits" in k)
    assert (
        results[thrash_key].table4["ptw_times"]
        > 3 * results[fits_key].table4["ptw_times"]
    )