"""Fig. 2 -- roofline model of the accelerator system.

Paper setup: GEMM with dimension 1024, PCIe fixed at 8 GB/s, systolic
array computation time swept.  Expected shape: execution time is flat
(memory-bound) for small compute times and rises linearly (compute-bound)
beyond a crossover; the paper places the crossover at ~1500 ns for its
compute-time unit.

Here the sweep knob is the per-tile compute-time override.  The crossover
should sit near the per-tile data transfer time (tile traffic divided by
delivered PCIe bandwidth), which is what a roofline predicts.
"""

from conftest import banner, scaled

from repro import SystemConfig, find_crossover, format_table, roofline_sweep
from repro.sim.ticks import ns, ticks_to_ns


def _sweep_values(size: int) -> list:
    # Log-spaced compute-time overrides bracketing the transfer time.
    base = [0.1, 0.3, 1, 3, 10, 30, 100, 300]
    return [ns(x * 1000) for x in base]


def test_fig2_roofline(benchmark, repro_mode):
    size = scaled(256, 1024)
    config = SystemConfig.pcie_8gb()
    values = _sweep_values(size)

    points = benchmark.pedantic(
        lambda: roofline_sweep(config, size, values), rounds=1, iterations=1
    )

    banner(f"Fig. 2: roofline, GEMM {size}, PCIe-8GB")
    rows = [
        (
            f"{ticks_to_ns(p.compute_ticks):.0f}",
            f"{ticks_to_ns(p.exec_ticks) / 1000:.1f}",
            f"{p.normalized:.4f}",
        )
        for p in sorted(points, key=lambda p: p.compute_ticks)
    ]
    print(format_table(
        ["tile compute ns", "exec us", "normalized"], rows
    ))

    crossover = find_crossover(points)
    assert crossover is not None, "sweep never left the memory-bound region"
    print(f"\nMeasured crossover: tile compute ~{ticks_to_ns(crossover):.0f} ns")
    per_tile_bytes = 2 * 16 * size * 4
    print(
        f"Roofline prediction: per-tile traffic {per_tile_bytes} B / "
        f"~6 GB/s delivered = ~{per_tile_bytes / 6:.0f} ns"
    )
    print("Paper: memory-bound above ~1500 ns compute time at its unit; "
          "shape = plateau then linear rise (reproduced).")

    # Shape assertions: plateau on the fast side, growth on the slow side.
    ordered = sorted(points, key=lambda p: p.compute_ticks)
    assert ordered[-1].exec_ticks > 2 * ordered[0].exec_ticks
    plateau_ratio = ordered[1].exec_ticks / ordered[0].exec_ticks
    assert plateau_ratio < 1.1
