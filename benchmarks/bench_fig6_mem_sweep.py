"""Fig. 6 -- device-memory bandwidth (a) and latency (b) sensitivity.

Paper setup: HBM-class device memory under gem5's default DRAM timing
model; bandwidth swept with latency constant and vice versa.  Expected
shape:

(a) execution time improves steeply up to ~50 GB/s (the paper reports a
    60% gain), then plateaus -- beyond ~100 GB/s, moving from 50 to
    256 GB/s buys only ~1.7%;
(b) latency from 1 to 36 ns costs only ~4.9% overall: deep DMA
    pipelining hides per-access latency, which only leaks through the
    bank state machine (activate/precharge on row misses).

Both sweeps therefore use the bank-state DRAM model: (a) scales the data
rate (and thus peak bandwidth) of an HBM2-class device, (b) scales the
core timings tCL/tRCD/tRP at fixed bandwidth.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep
from repro.sweep.experiments import (
    FIG6_BANDWIDTHS as BANDWIDTHS,
    FIG6_LATENCIES as LATENCIES,
)


def _run_sweeps(size: int) -> tuple:
    options = sweep_options()
    bw_results = run_sweep(
        build_sweep("fig6a-mem-bandwidth", size=size), **options
    ).results()
    lat_results = run_sweep(
        build_sweep("fig6b-mem-latency", size=size), **options
    ).results()
    return bw_results, lat_results


def test_fig6_memory_sweeps(benchmark, repro_mode):
    size = scaled(256, 2048)

    bw_results, lat_results = benchmark.pedantic(
        lambda: _run_sweeps(size), rounds=1, iterations=1
    )

    banner(f"Fig. 6(a): device-memory bandwidth sweep, GEMM {size}")
    slowest = bw_results[BANDWIDTHS[0]].ticks
    rows = [
        (bw, f"{r.seconds * 1e6:.1f}", f"{r.ticks / slowest:.3f}")
        for bw, r in bw_results.items()
    ]
    print(format_table(["GB/s", "exec us", "normalized"], rows))
    gain_to_50 = 100 * (1 - bw_results[50].ticks / bw_results[2].ticks)
    tail = 100 * (1 - bw_results[256].ticks / bw_results[100].ticks)
    print(f"\n2 -> 50 GB/s improves {gain_to_50:.1f}% "
          f"(paper: ~60% improvement to ~50 GB/s)")
    print(f"100 -> 256 GB/s improves only {tail:.1f}% "
          f"(paper: plateau beyond 100 GB/s, 1.7% from 50 to 256)")

    banner(f"Fig. 6(b): device-memory latency sweep, GEMM {size}")
    fastest = lat_results[LATENCIES[0]].ticks
    rows = [
        (lat, f"{r.seconds * 1e6:.1f}", f"{r.ticks / fastest:.3f}")
        for lat, r in lat_results.items()
    ]
    print(format_table(["latency ns", "exec us", "normalized"], rows))
    overhead = 100 * (lat_results[36].ticks / lat_results[1].ticks - 1)
    print(f"\n1 -> 36 ns adds {overhead:.1f}% (paper: ~4.9%)")

    # Shape assertions ------------------------------------------------
    bw_series = [bw_results[bw].ticks for bw in BANDWIDTHS]
    assert all(a >= b for a, b in zip(bw_series, bw_series[1:]))
    assert gain_to_50 > 40, "bandwidth should matter a lot"
    assert tail < 10, "high-bandwidth tail should plateau"
    lat_series = [lat_results[lat].ticks for lat in LATENCIES]
    assert all(a <= b for a, b in zip(lat_series, lat_series[1:]))
    assert 0 < overhead < 15, "latency should leak through but stay small"
    assert gain_to_50 > overhead, "bandwidth must dominate latency"
