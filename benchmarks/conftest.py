"""Shared benchmark configuration.

Every bench reproduces one table or figure of the paper.  Problem sizes
default to reduced values so the whole harness finishes in minutes; set
``REPRO_FULL=1`` for paper-scale runs (2048x2048 matrices, full ViT
dimensions).  Reduced runs scale the LLC with the working set where the
experiment depends on capacity ratios (see EXPERIMENTS.md).

Each bench prints its table next to the paper's reference values; the
pytest-benchmark timer wraps the headline configuration so regression
tracking covers the simulator itself.
"""

from __future__ import annotations

import os

import pytest

#: Paper-scale toggle.
FULL = os.environ.get("REPRO_FULL", "0") == "1"


def scaled(reduced, full):
    """Pick the problem size for the current mode."""
    return full if FULL else reduced


def sweep_options() -> dict:
    """Engine options for benchmark sweeps.

    Workers come from ``$REPRO_SWEEP_WORKERS`` (serial by default so
    pytest-benchmark timings measure the simulator, not the pool), and
    the on-disk result cache is opt-in via ``REPRO_SWEEP_CACHE=1`` for
    the same reason.  Cache keys include the full configuration and the
    GEMM dimensions, so reduced and REPRO_FULL=1 runs never collide.
    """
    return {
        "workers": None,
        "cache": os.environ.get("REPRO_SWEEP_CACHE", "0") == "1",
    }


@pytest.fixture(scope="session")
def repro_mode() -> str:
    return "paper-scale" if FULL else "reduced"


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title, f"[{'FULL' if FULL else 'reduced'} scale]")
    print("=" * 72)
