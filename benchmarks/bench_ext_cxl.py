"""Extension -- CXL-style interconnect vs PCIe (beyond the paper).

The paper's Key Takeaway #6 identifies the DevMem configuration's weak
spot: CPU (non-GEMM) accesses to device memory pay the PCIe hierarchy's
latency on every line.  A CXL.mem-class port -- flit-based, directly
attached, ~25 ns per traversal instead of ~200 ns of switch + root
complex -- targets exactly that path.  This bench quantifies the what-if:

* streaming GEMM: CXL ~ matches a fat PCIe link (bandwidth-bound),
* DevMem non-GEMM (the Fig. 8 penalty): CXL cuts the NUMA penalty by
  several fold, moving DevMem from "slightly worse than PCIe-64GB" to
  competitive at much higher non-GEMM fractions.

Runs through two registered sweeps (one per runner): ``ext-cxl-gemm``
and ``ext-cxl-vit``.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep


def _run_study(size: int) -> dict:
    options = sweep_options()
    out = dict(run_sweep(build_sweep("ext-cxl-gemm", size=size),
                         **options).results())
    out.update(run_sweep(build_sweep("ext-cxl-vit"), **options).results())
    return out


def test_ext_cxl(benchmark, repro_mode):
    size = scaled(128, 1024)
    results = benchmark.pedantic(
        lambda: _run_study(size), rounds=1, iterations=1
    )

    banner("Extension: CXL-style port vs PCIe hierarchy")
    print(format_table(
        ["path", "GEMM exec us"],
        [
            ("PCIe-64GB", f"{results['gemm_pcie'].seconds * 1e6:.1f}"),
            ("CXL x8", f"{results['gemm_cxl'].seconds * 1e6:.1f}"),
        ],
        title=f"streaming GEMM {size} (bandwidth-bound: parity expected)",
    ))

    host_ng = results["vit_host"].nongemm_ticks
    rows = []
    for key, label in (
        ("vit_host", "host memory (no NUMA)"),
        ("vit_devmem_pcie", "DevMem over PCIe"),
        ("vit_devmem_cxl", "DevMem over CXL"),
    ):
        r = results[key]
        rows.append(
            (
                label,
                f"{r.nongemm_ticks / 1e9:.2f}",
                f"{r.nongemm_ticks / host_ng:.2f}x",
                f"{r.seconds * 1e3:.2f}",
            )
        )
    print(format_table(
        ["configuration", "non-GEMM ms", "NUMA penalty", "total ms"],
        rows,
        title="ViT non-GEMM with device-resident tensors (Fig. 8 scenario)",
    ))

    # Shape assertions ------------------------------------------------
    # Streaming parity within 20%.
    ratio = results["gemm_cxl"].ticks / results["gemm_pcie"].ticks
    assert 0.8 < ratio < 1.2, f"GEMM parity broken: {ratio:.2f}"
    # CXL cuts the NUMA penalty by at least 2x.
    pcie_penalty = results["vit_devmem_pcie"].nongemm_ticks / host_ng
    cxl_penalty = results["vit_devmem_cxl"].nongemm_ticks / host_ng
    assert cxl_penalty < pcie_penalty / 2, (
        f"CXL should cut the NUMA penalty: {pcie_penalty:.2f} -> "
        f"{cxl_penalty:.2f}"
    )
    # But never below the host baseline.
    assert cxl_penalty >= 1.0
