"""Ablation -- accelerator dataflow and pipelining design choices.

Not a paper figure: these sweeps quantify the design decisions DESIGN.md
calls out in the controller.

* **A-panel reuse**: the MatrixFlow streaming dataflow (implied by the
  paper's Table IV translation counts) refetches the A panel for every
  output tile; keeping it resident across a tile row halves read traffic.
* **Prefetch depth**: double buffering (depth 2) hides transfer behind
  compute; depth 1 serializes them.
* **DMA tags**: the outstanding-request budget sets the bandwidth-delay
  product the link can sustain.

Runs through the ``ablation-dataflow`` registered sweep.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep


def test_ablation_dataflow(benchmark, repro_mode):
    size = scaled(128, 1024)

    def run_all():
        spec = build_sweep("ablation-dataflow", size=size)
        return run_sweep(spec, **sweep_options()).results()

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner(f"Ablation: dataflow/pipelining design choices, GEMM {size}")
    baseline = results["baseline (stream)"]
    rows = [
        (
            name,
            f"{r.seconds * 1e6:.1f}",
            f"{r.traffic_bytes / 1e6:.2f}",
            f"{baseline.ticks / r.ticks:.2f}x",
        )
        for name, r in results.items()
    ]
    print(format_table(
        ["variant", "exec us", "traffic MB", "speedup vs baseline"], rows
    ))

    # Reuse halves A traffic and speeds up a bandwidth-bound system.
    assert results["reuse A panels"].traffic_bytes < baseline.traffic_bytes
    assert results["reuse A panels"].ticks < baseline.ticks
    # Deeper prefetch never hurts on this workload.
    assert results["prefetch depth 4"].ticks <= results["prefetch depth 1"].ticks
    # A single outstanding request serializes round trips.
    assert results["1 DMA tag"].ticks > results["32 DMA tags"].ticks
