"""Fig. 5 -- impact of DRAM type and location (device vs host side).

Paper setup: ramulator-backed DRAM models; device-side memory vs
host-side memory behind 2 GB/s and 64 GB/s PCIe links, across DDR4, HBM,
GDDR5 and LPDDR5.  Expected shape: device-side wins for every memory
type; the fast-PCIe host config reaches roughly 78% of device-side
performance; the device-vs-host gap is largest for the high-bandwidth
memories (HBM/GDDR).

Methodology notes (EXPERIMENTS.md): host-side runs use the DM access
method so that reduced-scale LLC retention does not mask the memory
system, and the systolic array is configured with a wide ingest port so
the memory system is the binding constraint, as in the paper's setup.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep
from repro.sweep.experiments import FIG5_MEMORIES as MEMORIES


def _run_study(size: int) -> dict:
    spec = build_sweep("fig5-memory", size=size)
    return run_sweep(spec, **sweep_options()).results()


def test_fig5_memory_location(benchmark, repro_mode):
    size = scaled(256, 2048)

    results = benchmark.pedantic(
        lambda: _run_study(size), rounds=1, iterations=1
    )

    banner(f"Fig. 5: DRAM type and location, GEMM {size}")
    baseline = results[("DDR4-2400", "device")].ticks
    rows = []
    for mem in MEMORIES:
        dev = results[(mem.name, "device")].ticks
        slow = results[(mem.name, "host-2GB")].ticks
        fast = results[(mem.name, "host-64GB")].ticks
        rows.append(
            (
                mem.name,
                f"{baseline / dev:.2f}",
                f"{baseline / slow:.2f}",
                f"{baseline / fast:.2f}",
                f"{100 * dev / fast:.0f}%",
            )
        )
    print(format_table(
        ["memory", "device", "host @2GB/s", "host @64GB/s",
         "fast host vs device"],
        rows,
        title="normalized speedup w.r.t. device-side DDR4 "
              "(paper: host@64GB/s ~ 78% of device)",
    ))

    # Shape assertions ------------------------------------------------
    for mem in MEMORIES:
        dev = results[(mem.name, "device")].ticks
        slow = results[(mem.name, "host-2GB")].ticks
        fast = results[(mem.name, "host-64GB")].ticks
        assert dev <= fast <= slow, f"location ordering violated for {mem.name}"
    # Fast host achieves a large fraction of device performance.
    hbm_ratio = (
        results[("HBM2", "device")].ticks
        / results[("HBM2", "host-64GB")].ticks
    )
    assert 0.4 < hbm_ratio <= 1.0
    # The device advantage is biggest for HBM2 (highest bandwidth).
    gaps = {
        mem.name: results[(mem.name, "host-64GB")].ticks
        / results[(mem.name, "device")].ticks
        for mem in MEMORIES
    }
    assert gaps["HBM2"] == max(gaps.values())
