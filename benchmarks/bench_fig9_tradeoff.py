"""Fig. 9 -- overall time vs non-GEMM fraction; DevMem thresholds.

Paper setup: the Section V-D.2 analytical model fed with measured
per-class performance; the non-GEMM share (of time on the PCIe system)
is swept from 0 to 100%.  Expected shape: DevMem wins below a non-GEMM
threshold, and the threshold falls as PCIe bandwidth rises -- the paper
reports 34.31% (2 GB/s), 10.16% (8 GB/s) and 4.27% (64 GB/s).

The calibration runs come from the ``fig9-tradeoff`` registered sweep
(point-identical to fig8's, so the cache is shared); the analytical
sweep itself is free post-processing.
"""

from conftest import FULL, banner, sweep_options

from repro import (
    TradeoffModel,
    format_table,
    nongemm_time_threshold,
    relative_time_curve,
)
from repro.sweep import build_sweep, run_sweep

MODEL = "large"
DIM_SCALE = 1.0 if FULL else 0.25
SEGMENT = 4096 if FULL else 16384
PAPER_THRESHOLDS = {"PCIe-2GB": 34.31, "PCIe-8GB": 10.16, "PCIe-64GB": 4.27}


def _calibrate() -> dict:
    spec = build_sweep("fig9-tradeoff", model=MODEL,
                       dim_scale=DIM_SCALE, segment=SEGMENT)
    results = run_sweep(spec, **sweep_options()).results()
    return {
        name: TradeoffModel.from_measured(
            name, result.gemm_ticks, result.nongemm_ticks
        )
        for name, result in results.items()
    }


def test_fig9_tradeoff(benchmark, repro_mode):
    models = benchmark.pedantic(_calibrate, rounds=1, iterations=1)

    banner(f"Fig. 9: GEMM/non-GEMM trade-off, calibrated on ViT-{MODEL}")
    devmem = models["DevMem"]
    pcie_names = ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB")

    # DevMem time normalized to each PCIe system across the sweep.
    fractions = [i / 10 for i in range(11)]
    rows = []
    for w in fractions:
        row = [f"{100 * w:.0f}%"]
        for name in pcie_names:
            curve = dict(relative_time_curve(devmem, models[name], steps=11))
            row.append(f"{curve[w]:.3f}")
        rows.append(row)
    print(format_table(
        ["non-GEMM share"] + [f"DevMem vs {n}" for n in pcie_names],
        rows,
        title="DevMem time / PCIe time (<1 means DevMem wins)",
    ))

    print("\nThresholds (non-GEMM share below which DevMem wins):")
    thresholds = {}
    for name in pcie_names:
        threshold = nongemm_time_threshold(devmem, models[name])
        thresholds[name] = threshold
        shown = "never" if threshold is None else f"{100 * threshold:.2f}%"
        print(f"  vs {name:10s}: {shown}   (paper: "
              f"{PAPER_THRESHOLDS[name]:.2f}%)")

    # Shape assertions ------------------------------------------------
    # DevMem wins the all-GEMM corner against the slow link and loses
    # the all-non-GEMM corner everywhere.
    assert dict(relative_time_curve(devmem, models["PCIe-2GB"]))[0.0] < 1
    for name in pcie_names:
        assert dict(relative_time_curve(devmem, models[name]))[1.0] > 1
    # Thresholds exist vs every PCIe system and fall with bandwidth.
    ordered = [thresholds[n] for n in pcie_names]
    assert all(t is not None for t in ordered)
    assert ordered[0] > ordered[1] > ordered[2], (
        f"thresholds should fall with PCIe bandwidth: {ordered}"
    )
