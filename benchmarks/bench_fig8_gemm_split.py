"""Fig. 8 -- GEMM vs non-GEMM time across system configurations.

Paper setup: the ViT workloads of Fig. 7 profiled per operator class.
Expected shape: DevMem delivers the best GEMM times (device-side HBM2
feeding the array directly) but the *worst* non-GEMM times -- up to
~500% over the PCIe-host systems -- because the CPU's uncached accesses
to device memory cross the PCIe hierarchy line by line.

Runs through the ``fig8-gemm-split`` registered sweep; its points are
identical to fig9's, so either experiment primes the other's cache.
"""

from conftest import FULL, banner, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep

MODEL = "large"
DIM_SCALE = 1.0 if FULL else 0.25
SEGMENT = 4096 if FULL else 16384


def _run_split() -> dict:
    spec = build_sweep("fig8-gemm-split", model=MODEL,
                       dim_scale=DIM_SCALE, segment=SEGMENT)
    return run_sweep(spec, **sweep_options()).results()


def test_fig8_gemm_split(benchmark, repro_mode):
    results = benchmark.pedantic(_run_split, rounds=1, iterations=1)

    banner(f"Fig. 8: GEMM vs non-GEMM split, ViT-{MODEL}, "
           f"dim scale {DIM_SCALE:g}")
    host_ng = results["PCIe-8GB"].nongemm_ticks
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                f"{r.gemm_ticks / 1e9:.2f}",
                f"{r.nongemm_ticks / 1e9:.2f}",
                f"{100 * r.nongemm_fraction:.1f}%",
                f"{100 * (r.nongemm_ticks / host_ng - 1):+.0f}%",
            )
        )
    print(format_table(
        ["system", "GEMM ms", "non-GEMM ms", "non-GEMM share",
         "non-GEMM vs PCIe-8GB"],
        rows,
        title="paper: DevMem best on GEMM, up to +500% on non-GEMM",
    ))

    # Shape assertions ------------------------------------------------
    gemm = {name: r.gemm_ticks for name, r in results.items()}
    nongemm = {name: r.nongemm_ticks for name, r in results.items()}
    assert gemm["DevMem"] == min(gemm.values()), "DevMem must win GEMM"
    assert nongemm["DevMem"] == max(nongemm.values()), (
        "DevMem must lose non-GEMM"
    )
    penalty = nongemm["DevMem"] / nongemm["PCIe-8GB"]
    assert 2.0 < penalty < 12.0, f"non-GEMM penalty {penalty:.1f}x out of band"
    # Host-side non-GEMM time is interconnect-independent.
    host_values = [nongemm[n] for n in ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB")]
    assert max(host_values) / min(host_values) < 1.05
