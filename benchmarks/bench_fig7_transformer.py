"""Fig. 7 -- ViT inference across memory locations and interconnects.

Paper setup: ViT-Base/Large/Huge on the four Section V-C systems
(PCIe-2GB, PCIe-8GB, PCIe-64GB, DevMem).  Expected shape: PCIe-64GB is
2.5x-3.4x faster than PCIe-2GB, and DevMem lands slightly *below*
PCIe-64GB despite its superior GEMM performance, because non-GEMM
operators pay the NUMA penalty.

Runs through the ``fig7-transformer`` registered sweep (the ``"vit"``
runner), so points parallelize and cache exactly like the GEMM figures.
Reduced mode scales hidden dimensions by 1/4 and coarsens the DMA event
granularity; REPRO_FULL=1 runs all three models at full dimensions.
"""

from conftest import FULL, banner, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep

MODELS_REDUCED = ("base", "large")
MODELS_FULL = ("base", "large", "huge")
DIM_SCALE = 1.0 if FULL else 0.25
SEGMENT = 4096 if FULL else 16384


def _run_matrix(models) -> dict:
    spec = build_sweep("fig7-transformer", models=models,
                       dim_scale=DIM_SCALE, segment=SEGMENT)
    return run_sweep(spec, **sweep_options()).results()


def test_fig7_transformer(benchmark, repro_mode):
    models = MODELS_FULL if FULL else MODELS_REDUCED

    results = benchmark.pedantic(
        lambda: _run_matrix(models), rounds=1, iterations=1
    )

    banner(f"Fig. 7: ViT inference, dim scale {DIM_SCALE:g}")
    system_names = ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem")
    rows = []
    for model in models:
        base_ticks = results[(model, "PCIe-2GB")].total_ticks
        row = [model]
        for name in system_names:
            r = results[(model, name)]
            row.append(f"{r.seconds * 1e3:.1f} ({base_ticks / r.total_ticks:.2f}x)")
        rows.append(row)
    print(format_table(
        ["model"] + list(system_names),
        rows,
        title="inference time ms (speedup vs PCIe-2GB); "
              "paper: PCIe-64GB 2.5-3.4x, DevMem slightly below PCIe-64GB",
    ))

    # Shape assertions ------------------------------------------------
    for model in models:
        t2 = results[(model, "PCIe-2GB")].total_ticks
        t8 = results[(model, "PCIe-8GB")].total_ticks
        t64 = results[(model, "PCIe-64GB")].total_ticks
        tdev = results[(model, "DevMem")].total_ticks
        assert t2 > t8 > t64, f"PCIe ordering violated for {model}"
        speedup = t2 / t64
        assert 1.5 < speedup < 6.0, (
            f"{model}: PCIe-64GB speedup {speedup:.2f} out of band"
        )
        # DevMem loses to the fast PCIe host system on the full model.
        assert tdev > t64, f"{model}: DevMem should trail PCIe-64GB"
        # ... but beats the slow PCIe system (its GEMM advantage).
        assert tdev < t2, f"{model}: DevMem should beat PCIe-2GB"
