"""Access-method comparison -- DC vs DM vs DevMem (Section III-C).

Not a numbered figure, but the paper's core framework claim: the three
memory access methods trade cache help (DC), path length (DM) and
interconnect avoidance (DevMem).  This bench runs the same GEMM under all
three (the ``access-modes`` registered sweep) and reports the path
statistics that explain the differences.
"""

from conftest import banner, scaled, sweep_options

from repro import format_table
from repro.sweep import build_sweep, run_sweep


def test_access_modes(benchmark, repro_mode):
    size = scaled(128, 1024)

    def run_all():
        spec = build_sweep("access-modes", size=size)
        return run_sweep(spec, **sweep_options()).results()

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner(f"Access methods (Section III-C), GEMM {size}")
    rows = []
    for name, r in results.items():
        stats = r.component_stats
        rows.append(
            (
                name,
                f"{r.seconds * 1e6:.1f}",
                f"{r.delivered_bytes_per_sec / 1e9:.2f}",
                int(stats.get("system.llc.accesses", 0)),
                int(stats.get("system.iocache.accesses", 0)),
            )
        )
    print(format_table(
        ["mode", "exec us", "delivered GB/s", "LLC accesses",
         "IOCache accesses"],
        rows,
    ))

    # DevMem avoids the PCIe bottleneck entirely.
    assert results["DevMem"].ticks < results["DC"].ticks
    assert results["DevMem"].ticks < results["DM"].ticks
    # DM bypasses the cache hierarchy: no IOCache/LLC traffic from the
    # accelerator (only PTW and CPU paths remain).
    dm_io = results["DM"].component_stats.get("system.iocache.accesses", 0)
    dc_io = results["DC"].component_stats.get("system.iocache.accesses", 0)
    assert dc_io > dm_io
