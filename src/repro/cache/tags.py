"""Set-associative tag store.

Tracks which cache lines are resident, their dirty bits, and drives the
replacement policy.  Addresses are *line* addresses (byte address //
line_size); the :class:`~repro.cache.cache.Cache` handles byte-level
slicing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import ReplacementPolicy, make_policy


class _Way:
    """One way of one set."""

    __slots__ = ("line", "dirty")

    def __init__(self) -> None:
        self.line: Optional[int] = None
        self.dirty = False


class TagStore:
    """Tags for a set-associative cache.

    Parameters
    ----------
    size:
        Capacity in bytes.
    assoc:
        Associativity (ways per set).
    line_size:
        Bytes per line (power of two).
    policy:
        Replacement policy name ('lru', 'fifo', 'random').
    """

    def __init__(
        self, size: int, assoc: int, line_size: int = 64, policy: str = "lru"
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        if size % (assoc * line_size):
            raise ValueError(
                f"size {size} not divisible by assoc*line_size "
                f"({assoc}*{line_size})"
            )
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        if self.num_sets == 0:
            raise ValueError("cache too small for its associativity")
        self.policy: ReplacementPolicy = make_policy(policy, self.num_sets, assoc)
        self._sets: List[List[_Way]] = [
            [_Way() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        # line -> (set_index, way_index) for O(1) lookup.
        self._where: Dict[int, Tuple[int, int]] = {}
        self._occupancy: List[int] = [0] * self.num_sets
        self._all_ways = list(range(assoc))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def set_index_of(self, line: int) -> int:
        return line % self.num_sets

    def probe(self, line: int) -> bool:
        """True if ``line`` is resident; does not update recency."""
        return line in self._where

    def access(self, line: int) -> bool:
        """Lookup with recency update; True on hit."""
        loc = self._where.get(line)
        if loc is None:
            return False
        self.policy.touch(*loc)
        return True

    def is_dirty(self, line: int) -> bool:
        loc = self._where.get(line)
        if loc is None:
            return False
        return self._sets[loc[0]][loc[1]].dirty

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; return evicted ``(line, was_dirty)`` if any.

        Filling a line that is already resident just updates its dirty bit
        (logical OR) and recency.
        """
        loc = self._where.get(line)
        if loc is not None:
            way = self._sets[loc[0]][loc[1]]
            way.dirty = way.dirty or dirty
            self.policy.touch(*loc)
            return None

        set_index = self.set_index_of(line)
        ways = self._sets[set_index]
        victim_info: Optional[Tuple[int, bool]] = None

        if self._occupancy[set_index] < self.assoc:
            free_way = next(i for i, w in enumerate(ways) if w.line is None)
            self._occupancy[set_index] += 1
        else:
            free_way = self.policy.victim(set_index, self._all_ways)
            victim = ways[free_way]
            victim_info = (victim.line, victim.dirty)
            del self._where[victim.line]

        slot = ways[free_way]
        slot.line = line
        slot.dirty = dirty
        self._where[line] = (set_index, free_way)
        self.policy.insert(set_index, free_way)
        return victim_info

    def mark_dirty(self, line: int) -> None:
        """Set the dirty bit of a resident line."""
        loc = self._where.get(line)
        if loc is None:
            raise KeyError(f"line {line:#x} not resident")
        self._sets[loc[0]][loc[1]].dirty = True

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; returns True if it was dirty."""
        loc = self._where.pop(line, None)
        if loc is None:
            return False
        way = self._sets[loc[0]][loc[1]]
        dirty = way.dirty
        way.line = None
        way.dirty = False
        self._occupancy[loc[0]] -= 1
        return dirty

    def reset(self) -> None:
        """Empty every set and rewind the replacement policy.

        Walks only the *resident* lines (``_where`` knows exactly which
        ways are occupied) instead of every way of every set, so resetting
        a barely-touched tag store between memoized-sweep points is
        O(resident lines) rather than O(capacity).
        """
        if self._where:
            sets = self._sets
            for set_index, way_index in self._where.values():
                way = sets[set_index][way_index]
                way.line = None
                way.dirty = False
            self._where.clear()
            self._occupancy = [0] * self.num_sets
        self.policy.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return len(self._where)

    def __contains__(self, line: int) -> bool:
        return line in self._where
