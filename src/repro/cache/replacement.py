"""Replacement policies for set-associative tag stores.

A policy tracks access order *per set* and nominates a victim way when the
set is full.  Policies are deliberately stateless across sets: the tag store
calls ``touch``/``insert``/``evict`` with the set index and way.
"""

from __future__ import annotations

import random
from typing import List


class ReplacementPolicy:
    """Interface: track touches and choose victims within one set."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc

    def touch(self, set_index: int, way: int) -> None:
        """Record an access to ``way`` of ``set_index``."""

    def insert(self, set_index: int, way: int) -> None:
        """Record a fill into ``way`` of ``set_index``."""
        self.touch(set_index, way)

    def victim(self, set_index: int, occupied: List[int]) -> int:
        """Choose a way to evict among ``occupied`` ways."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all recency/ordering state (back to construction)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the way touched longest ago."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._stamp = 0
        self._last_use: List[List[int]] = [
            [0] * assoc for _ in range(num_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        self._stamp += 1
        self._last_use[set_index][way] = self._stamp

    def victim(self, set_index: int, occupied: List[int]) -> int:
        stamps = self._last_use[set_index]
        return min(occupied, key=stamps.__getitem__)

    def reset(self) -> None:
        if self._stamp == 0:
            return  # untouched since construction/reset
        self._stamp = 0
        zero = [0] * self.assoc
        for row in self._last_use:
            row[:] = zero


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the way filled longest ago."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._stamp = 0
        self._fill_time: List[List[int]] = [
            [0] * assoc for _ in range(num_sets)
        ]

    def insert(self, set_index: int, way: int) -> None:
        self._stamp += 1
        self._fill_time[set_index][way] = self._stamp

    def victim(self, set_index: int, occupied: List[int]) -> int:
        stamps = self._fill_time[set_index]
        return min(occupied, key=stamps.__getitem__)

    def reset(self) -> None:
        if self._stamp == 0:
            return  # untouched since construction/reset
        self._stamp = 0
        zero = [0] * self.assoc
        for row in self._fill_time:
            row[:] = zero


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, num_sets: int, assoc: int, seed: int = 1) -> None:
        super().__init__(num_sets, assoc)
        self._seed = seed
        self._rng = random.Random(seed)

    def victim(self, set_index: int, occupied: List[int]) -> int:
        return self._rng.choice(occupied)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a policy by name ('lru', 'fifo', 'random')."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, assoc)
