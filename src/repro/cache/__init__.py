"""Cache hierarchy: set-associative caches with MSHRs and writeback.

Used for the CPU-side L1/L2/LLC, the IOCache in front of the PCIe root
complex, and the optional device-side cache.  The direct-cache (DC) access
mode of the paper routes accelerator transactions through these caches; a
lightweight invalidation-based coherence scheme (driven by the MemBus) keeps
the accelerator's view consistent with the CPU caches, mirroring the cache
coherency model the paper adds between accelerator and CPU.
"""

from repro.cache.replacement import FIFOPolicy, LRUPolicy, RandomPolicy, make_policy
from repro.cache.tags import TagStore
from repro.cache.cache import Cache, CacheParams

__all__ = [
    "Cache",
    "CacheParams",
    "TagStore",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
]
