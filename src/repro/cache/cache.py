"""Set-associative cache with MSHRs, writeback and invalidation.

The cache operates at transaction granularity: an incoming transaction's
lines are classified hit/miss against the tag store, missing lines are
coalesced into contiguous runs fetched downstream (one MSHR per run), and
the transaction completes when its slowest piece does.  Dirty victims
generate downstream writebacks which consume downstream bandwidth but do
not delay the triggering transaction (writeback buffer semantics).

Caches are timing-authoritative but not data-authoritative: functional
payloads are read from / committed to the shared backing store at issue
time, so timing modes (DC vs DM) never change computed results -- the same
policy gem5 users get from functional accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple
from collections import deque

from repro.cache.tags import TagStore
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


@dataclass(frozen=True)
class CacheParams:
    """Configuration for one cache level.

    ``hit_latency``/``miss_latency`` are in ticks and model the tag+data
    access and the fill path respectively; per-line data-array occupancy is
    ``line_access``.
    """

    size: int
    assoc: int
    line_size: int = 64
    hit_latency: int = ns(2)
    miss_latency: int = ns(2)
    line_access: int = 0
    mshrs: int = 16
    write_allocate: bool = True
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.mshrs <= 0:
            raise ValueError("need at least one MSHR")


class Cache(TargetPort):
    """One cache level in front of a downstream target."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: CacheParams,
        downstream: TargetPort,
        functional_store: Optional[PhysicalMemory] = None,
    ) -> None:
        super().__init__(sim, name)
        self.params = params
        self.downstream = downstream
        self.functional_store = functional_store
        self.tags = TagStore(
            params.size, params.assoc, params.line_size, params.policy
        )
        self._mshrs_free = params.mshrs
        self._mshr_queue: Deque[tuple] = deque()

        self._hits = self.stats.scalar("hits", "demand line hits")
        self._misses = self.stats.scalar("misses", "demand line misses")
        self._accesses = self.stats.scalar("accesses", "demand transactions")
        self._evictions = self.stats.scalar("evictions", "lines evicted")
        self._writebacks = self.stats.scalar("writebacks", "dirty lines written back")
        self._invalidations = self.stats.scalar("invalidations", "lines invalidated")

    def reset_state(self) -> None:
        super().reset_state()
        self.tags.reset()
        self._mshrs_free = self.params.mshrs
        self._mshr_queue.clear()

    # ------------------------------------------------------------------
    # TargetPort interface
    # ------------------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        params = self.params
        line_size = params.line_size
        self._accesses.inc()

        first_line = txn.addr // line_size
        last_line = (txn.end_addr - 1) // line_size
        missing: List[int] = []
        hit_lines = 0
        for line in range(first_line, last_line + 1):
            if self.tags.access(line):
                hit_lines += 1
                if txn.is_write:
                    self.tags.mark_dirty(line)
            else:
                missing.append(line)
        self._hits.inc(hit_lines)
        self._misses.inc(len(missing))

        if self.functional_store is not None:
            self._functional_access(txn)

        hit_time = params.hit_latency + hit_lines * params.line_access

        if not missing or (txn.is_write and not params.write_allocate):
            if missing and txn.is_write:
                # Write-no-allocate: forward the whole write downstream.
                self.downstream.send(
                    Transaction.write(txn.addr, txn.size, source=txn.source),
                    lambda _t: None,
                )
            self.schedule(hit_time, lambda: on_complete(txn))
            return

        # Coalesce missing lines into contiguous runs.
        runs = self._coalesce(missing)
        state = {"remaining": len(runs)}
        fill_dirty = txn.is_write

        def fetch_done(_fetch_txn: Transaction) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                self.schedule(self.params.miss_latency, lambda: on_complete(txn))

        for run_start, run_len in runs:
            fetch = Transaction.read(
                run_start * line_size, run_len * line_size, source=self.name
            )
            fetch.for_ownership = fill_dirty
            self._issue_miss(fetch, run_start, run_len, fill_dirty, fetch_done)

    # ------------------------------------------------------------------
    # Miss path
    # ------------------------------------------------------------------
    def _issue_miss(
        self,
        fetch: Transaction,
        run_start: int,
        run_len: int,
        fill_dirty: bool,
        fetch_done: CompletionFn,
    ) -> None:
        if self._mshrs_free == 0:
            self._mshr_queue.append((fetch, run_start, run_len, fill_dirty, fetch_done))
            return
        self._mshrs_free -= 1

        def on_fill(fetch_txn: Transaction) -> None:
            self._fill_lines(run_start, run_len, fill_dirty)
            self._mshrs_free += 1
            if self._mshr_queue:
                queued = self._mshr_queue.popleft()
                self._issue_miss(*queued)
            fetch_done(fetch_txn)

        self.downstream.send(fetch, on_fill)

    def _fill_lines(self, run_start: int, run_len: int, dirty: bool) -> None:
        line_size = self.params.line_size
        writeback_runs: List[int] = []
        for line in range(run_start, run_start + run_len):
            victim = self.tags.fill(line, dirty)
            if victim is not None:
                self._evictions.inc()
                victim_line, was_dirty = victim
                if was_dirty:
                    writeback_runs.append(victim_line)
        for victim_line in writeback_runs:
            self._writebacks.inc()
            wb = Transaction.write(
                victim_line * line_size, line_size, source=f"{self.name}.wb"
            )
            self.downstream.send(wb, lambda _t: None)

    @staticmethod
    def _coalesce(lines: List[int]) -> List[Tuple[int, int]]:
        """Merge sorted line numbers into (start, length) runs."""
        runs: List[Tuple[int, int]] = []
        start = prev = lines[0]
        for line in lines[1:]:
            if line == prev + 1:
                prev = line
                continue
            runs.append((start, prev - start + 1))
            start = prev = line
        runs.append((start, prev - start + 1))
        return runs

    # ------------------------------------------------------------------
    # Functional data and coherence
    # ------------------------------------------------------------------
    def _functional_access(self, txn: Transaction) -> None:
        if txn.is_read:
            txn.data = self.functional_store.read(txn.addr, txn.size)
        elif txn.data is not None:
            self.functional_store.write(txn.addr, txn.data)

    def invalidate_range(self, addr: int, size: int) -> int:
        """Invalidate all lines overlapping ``[addr, addr+size)``.

        Dirty lines are written back downstream (timing only).  Returns the
        number of lines invalidated.  Used by the MemBus snoop path when
        another master writes, and by the driver for explicit flushes.
        """
        line_size = self.params.line_size
        first = addr // line_size
        last = (addr + size - 1) // line_size
        dropped = 0
        for line in range(first, last + 1):
            if line in self.tags:
                was_dirty = self.tags.invalidate(line)
                dropped += 1
                self._invalidations.inc()
                if was_dirty:
                    self._writebacks.inc()
                    wb = Transaction.write(
                        line * line_size, line_size, source=f"{self.name}.snoopwb"
                    )
                    self.downstream.send(wb, lambda _t: None)
        return dropped

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Demand line hit rate."""
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    @property
    def mshrs_in_use(self) -> int:
        return self.params.mshrs - self._mshrs_free
