"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``gemm``     -- run one GEMM on a named system configuration,
* ``vit``      -- run ViT inference and print the GEMM/non-GEMM split,
* ``sweep``    -- sweep PCIe bandwidth or packet size for a GEMM,
* ``systems``  -- list the named system configurations.

Examples::

    python -m repro gemm --system PCIe-8GB --size 256 --verify
    python -m repro vit --system DevMem --model base --dim-scale 0.25
    python -m repro sweep --kind packet --size 128
    python -m repro systems
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    SystemConfig,
    format_table,
    run_gemm,
    run_vit,
)
from repro.sweep import build_sweep, run_sweep
from repro.workloads import GemmWorkload


def _named_systems() -> dict:
    """Every configuration reachable from the CLI, keyed by name.

    The four paper systems, the Table II baseline, and the CXL
    extension presets (cxl_host / devmem_cxl).
    """
    systems = SystemConfig.paper_systems()
    systems["Table2"] = SystemConfig.table2_baseline()
    systems["CXL-host"] = SystemConfig.cxl_host()
    systems["DevMem-CXL"] = SystemConfig.devmem_cxl()
    return systems


def _system_by_name(name: str) -> SystemConfig:
    systems = _named_systems()
    for key, config in systems.items():
        if key.lower() == name.lower():
            return config
    raise SystemExit(
        f"unknown system {name!r}; choose from {sorted(systems)}"
    )


def cmd_systems(_args) -> int:
    rows = []
    for name, config in _named_systems().items():
        mem = config.devmem if config.uses_device_memory else config.host_mem
        rows.append(
            (
                name,
                config.access_mode.value,
                config.pcie.describe(),
                mem.describe() if mem is not None else "simple",
            )
        )
    print(format_table(["name", "mode", "PCIe", "memory"], rows))
    return 0


def cmd_gemm(args) -> int:
    config = _system_by_name(args.system)
    if args.packet_size:
        config = config.with_packet_size(args.packet_size)
    result = run_gemm(
        config, args.size, args.size, args.size,
        functional=args.verify, seed=args.seed,
    )
    print(f"system:     {config.name}")
    print(f"GEMM:       {args.size}x{args.size}x{args.size}")
    print(f"exec time:  {result.seconds * 1e6:.1f} us")
    print(f"traffic:    {result.traffic_bytes / 1e6:.2f} MB")
    print(f"delivered:  {result.delivered_bytes_per_sec / 1e9:.2f} GB/s")
    if args.verify:
        workload = GemmWorkload(args.size, args.size, args.size,
                                seed=args.seed)
        a, b = workload.generate()
        np.testing.assert_array_equal(result.c_matrix,
                                      workload.reference(a, b))
        print("verify:     PASSED")
    if result.table4 is not None and args.translation:
        print("\naddress translation:")
        for key, value in result.table4.items():
            print(f"  {key:28s} {value:>14.2f}" if isinstance(value, float)
                  else f"  {key:28s} {value:>14d}")
    return 0


def cmd_vit(args) -> int:
    config = _system_by_name(args.system)
    result = run_vit(config, args.model, dim_scale=args.dim_scale)
    print(f"system:        {config.name}")
    print(f"model:         {result.model_name}")
    print(f"total:         {result.seconds * 1e3:.2f} ms")
    print(f"GEMM:          {result.gemm_ticks / 1e9:.2f} ms")
    print(f"non-GEMM:      {result.nongemm_ticks / 1e9:.2f} ms")
    print(f"non-GEMM share {100 * result.nongemm_fraction:.1f}%")
    return 0


def cmd_sweep(args) -> int:
    base = _system_by_name(args.system)
    if args.kind == "bandwidth":
        spec = build_sweep("pcie-bandwidth", base=base, size=args.size)
    else:
        spec = build_sweep("packet-size", base=base, size=args.size)
    report = run_sweep(
        spec,
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    results = report.results()
    if args.kind == "bandwidth":
        rows = [
            (f"x{lanes}", f"{gbps:g}", f"{result.seconds * 1e6:.1f}")
            for (lanes, gbps), result in results.items()
        ]
        print(format_table(["lanes", "Gb/s/lane", "exec us"], rows))
    else:
        rows = [
            (packet, f"{result.seconds * 1e6:.1f}")
            for packet, result in results.items()
        ]
        print(format_table(["packet B", "exec us"], rows))
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gem5-AcceSys reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_systems = sub.add_parser("systems", help="list named configurations")
    p_systems.set_defaults(func=cmd_systems)

    p_gemm = sub.add_parser("gemm", help="run one GEMM")
    p_gemm.add_argument("--system", default="Table2")
    p_gemm.add_argument("--size", type=int, default=128)
    p_gemm.add_argument("--packet-size", type=int, default=0)
    p_gemm.add_argument("--seed", type=int, default=1234)
    p_gemm.add_argument("--verify", action="store_true",
                        help="check the result against numpy")
    p_gemm.add_argument("--translation", action="store_true",
                        help="print Table IV metrics")
    p_gemm.set_defaults(func=cmd_gemm)

    p_vit = sub.add_parser("vit", help="run ViT inference")
    p_vit.add_argument("--system", default="PCIe-8GB")
    p_vit.add_argument("--model", default="base",
                       choices=["base", "large", "huge"])
    p_vit.add_argument("--dim-scale", type=float, default=0.25)
    p_vit.set_defaults(func=cmd_vit)

    p_sweep = sub.add_parser("sweep", help="bandwidth or packet sweeps")
    p_sweep.add_argument("--kind", choices=["bandwidth", "packet"],
                         default="bandwidth")
    p_sweep.add_argument("--system", default="Table2")
    p_sweep.add_argument("--size", type=int, default=128)
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process count for uncached points "
                              "(default: $REPRO_SWEEP_WORKERS or serial)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="result cache location "
                              "(default: $REPRO_SWEEP_CACHE_DIR or "
                              "~/.cache/repro/sweeps)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always re-simulate; do not read or "
                              "write the result cache")
    p_sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
