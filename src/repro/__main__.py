"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``gemm``     -- run one GEMM on a named system configuration,
* ``vit``      -- run ViT inference and print the GEMM/non-GEMM split,
* ``sweep``    -- run any registered experiment sweep (all paper figures),
* ``cache``    -- inspect or maintain the on-disk sweep result cache,
* ``systems``  -- list the named system configurations,
* ``faults``   -- list or describe fault-injection presets
  (``sweep --faults <preset>`` overlays one onto any sweep),
* ``telemetry`` -- summarize or export per-point telemetry artifacts
  captured with ``sweep --trace`` / ``--metrics-every``
  (docs/OBSERVABILITY.md),
* ``serve``    -- long-running result server over the cache: warm point
  queries in microseconds, identical cold queries coalesced into one
  simulation, fill progress over SSE (docs/SERVING.md).

Examples::

    python -m repro gemm --system PCIe-8GB --size 256 --verify
    python -m repro vit --system DevMem --model base --dim-scale 0.25
    python -m repro sweep --list
    python -m repro sweep --name fig7-transformer --workers 4
    python -m repro sweep --name fig8-gemm-split --name fig9-tradeoff
    python -m repro sweep --name tab4-translation --shard 1/4
    python -m repro cache stats
    python -m repro cache prune --sweep fig7-transformer
    python -m repro systems

Repeating ``--name`` batches several sweeps through one worker-pool
invocation; while points simulate a live ``[done/total]`` progress line
is shown on stderr (tty-only; ``REPRO_PROGRESS=1`` forces it on,
``REPRO_PROGRESS=0`` off).
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys

import numpy as np

from repro import (
    SystemConfig,
    format_table,
    run_gemm,
    run_vit,
)
from repro.core.runner import (
    GemmResult,
    MultiGemmResult,
    PeerTransferResult,
    ViTResult,
)
from repro.sweep import (
    SWEEPS,
    ResultCache,
    apply_domains,
    build_sweep,
    parse_shard,
    run_sweeps,
)
from repro.workloads import GemmWorkload


def _named_systems() -> dict:
    """Every configuration reachable from the CLI, keyed by name."""
    return SystemConfig.named_systems()


def _system_by_name(name: str) -> SystemConfig:
    try:
        return SystemConfig.by_name(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None


def cmd_systems(_args) -> int:
    rows = []
    for name, config in _named_systems().items():
        mem = config.devmem if config.uses_device_memory else config.host_mem
        rows.append(
            (
                name,
                config.access_mode.value,
                config.pcie.describe(),
                mem.describe() if mem is not None else "simple",
            )
        )
    print(format_table(["name", "mode", "PCIe", "memory"], rows))
    return 0


def cmd_gemm(args) -> int:
    config = _system_by_name(args.system)
    if args.packet_size:
        config = config.with_packet_size(args.packet_size)
    result = run_gemm(
        config, args.size, args.size, args.size,
        functional=args.verify, seed=args.seed,
    )
    print(f"system:     {config.name}")
    print(f"GEMM:       {args.size}x{args.size}x{args.size}")
    print(f"exec time:  {result.seconds * 1e6:.1f} us")
    print(f"traffic:    {result.traffic_bytes / 1e6:.2f} MB")
    print(f"delivered:  {result.delivered_bytes_per_sec / 1e9:.2f} GB/s")
    if args.verify:
        workload = GemmWorkload(args.size, args.size, args.size,
                                seed=args.seed)
        a, b = workload.generate()
        np.testing.assert_array_equal(result.c_matrix,
                                      workload.reference(a, b))
        print("verify:     PASSED")
    if result.table4 is not None and args.translation:
        print("\naddress translation:")
        for key, value in result.table4.items():
            print(f"  {key:28s} {value:>14.2f}" if isinstance(value, float)
                  else f"  {key:28s} {value:>14d}")
    return 0


def cmd_vit(args) -> int:
    config = _system_by_name(args.system)
    result = run_vit(config, args.model, dim_scale=args.dim_scale)
    print(f"system:        {config.name}")
    print(f"model:         {result.model_name}")
    print(f"total:         {result.seconds * 1e3:.2f} ms")
    print(f"GEMM:          {result.gemm_ticks / 1e9:.2f} ms")
    print(f"non-GEMM:      {result.nongemm_ticks / 1e9:.2f} ms")
    print(f"non-GEMM share {100 * result.nongemm_fraction:.1f}%")
    return 0


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def _list_sweeps(as_json: bool = False) -> int:
    rows = []
    for name in sorted(SWEEPS):
        factory = SWEEPS[name]
        doc = (inspect.getdoc(factory) or "").splitlines()
        summary = doc[0] if doc else ""
        spec = factory()
        rows.append((name, spec.runner if isinstance(spec.runner, str)
                     else "custom", len(spec), summary))
    if as_json:
        import json

        print(json.dumps(
            [
                {
                    "name": name,
                    "runner": runner,
                    "points": points,
                    "description": summary,
                }
                for name, runner, points, summary in rows
            ],
            indent=1,
        ))
        return 0
    print(format_table(
        ["experiment", "runner", "points", "description"], rows,
        title="registered sweeps (python -m repro sweep --name <experiment>)",
    ))
    return 0


def _plain_overrides(name: str, args) -> dict:
    """CLI overrides the named factory accepts, as *plain JSON values*.

    Each offered entry is (factory parameter, CLI flag, value); flags the
    factory does not take are reported on stderr rather than silently
    dropped.  The system override stays a *name* string (``base``) so the
    result can ride a machine-portable orchestration manifest; use
    :func:`_factory_kwargs` when building a spec in this process.
    """
    offered = []
    if args.system is not None:
        _system_by_name(args.system)  # validate early, keep the name
        offered.append(("base", "--system", args.system))
    if args.size is not None:
        offered.append(("size", "--size", args.size))
    if args.model is not None:
        offered.append(("model", "--model", args.model))
    if args.dim_scale is not None:
        offered.append(("dim_scale", "--dim-scale", args.dim_scale))
    accepted = inspect.signature(SWEEPS[name]).parameters
    kwargs = {param: value for param, _flag, value in offered
              if param in accepted}
    dropped = sorted(flag for param, flag, _value in offered
                     if param not in accepted)
    if dropped:
        print(f"note: sweep {name!r} ignores {', '.join(dropped)}",
              file=sys.stderr)
    return kwargs


def _factory_kwargs(name: str, args) -> dict:
    """Like :func:`_plain_overrides` but with live objects resolved."""
    kwargs = _plain_overrides(name, args)
    if isinstance(kwargs.get("base"), str):
        kwargs["base"] = _system_by_name(kwargs["base"])
    return kwargs


def _ticks_us(ticks: int) -> float:
    """Ticks to microseconds through the canonical time base."""
    from repro.sim.ticks import ticks_to_seconds

    return ticks_to_seconds(ticks) * 1e6


def _result_rows(report):
    """Generic per-point table for any runner's result type."""
    results = report.results()
    sample = next(iter(results.values()), None)
    if isinstance(sample, GemmResult):
        header = ["point", "exec us", "traffic MB"]
        rows = [
            (key, f"{r.seconds * 1e6:.1f}", f"{r.traffic_bytes / 1e6:.2f}")
            for key, r in results.items()
        ]
    elif isinstance(sample, MultiGemmResult):
        header = ["point", "devices", "exec us", "dev spread us",
                  "agg GB/s", "uplink util"]
        rows = [
            (
                key,
                f"{r.active_devices}/{r.num_devices}",
                f"{r.seconds * 1e6:.1f}",
                # Fastest-to-slowest device gap: arbitration fairness.
                (f"{_ticks_us(max(r.device_ticks) - min(r.device_ticks)):.1f}"
                 if r.device_ticks else "-"),
                f"{r.aggregate_bytes_per_sec / 1e9:.2f}",
                f"{100 * r.uplink_busy_frac:.1f}%",
            )
            for key, r in results.items()
        ]
    elif isinstance(sample, PeerTransferResult):
        header = ["point", "mode", "KiB", "exec us", "GB/s", "RC bytes"]
        rows = [
            (
                key,
                r.mode,
                f"{r.size_bytes / 1024:.0f}",
                f"{r.seconds * 1e6:.1f}",
                f"{r.bytes_per_sec / 1e9:.2f}",
                r.root_complex_bytes,
            )
            for key, r in results.items()
        ]
    elif type(sample).__name__ == "ResilienceResult":
        header = ["point", "done", "aborted", "makespan us", "p50 us",
                  "max us", "goodput GB/s", "retries", "replays"]
        rows = [
            (
                key,
                f"{r.completed}/{r.transfers}",
                r.aborted,
                f"{r.seconds * 1e6:.1f}",
                f"{_ticks_us(r.latency_p50):.1f}",
                f"{_ticks_us(r.latency_max):.1f}",
                f"{r.goodput_bytes_per_sec / 1e9:.2f}",
                r.retries,
                r.replays,
            )
            for key, r in results.items()
        ]
    elif isinstance(sample, ViTResult):
        header = ["point", "total ms", "GEMM ms", "non-GEMM ms", "non-GEMM %"]
        rows = [
            (
                key,
                f"{r.seconds * 1e3:.2f}",
                f"{r.gemm_ticks / 1e9:.2f}",
                f"{r.nongemm_ticks / 1e9:.2f}",
                f"{100 * r.nongemm_fraction:.1f}%",
            )
            for key, r in results.items()
        ]
    else:
        header = ["point", "record"]
        rows = [(key, repr(r)) for key, r in results.items()]
    return header, rows


def _progress_printer():
    """A live ``done/total`` line on stderr while a sweep simulates.

    Enabled when stderr is a terminal, or when ``REPRO_PROGRESS=1``
    forces it (useful under redirection); ``REPRO_PROGRESS=0`` disables
    it entirely.  Returns ``(progress_fn or None, finish_fn)``.
    """
    import os

    env = os.environ.get("REPRO_PROGRESS")
    enabled = (env == "1") or (env != "0" and sys.stderr.isatty())
    if not enabled:
        return None, lambda: None
    state = {"wrote": False}

    def progress(done: int, total: int, outcome) -> None:
        origin = "cached" if outcome.cached else "simulated"
        # \x1b[K clears to end of line: a short status must not leave
        # residue from a longer predecessor.
        print(f"\r[{done}/{total}] {origin} {outcome.key!r}\x1b[K",
              end="", file=sys.stderr, flush=True)
        state["wrote"] = True

    def finish() -> None:
        if state["wrote"]:
            print(file=sys.stderr, flush=True)

    return progress, finish


def _telemetry_settings(args):
    """Session settings from the sweep telemetry flags, or None."""
    if not (args.trace or args.metrics_every is not None
            or args.profile or args.diagnostics):
        if args.telemetry_dir is not None:
            print("note: --telemetry-dir applies with --trace, "
                  "--metrics-every, --profile or --diagnostics",
                  file=sys.stderr)
        return None
    from repro.telemetry.state import TelemetrySettings

    return TelemetrySettings(
        trace=args.trace,
        trace_dir=args.telemetry_dir or "telemetry",
        metrics_every=args.metrics_every,
        profile=args.profile,
        diagnostics=args.diagnostics,
    )


def cmd_sweep(args) -> int:
    if args.list:
        return _list_sweeps(as_json=args.json)
    if args.json:
        print("note: --json applies to --list only", file=sys.stderr)

    try:
        shard = parse_shard(args.shard) if args.shard else None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    names = args.name or []
    kind = None  # resolved shorthand kind (set when --name is absent)
    if names:
        for name in names:
            if name not in SWEEPS:
                raise SystemExit(
                    f"unknown sweep {name!r}; "
                    f"see python -m repro sweep --list"
                )
        if args.kind is not None:
            print(f"note: sweep {names[0]!r} ignores --kind",
                  file=sys.stderr)
        specs = [build_sweep(name, **_factory_kwargs(name, args))
                 for name in names]
    else:
        # Back-compat shorthand for the two classic GEMM sweeps.
        base = _system_by_name(args.system or "Table2")
        size = args.size if args.size is not None else 128
        kind = args.kind or "bandwidth"
        if kind == "bandwidth":
            specs = [build_sweep("pcie-bandwidth", base=base, size=size)]
        else:
            specs = [build_sweep("packet-size", base=base, size=size)]
    if args.faults:
        # Fault overlay: every point of every requested sweep runs under
        # the named preset (docs/FAULTS.md).  The FaultSpec rides the
        # config hash, so overlaid runs never alias fault-free cache
        # entries.
        from repro.faults.runner import apply_faults
        from repro.faults.spec import fault_preset

        try:
            fault_spec = fault_preset(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        specs = [apply_faults(spec, fault_spec) for spec in specs]
    elif args.fault_seed is not None:
        print("note: --fault-seed applies with --faults only",
              file=sys.stderr)
    if args.domains is not None and args.domains != 1:
        # Intra-point PDES: validate the partition against every point's
        # topology up front; infeasible requests die here with the
        # offending component named (see docs/PARALLEL.md).
        try:
            specs = [apply_domains(spec, args.domains) for spec in specs]
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    settings = _telemetry_settings(args)
    if settings is not None:
        # Process-global session; pool workers inherit it through the
        # environment channel.  No explicit deactivate: the CLI process
        # (and with it the env var) ends right after the run.
        from repro.telemetry.state import activate

        activate(settings)
    if args.ladder:
        if not names:
            raise SystemExit("--ladder requires --name <sweep>")
        return _run_ladders(args, specs, shard)
    for flag in ("top_k", "pareto", "margin", "objective", "calibration"):
        if getattr(args, flag) not in (None, False, 0.1):
            print(f"note: --{flag.replace('_', '-')} applies with --ladder "
                  f"only", file=sys.stderr)
    # All requested sweeps run against one worker-pool invocation.
    progress, progress_done = _progress_printer()
    try:
        reports = run_sweeps(
            specs,
            workers=args.workers,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            shard=shard,
            progress=progress,
        )
    finally:
        progress_done()
    for spec, report in zip(specs, reports):
        results = report.results()
        if not names and kind == "bandwidth":
            rows = [
                (f"x{lanes}", f"{gbps:g}", f"{result.seconds * 1e6:.1f}")
                for (lanes, gbps), result in results.items()
            ]
            print(format_table(["lanes", "Gb/s/lane", "exec us"], rows))
        elif not names:
            rows = [
                (packet, f"{result.seconds * 1e6:.1f}")
                for packet, result in results.items()
            ]
            print(format_table(["packet B", "exec us"], rows))
        else:
            header, rows = _result_rows(report)
            print(format_table(header, rows, title=spec.name))
        print(report.describe())
    if settings is not None:
        captured = sum(1 for report in reports
                       for outcome in report.outcomes if outcome.telemetry)
        total = sum(len(report.outcomes) for report in reports)
        print(f"telemetry: {captured}/{total} point(s) captured -> "
              f"{settings.trace_dir} "
              f"(python -m repro telemetry summarize --dir "
              f"{settings.trace_dir})")
        if captured < total:
            print("note: cached points replay their records without "
                  "simulating, so they produce no telemetry; use "
                  "--no-cache to capture every point", file=sys.stderr)
    return 0


def _run_ladders(args, specs, shard) -> int:
    """``sweep --ladder``: surrogate-score, prune, simulate survivors."""
    from repro.surrogate import (
        Calibration,
        CalibrationError,
        LadderSpec,
        run_ladder,
    )

    calibration = None
    if args.calibration:
        try:
            calibration = Calibration.load(args.calibration)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            raise SystemExit(
                f"cannot load calibration {args.calibration!r}: {exc}"
            ) from None
    objectives = tuple(args.objective) if args.objective else ("ticks",)
    top_k = args.top_k
    if top_k is None and not args.pareto:
        top_k = "10%"
    progress, progress_done = _progress_printer()
    try:
        for spec in specs:
            try:
                ladder = LadderSpec(
                    spec=spec,
                    top_k=top_k,
                    pareto=args.pareto,
                    objectives=objectives,
                    margin=args.margin,
                    calibration=calibration,
                )
                lreport = run_ladder(
                    ladder,
                    workers=args.workers,
                    cache=not args.no_cache,
                    cache_dir=args.cache_dir,
                    shard=shard,
                    progress=progress,
                )
            except (CalibrationError, ValueError) as exc:
                raise SystemExit(f"ladder: {exc}") from None
            header, rows = _result_rows(lreport.report)
            estimates = {est.key: est for est in lreport.estimates}
            rows = [
                row + (f"{estimates[key].ticks / 1e6:.1f}",)
                for row, key in zip(rows, lreport.report.results())
            ]
            print(format_table(header + ["surrogate us"], rows,
                               title=spec.name))
            print(lreport.describe())
    finally:
        progress_done()
    return 0


def cmd_surrogate(args) -> int:
    """``surrogate xval`` / ``surrogate estimate``."""
    from repro.surrogate import Calibration, cross_validate, estimate_spec

    name = args.name
    if name not in SWEEPS:
        raise SystemExit(
            f"unknown sweep {name!r}; see python -m repro sweep --list"
        )
    spec = build_sweep(name, **_factory_kwargs(name, args))
    if args.action == "xval":
        progress, progress_done = _progress_printer()
        try:
            calibration = cross_validate(
                spec,
                fraction=args.fraction,
                workers=args.workers,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                progress=progress,
            )
        except ValueError as exc:
            raise SystemExit(f"surrogate xval: {exc}") from None
        finally:
            progress_done()
        print(f"cross-validation of '{spec.name}' "
              f"(fraction {args.fraction:g}):")
        print(calibration.describe())
        if args.out:
            calibration.save(args.out)
            print(f"calibration written to {args.out}")
        return 0
    # estimate: score the whole grid analytically, no simulation at all.
    calibration = None
    if args.calibration:
        try:
            calibration = Calibration.load(args.calibration)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            raise SystemExit(
                f"cannot load calibration {args.calibration!r}: {exc}"
            ) from None
    estimates = sorted(
        estimate_spec(spec, calibration=calibration),
        key=lambda est: est.ticks,
    )
    if args.top:
        estimates = estimates[:args.top]
    rows = [
        (
            repr(est.key),
            f"{est.ticks / 1e6:.1f}",
            f"{est.bytes_on_wire / 1e6:.2f}",
            f"{100 * est.uplink_busy:.1f}%",
        )
        for est in estimates
    ]
    print(format_table(
        ["point", "est us", "wire MB", "uplink"], rows,
        title=f"surrogate estimates: {spec.name} (best first)",
    ))
    return 0


# ----------------------------------------------------------------------
# orchestrate
# ----------------------------------------------------------------------
def _orchestrate_backend(args):
    """Build the requested worker backend from CLI arguments."""
    from repro.orchestrate import LocalBackend, SlurmBackend, SSHBackend

    if args.backend == "local":
        return LocalBackend(workers=args.workers,
                            inner_workers=args.inner_workers)
    if args.backend == "ssh":
        hosts = [h.strip() for h in (args.hosts or "").split(",")
                 if h.strip()]
        if not hosts:
            raise SystemExit("--backend ssh requires --hosts a,b,c")
        return SSHBackend(
            hosts=hosts,
            workers_per_host=args.workers_per_host,
            remote_python=args.remote_python,
            remote_prelude=args.remote_prelude,
            inner_workers=args.inner_workers,
        )
    return SlurmBackend(
        workers=args.workers,
        partition=args.slurm_partition,
        time_limit=args.slurm_time,
        remote_python=args.remote_python,
        remote_prelude=args.remote_prelude,
        submit=args.submit,
        inner_workers=args.inner_workers,
    )


def _backend_slots(args) -> int:
    if args.backend == "ssh":
        hosts = [h for h in (args.hosts or "").split(",") if h.strip()]
        return max(1, len(hosts)) * max(1, args.workers_per_host)
    return max(1, args.workers)


def cmd_orchestrate(args) -> int:
    from repro.orchestrate import (
        OrchestrationError,
        VersionMismatchError,
        orchestrate_run,
        prepare_run,
        resume_run,
        run_worker,
    )
    from repro.sweep import default_cache_dir

    # ------------------------------------------------------------------
    # Worker role (spawned by a backend; not typed by hand).
    # ------------------------------------------------------------------
    if args.worker:
        return run_worker(args.worker, worker_id=args.worker_id,
                          inner_workers=args.inner_workers)

    backend = _orchestrate_backend(args)
    try:
        if args.resume:
            payload = resume_run(
                args.resume, backend,
                poll_interval=args.poll_interval,
                max_attempts=args.max_attempts,
                timeout=args.timeout,
            )
        else:
            names = args.name or []
            if not names:
                raise SystemExit(
                    "orchestrate requires --name <sweep> "
                    "(repeatable; see python -m repro sweep --list), "
                    "or --resume <run-dir>"
                )
            for name in names:
                if name not in SWEEPS:
                    raise SystemExit(
                        f"unknown sweep {name!r}; "
                        f"see python -m repro sweep --list"
                    )
            sweeps = []
            for name in names:
                overrides = _plain_overrides(name, args)
                if args.domains is not None and args.domains != 1:
                    # Validated here (fail fast, component-named error)
                    # and replayed by every worker when the manifest's
                    # spec is rebuilt (see orchestrate/manifest.py).
                    try:
                        apply_domains(
                            build_sweep(name, **_factory_kwargs(name, args)),
                            args.domains,
                        )
                    except ValueError as exc:
                        raise SystemExit(str(exc)) from None
                    overrides["domains"] = args.domains
                sweeps.append({"name": name, "overrides": overrides})
            cache_dir = (args.cache_dir if args.cache_dir
                         else default_cache_dir())
            if args.run_dir:
                run_dir = args.run_dir
            else:
                import time as _time
                from pathlib import Path as _Path

                stamp = _time.strftime("%Y%m%d-%H%M%S")
                run_dir = (_Path(cache_dir) / "runs"
                           / f"orch-{stamp}-{os.getpid()}")
            shards = (args.shards if args.shards
                      else max(2, 2 * _backend_slots(args)))
            prepare_run(
                run_dir, sweeps, cache_dir, shards,
                lease_ttl=args.lease_ttl,
                extra_imports=args.extra_import,
            )
            print(f"run dir: {run_dir}", file=sys.stderr)
            if args.backend == "slurm" and not args.submit:
                # Script-only mode: hand the batch file to the user's
                # submission wrapper, then --resume polls it home.
                backend.launch(run_dir)
                print(
                    f"wrote {run_dir}/sbatch.sh -- submit it "
                    f"(sbatch {run_dir}/sbatch.sh), then run\n"
                    f"  python -m repro orchestrate --resume {run_dir} "
                    f"--backend slurm"
                )
                return 0
            payload = orchestrate_run(
                run_dir, backend,
                poll_interval=args.poll_interval,
                max_attempts=args.max_attempts,
                timeout=args.timeout,
            )
    except (OrchestrationError, VersionMismatchError,
            FileExistsError, FileNotFoundError) as exc:
        # FileExistsError: --run-dir already holds a run (use --resume).
        # FileNotFoundError: --resume on a directory without a manifest.
        raise SystemExit(f"orchestrate: {exc}") from None

    for record in payload["sweeps"]:
        print(
            f"sweep {record['spec']!r}: {len(record['points'])} points "
            f"merged across {payload['shards']} shard(s)"
        )
    print(
        f"fleet simulated {payload['simulated_points']} point(s), "
        f"replayed {payload['replayed_points']} from cache; "
        f"report: {payload['run_dir']}/report.json"
    )
    return 0


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------
def cmd_faults(args) -> int:
    """``faults list`` / ``faults describe --preset <name>``."""
    import inspect as _inspect

    from repro.faults.spec import FAULT_PRESETS, fault_preset

    if args.action == "list":
        rows = []
        for name in sorted(FAULT_PRESETS):
            doc = (_inspect.getdoc(FAULT_PRESETS[name]) or "").splitlines()
            rows.append((name, doc[0] if doc else ""))
        print(format_table(
            ["preset", "description"], rows,
            title="fault presets (python -m repro sweep --faults <preset>)",
        ))
        return 0
    if not args.preset:
        raise SystemExit("faults describe requires --preset <name>")
    try:
        spec = fault_preset(args.preset, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(f"preset: {args.preset}")
    print(spec.describe())
    return 0


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def _telemetry_keys(directory: str) -> list:
    """Point key hashes with artifacts in ``directory``, sorted."""
    suffixes = (".trace.json", ".metrics.json", ".profile.json", ".prom")
    keys = set()
    for entry in os.listdir(directory):
        for suffix in suffixes:
            if entry.endswith(suffix):
                keys.add(entry[:-len(suffix)])
                break
    return sorted(keys)


def cmd_telemetry(args) -> int:
    """``telemetry summarize`` / ``telemetry export``."""
    import json

    from repro.telemetry import validate_chrome_trace

    directory = args.dir
    if not os.path.isdir(directory):
        raise SystemExit(
            f"telemetry: no artifact directory {directory!r} (capture one "
            f"with: python -m repro sweep --name <sweep> --trace)"
        )
    keys = _telemetry_keys(directory)
    if not keys:
        raise SystemExit(f"telemetry: no artifacts in {directory!r}")

    if args.action == "summarize":
        rows = []
        for key in keys:
            spans = instants = "-"
            valid = "-"
            trace_path = os.path.join(directory, f"{key}.trace.json")
            if os.path.exists(trace_path):
                with open(trace_path, encoding="utf-8") as handle:
                    document = json.load(handle)
                events = document.get("traceEvents", [])
                spans = sum(1 for e in events if e.get("ph") == "X")
                instants = sum(1 for e in events if e.get("ph") == "i")
                problems = validate_chrome_trace(document)
                valid = "ok" if not problems else f"{len(problems)} bad"
            samples = series = "-"
            metrics_path = os.path.join(directory, f"{key}.metrics.json")
            if os.path.exists(metrics_path):
                with open(metrics_path, encoding="utf-8") as handle:
                    metrics = json.load(handle)
                samples = metrics.get("samples", "-")
                series = metrics.get("series", "-")
            hotspot = "-"
            profile_path = os.path.join(directory, f"{key}.profile.json")
            if os.path.exists(profile_path):
                with open(profile_path, encoding="utf-8") as handle:
                    profile = json.load(handle)
                buckets = profile.get("buckets", [])
                if buckets:
                    top = buckets[0]
                    hotspot = (f"{top['bucket']} "
                               f"({top['seconds'] * 1e3:.1f} ms)")
            rows.append((key[:16], spans, instants, samples, series,
                         hotspot, valid))
        print(format_table(
            ["point", "spans", "instants", "samples", "series",
             "hotspot", "trace"],
            rows, title=f"telemetry artifacts in {directory}",
        ))
        return 0

    # export: one validated Chrome trace document to --out.
    traces = [key for key in keys
              if os.path.exists(os.path.join(directory,
                                             f"{key}.trace.json"))]
    if not traces:
        raise SystemExit(f"telemetry: no trace artifacts in {directory!r}")
    if args.key:
        matches = [key for key in traces if key.startswith(args.key)]
        if not matches:
            raise SystemExit(
                f"telemetry: no trace matches key prefix {args.key!r}"
            )
        if len(matches) > 1:
            raise SystemExit(
                f"telemetry: key prefix {args.key!r} is ambiguous "
                f"({len(matches)} matches); use a longer prefix"
            )
        chosen = matches[0]
    elif len(traces) == 1:
        chosen = traces[0]
    else:
        raise SystemExit(
            f"telemetry: {len(traces)} traces in {directory!r}; pick one "
            f"with --key <prefix> (see 'telemetry summarize')"
        )
    source = os.path.join(directory, f"{chosen}.trace.json")
    with open(source, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = validate_chrome_trace(document)
    if problems:
        raise SystemExit(
            f"telemetry: {source} is not a valid Chrome trace: "
            + "; ".join(problems[:5])
        )
    out = args.out or f"{chosen[:16]}.trace.json"
    with open(source, "rb") as handle:
        payload = handle.read()
    with open(out, "wb") as handle:
        handle.write(payload)
    events = document.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    print(f"wrote {out} ({spans} spans, {len(events)} events) -- load it "
          f"in Perfetto (ui.perfetto.dev) or chrome://tracing")
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    """``serve``: run the result server until interrupted."""
    import asyncio

    from repro.serve import ServeSettings, serve_forever

    settings = ServeSettings(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        domains=args.domains,
        batch_window=args.batch_window,
    )
    try:
        asyncio.run(serve_forever(settings, announce=True))
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        summary = cache.summarize()
        print(f"cache dir:  {summary['root']}")
        print(f"entries:    {summary['entries']}")
        print(f"size:       {summary['bytes'] / 1e6:.2f} MB")
        if summary["sweeps"]:
            rows = sorted(summary["sweeps"].items())
            print()
            print(format_table(["sweep", "entries"], rows))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    # prune
    if not args.sweep:
        raise SystemExit("cache prune requires --sweep <name>")
    removed = cache.prune(args.sweep)
    print(f"removed {removed} entries tagged {args.sweep!r} from {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gem5-AcceSys reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_systems = sub.add_parser("systems", help="list named configurations")
    p_systems.set_defaults(func=cmd_systems)

    p_gemm = sub.add_parser("gemm", help="run one GEMM")
    p_gemm.add_argument("--system", default="Table2")
    p_gemm.add_argument("--size", type=int, default=128)
    p_gemm.add_argument("--packet-size", type=int, default=0)
    p_gemm.add_argument("--seed", type=int, default=1234)
    p_gemm.add_argument("--verify", action="store_true",
                        help="check the result against numpy")
    p_gemm.add_argument("--translation", action="store_true",
                        help="print Table IV metrics")
    p_gemm.set_defaults(func=cmd_gemm)

    p_vit = sub.add_parser("vit", help="run ViT inference")
    p_vit.add_argument("--system", default="PCIe-8GB")
    p_vit.add_argument("--model", default="base",
                       choices=["base", "large", "huge"])
    p_vit.add_argument("--dim-scale", type=float, default=0.25)
    p_vit.set_defaults(func=cmd_vit)

    p_sweep = sub.add_parser(
        "sweep", help="run a registered experiment sweep"
    )
    p_sweep.add_argument("--list", action="store_true",
                         help="list registered experiments and exit")
    p_sweep.add_argument("--json", action="store_true",
                         help="with --list: machine-readable registry "
                              "dump (name/runner/points/description)")
    p_sweep.add_argument("--name", action="append", default=None,
                         help="registered experiment to run "
                              "(see --list; covers every paper figure); "
                              "repeat to batch several sweeps through "
                              "one worker-pool invocation")
    p_sweep.add_argument("--kind", choices=["bandwidth", "packet"],
                         default=None,
                         help="classic GEMM sweeps (when --name is unset; "
                              "default: bandwidth)")
    p_sweep.add_argument("--system", default=None,
                         help="base system (if the sweep takes one; "
                              "--kind sweeps default to Table2)")
    p_sweep.add_argument("--size", type=int, default=None,
                         help="GEMM size override (if the sweep takes one)")
    p_sweep.add_argument("--model", default=None,
                         help="ViT model override (if the sweep takes one)")
    p_sweep.add_argument("--dim-scale", type=float, default=None,
                         help="ViT dim-scale override "
                              "(if the sweep takes one)")
    p_sweep.add_argument("--domains", type=int, default=None, metavar="N",
                         help="event domains per point (intra-point PDES; "
                              "default 1 = classic single-queue engine; "
                              "clamped to what each point's topology "
                              "supports, refused if a hop violates the "
                              "lookahead rule; see docs/PARALLEL.md)")
    p_sweep.add_argument("--shard", default=None, metavar="I/N",
                         help="simulate only shard I of N "
                              "(deterministic slice; share --cache-dir "
                              "across shards to compose the full grid)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process count for uncached points "
                              "(default: $REPRO_SWEEP_WORKERS or serial)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="result cache location "
                              "(default: $REPRO_SWEEP_CACHE_DIR or "
                              "~/.cache/repro/sweeps)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always re-simulate; do not read or "
                              "write the result cache")
    p_sweep.add_argument("--ladder", action="store_true",
                         help="fidelity ladder: surrogate-score the full "
                              "grid, prune, simulate only the survivors "
                              "(docs/SURROGATE.md)")
    p_sweep.add_argument("--top-k", default=None, metavar="K",
                         help="ladder: keep the K best estimated points "
                              "(count or percentage like '10%%'; default "
                              "10%% when --pareto is not given)")
    p_sweep.add_argument("--pareto", action="store_true",
                         help="ladder: keep the Pareto front of the "
                              "estimated objectives instead of top-K")
    p_sweep.add_argument("--margin", type=float, default=0.1,
                         help="ladder: safety margin; survivors within "
                              "(1+margin) of the cutoff are kept "
                              "(default 0.1)")
    p_sweep.add_argument("--objective", action="append", default=None,
                         choices=["ticks", "bytes_on_wire", "uplink_busy"],
                         help="ladder objective (repeatable; top-K uses "
                              "the first, Pareto all; default: ticks)")
    p_sweep.add_argument("--calibration", default=None, metavar="PATH",
                         help="ladder: calibration JSON from 'surrogate "
                              "xval'; scales estimates and refuses to "
                              "prune when measured p95 error > margin")
    p_sweep.add_argument("--faults", default=None, metavar="PRESET",
                         help="overlay a fault-injection preset onto "
                              "every point (see 'faults list'; "
                              "docs/FAULTS.md)")
    p_sweep.add_argument("--fault-seed", type=int, default=None,
                         help="reseed the fault preset's deterministic "
                              "injection streams (with --faults)")
    p_sweep.add_argument("--trace", action="store_true",
                         help="record tick-domain spans (DMA lifecycles, "
                              "TLP trains, fault windows, PDES quantum "
                              "rounds) per simulated point as Chrome "
                              "trace JSON (docs/OBSERVABILITY.md); "
                              "results stay bit-identical")
    p_sweep.add_argument("--metrics-every", type=int, default=None,
                         metavar="TICKS",
                         help="sample per-component stat deltas every N "
                              "simulated ticks into ring-buffered time "
                              "series (with Prometheus text exposition)")
    p_sweep.add_argument("--profile", choices=["exact", "sampling"],
                         default=None,
                         help="attribute host wall-clock of the event "
                              "loop to component buckets (exact: time "
                              "every callback; sampling: every 97th)")
    p_sweep.add_argument("--diagnostics", action="store_true",
                         help="record simulator run-health counters "
                              "(events executed/skipped, sync rounds) "
                              "in each outcome record")
    p_sweep.add_argument("--telemetry-dir", default=None, metavar="DIR",
                         help="artifact directory for --trace/"
                              "--metrics-every/--profile outputs "
                              "(default: ./telemetry)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_sur = sub.add_parser(
        "surrogate",
        help="analytical surrogate tier: score grids without simulating, "
             "cross-validate the model (docs/SURROGATE.md)",
    )
    p_sur.add_argument("action", choices=["xval", "estimate"],
                       help="xval: simulate a stratified sample and fit "
                            "the calibration; estimate: score the grid "
                            "analytically")
    p_sur.add_argument("--name", default="fig6a-mem-bandwidth",
                       help="registered sweep whose grid to score "
                            "(see sweep --list)")
    p_sur.add_argument("--system", default=None,
                       help="base system (if the sweep takes one)")
    p_sur.add_argument("--size", type=int, default=None,
                       help="GEMM size override (if the sweep takes one)")
    p_sur.add_argument("--model", default=None,
                       help="ViT model override (if the sweep takes one)")
    p_sur.add_argument("--dim-scale", type=float, default=None,
                       help="ViT dim-scale override "
                            "(if the sweep takes one)")
    p_sur.add_argument("--fraction", type=float, default=0.5,
                       help="xval: fraction of the grid to simulate "
                            "(stratified every-Nth sample; default 0.5)")
    p_sur.add_argument("--out", default=None, metavar="PATH",
                       help="xval: write the calibration JSON here")
    p_sur.add_argument("--calibration", default=None, metavar="PATH",
                       help="estimate: apply a saved calibration")
    p_sur.add_argument("--top", type=int, default=None,
                       help="estimate: show only the N best points")
    p_sur.add_argument("--workers", type=int, default=None,
                       help="xval: process count for uncached points")
    p_sur.add_argument("--cache-dir", default=None,
                       help="xval: result cache location")
    p_sur.add_argument("--no-cache", action="store_true",
                       help="xval: always re-simulate the sample")
    p_sur.set_defaults(func=cmd_surrogate)

    p_orch = sub.add_parser(
        "orchestrate",
        help="run a sweep as shard work units across many workers "
             "(local pool, ssh hosts, or slurm); see docs/ORCHESTRATION.md",
    )
    p_orch.add_argument("--name", action="append", default=None,
                        help="registered experiment to orchestrate "
                             "(repeatable; see sweep --list)")
    p_orch.add_argument("--system", default=None,
                        help="base system override (if the sweep takes one)")
    p_orch.add_argument("--size", type=int, default=None,
                        help="GEMM size override (if the sweep takes one)")
    p_orch.add_argument("--model", default=None,
                        help="ViT model override (if the sweep takes one)")
    p_orch.add_argument("--dim-scale", type=float, default=None,
                        help="ViT dim-scale override "
                             "(if the sweep takes one)")
    p_orch.add_argument("--domains", type=int, default=None, metavar="N",
                        help="event domains per point (intra-point PDES; "
                             "recorded in the run manifest so every "
                             "shard worker rebuilds the same partitioned "
                             "spec; see docs/PARALLEL.md)")
    p_orch.add_argument("--backend", choices=["local", "ssh", "slurm"],
                        default="local",
                        help="where shard workers run (default: local)")
    p_orch.add_argument("--workers", type=int, default=2,
                        help="worker count (local pool size / slurm "
                             "array width; default 2)")
    p_orch.add_argument("--hosts", default=None,
                        help="ssh backend: comma-separated host list "
                             "(shared filesystem + same tree required)")
    p_orch.add_argument("--workers-per-host", type=int, default=1,
                        help="ssh backend: workers per host (default 1)")
    p_orch.add_argument("--remote-python", default="python3",
                        help="ssh/slurm: interpreter on the remote side")
    p_orch.add_argument("--remote-prelude", default="",
                        help="ssh/slurm: shell fragment run before the "
                             "worker (e.g. 'cd /repo && export "
                             "PYTHONPATH=src')")
    p_orch.add_argument("--slurm-partition", default="",
                        help="slurm: partition for the array job")
    p_orch.add_argument("--slurm-time", default="04:00:00",
                        help="slurm: per-task time limit")
    p_orch.add_argument("--submit", action="store_true",
                        help="slurm: sbatch the generated script and "
                             "poll it (default: write script and exit)")
    p_orch.add_argument("--shards", type=int, default=None,
                        help="work-unit count N (default: 2x worker "
                             "slots)")
    p_orch.add_argument("--run-dir", default=None,
                        help="run directory (manifest, leases, report; "
                             "default: <cache-dir>/runs/orch-<stamp>)")
    p_orch.add_argument("--cache-dir", default=None,
                        help="shared result cache location (default: "
                             "$REPRO_SWEEP_CACHE_DIR or "
                             "~/.cache/repro/sweeps)")
    p_orch.add_argument("--lease-ttl", type=float, default=60.0,
                        help="seconds of heartbeat silence before a "
                             "shard is reassigned (default 60)")
    p_orch.add_argument("--poll-interval", type=float, default=0.5,
                        help="dispatcher poll period in seconds")
    p_orch.add_argument("--max-attempts", type=int, default=3,
                        help="attempts per shard per invocation before "
                             "the run fails (default 3)")
    p_orch.add_argument("--timeout", type=float, default=None,
                        help="abort the dispatcher after this many "
                             "seconds (default: none)")
    p_orch.add_argument("--resume", default=None, metavar="RUN_DIR",
                        help="continue an interrupted run; cached "
                             "points are never recomputed")
    p_orch.add_argument("--extra-import", action="append", default=None,
                        help="module imported on workers before specs "
                             "are rebuilt (for user-registered sweeps)")
    p_orch.add_argument("--worker", default=None, metavar="RUN_DIR",
                        help=argparse.SUPPRESS)  # spawned by backends
    p_orch.add_argument("--worker-id", default=None,
                        help=argparse.SUPPRESS)
    p_orch.add_argument("--inner-workers", type=int, default=1,
                        help="process-pool width inside each worker "
                             "(default 1: parallelism comes from shards)")
    p_orch.set_defaults(func=cmd_orchestrate)

    p_faults = sub.add_parser(
        "faults",
        help="list or describe deterministic fault-injection presets "
             "(docs/FAULTS.md)",
    )
    p_faults.add_argument("action", choices=["list", "describe"],
                          nargs="?", default="list")
    p_faults.add_argument("--preset", default=None,
                          help="describe: preset name (see 'faults list')")
    p_faults.add_argument("--seed", type=int, default=None,
                          help="describe: show the preset reseeded")
    p_faults.set_defaults(func=cmd_faults)

    p_tel = sub.add_parser(
        "telemetry",
        help="summarize or export telemetry artifacts captured with "
             "sweep --trace / --metrics-every (docs/OBSERVABILITY.md)",
    )
    p_tel.add_argument("action", choices=["summarize", "export"],
                       nargs="?", default="summarize")
    p_tel.add_argument("--dir", default="telemetry",
                       help="artifact directory (default: ./telemetry; "
                            "matches sweep --telemetry-dir)")
    p_tel.add_argument("--key", default=None, metavar="PREFIX",
                       help="export: key-hash prefix selecting one "
                            "point's trace")
    p_tel.add_argument("--out", default=None, metavar="PATH",
                       help="export: destination path for the Chrome "
                            "trace JSON")
    p_tel.set_defaults(func=cmd_telemetry)

    p_serve = sub.add_parser(
        "serve",
        help="serve cached sweep results over HTTP; coalesce and batch "
             "cold misses into single fill runs (docs/SERVING.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (default 8321; 0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="process-pool width of each fill batch "
                              "(default 1)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="result cache location, pinned at startup "
                              "(default: $REPRO_SWEEP_CACHE_DIR or "
                              "~/.cache/repro/sweeps)")
    p_serve.add_argument("--domains", type=int, default=None, metavar="N",
                         help="event domains per served point (intra-point "
                              "PDES) unless a query's args set their own")
    p_serve.add_argument("--batch-window", type=float, default=0.01,
                         metavar="SECONDS",
                         help="how long a first miss waits for concurrent "
                              "distinct misses to share its fill run "
                              "(default 0.01)")
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the sweep result cache"
    )
    p_cache.add_argument("action", choices=["stats", "clear", "prune"])
    p_cache.add_argument("--sweep", default=None,
                         help="sweep name for prune")
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache location (default: "
                              "$REPRO_SWEEP_CACHE_DIR or "
                              "~/.cache/repro/sweeps)")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
