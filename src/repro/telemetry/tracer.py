"""Tick-domain span tracing with Chrome trace-event export.

The tracer records *simulated-time* spans -- DMA descriptor lifecycles,
TLP trains per link hop, fault retrain/down-train windows, PDES quantum
rounds -- and exports them as Chrome trace-event JSON (the format
``chrome://tracing`` and Perfetto load natively).

Determinism
-----------
Every timestamp is a simulated tick converted with integer-exact
arithmetic (1 tick = 1 ps; Chrome's ``ts`` unit is microseconds, so
``ts = ticks / 10**6``); nothing here reads wall clocks, PIDs, or
iteration order of unordered containers.  Spans are emitted in event
execution order, which the simulator guarantees is identical across
reruns, ``--shard`` slices and ``--domains`` counts, so serializing the
same simulation twice produces *byte-identical* trace files -- the
telemetry acceptance bar, pinned by ``tests/test_telemetry.py``.

Zero overhead when off
----------------------
:data:`TRACER` is a module-level no-op singleton for ad-hoc use, but
the instrumented components do not even pay a call to it: their hook
attributes (``link.trace``, ``dma.trace``) default to ``None`` exactly
like the fault layer's ``link.faults``, so the disabled path costs one
``is None`` test co-located with an existing branch -- and the
:class:`~repro.sim.eventq.Simulator` run loops dispatch to an
instrumented variant *at entry*, leaving the hot loop untouched.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.sim.ticks import TICKS_PER_US

__all__ = [
    "DmaTrace",
    "LinkTrace",
    "NullTracer",
    "QuantumTrace",
    "SpanTracer",
    "TRACER",
    "validate_chrome_trace",
]


class NullTracer:
    """Tracer that records nothing (the disabled singleton)."""

    __slots__ = ()
    enabled = False

    def complete(self, pid: int, tid_name: str, name: str, cat: str,
                 start_tick: int, dur_ticks: int,
                 args: Optional[dict] = None) -> None:
        pass

    def instant(self, pid: int, tid_name: str, name: str, cat: str,
                tick: int, args: Optional[dict] = None) -> None:
        pass

    def clear(self) -> None:
        pass


#: The module-level no-op singleton.
TRACER = NullTracer()


class SpanTracer:
    """Recording tracer: spans accumulate in execution order.

    ``pid`` is the event-domain index (one Chrome "process" per domain)
    and ``tid_name`` a component name, mapped to a stable integer thread
    id in first-appearance order (deterministic, because attachment and
    event execution order are).
    """

    enabled = True

    def __init__(self) -> None:
        #: Recorded events: ("X"|"i", pid, tid, name, cat, ts, dur, args).
        self._events: List[tuple] = []
        #: (pid, tid_name) -> integer tid, in first-appearance order.
        self._tids: Dict[Tuple[int, str], int] = {}

    def __len__(self) -> int:
        return len(self._events)

    def _tid(self, pid: int, tid_name: str) -> int:
        key = (pid, tid_name)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids)
            self._tids[key] = tid
        return tid

    def complete(self, pid: int, tid_name: str, name: str, cat: str,
                 start_tick: int, dur_ticks: int,
                 args: Optional[dict] = None) -> None:
        """Record one complete ("X") span of ``dur_ticks`` ticks."""
        self._events.append(
            ("X", pid, self._tid(pid, tid_name), name, cat,
             start_tick, dur_ticks, args)
        )

    def instant(self, pid: int, tid_name: str, name: str, cat: str,
                tick: int, args: Optional[dict] = None) -> None:
        """Record one instant ("i") event."""
        self._events.append(
            ("i", pid, self._tid(pid, tid_name), name, cat, tick, 0, args)
        )

    def clear(self) -> None:
        self._events.clear()
        self._tids.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """Trace events in Chrome trace-event dict form.

        Metadata (process/thread names) first, then the spans in
        recording order.  ``ts``/``dur`` are microseconds derived from
        ticks by exact division.
        """
        out: List[dict] = []
        pids = sorted({pid for (pid, _name) in self._tids})
        for pid in pids:
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"domain{pid}"},
            })
        for (pid, tid_name), tid in self._tids.items():
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": tid_name},
            })
        for ph, pid, tid, name, cat, tick, dur, args in self._events:
            event = {
                "ph": ph, "pid": pid, "tid": tid, "name": name, "cat": cat,
                "ts": tick / TICKS_PER_US,
            }
            if ph == "X":
                event["dur"] = dur / TICKS_PER_US
            else:
                event["s"] = "t"
            if args:
                event["args"] = args
            out.append(event)
        return out

    def to_chrome_json(self) -> str:
        """The full trace document as a deterministic JSON string."""
        document = {
            "displayTimeUnit": "ns",
            "traceEvents": self.chrome_events(),
        }
        return json.dumps(document, sort_keys=True, separators=(",", ":"))

    def write_chrome(self, path) -> None:
        """Write the trace document to ``path`` (UTF-8, byte-stable)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_json())


def validate_chrome_trace(document: dict) -> List[str]:
    """Schema-check a Chrome trace-event document.

    Returns a list of problems (empty means valid).  Checks the subset
    of the format the tracer emits and Perfetto requires: a
    ``traceEvents`` array whose entries carry ``ph``/``pid``/``tid``/
    ``name``, non-negative numeric ``ts``, and ``dur`` on complete
    events.  Shared by the tests and the CI telemetry-smoke job.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid missing or not an int")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid missing or not an int")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name missing or not a string")
        if ph in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems


# ----------------------------------------------------------------------
# Component hook adapters
# ----------------------------------------------------------------------
class LinkTrace:
    """Per-link tracing hook: TLP trains plus fault windows.

    Bound to one directional link (``link.trace``) with the link's
    domain as pid and its name as the thread; the fault layer shares the
    hook (``LinkFaultState.trace``) so retrain/down-train windows land
    on the same thread row as the trains they delay.
    """

    __slots__ = ("tracer", "pid", "tid_name")

    def __init__(self, tracer: SpanTracer, pid: int, tid_name: str) -> None:
        self.tracer = tracer
        self.pid = pid
        self.tid_name = tid_name

    def tlp_train(self, start: int, occupancy: int, n_tlps: int,
                  payload_bytes: int) -> None:
        self.tracer.complete(
            self.pid, self.tid_name, "tlp-train", "pcie", start, occupancy,
            args={"tlps": n_tlps, "bytes": payload_bytes},
        )

    def retrain(self, start: int, stall: int) -> None:
        self.tracer.complete(
            self.pid, self.tid_name, "retrain-window", "fault", start, stall
        )

    def downtrain(self, start: int, penalty: int) -> None:
        self.tracer.complete(
            self.pid, self.tid_name, "downtrain-penalty", "fault",
            start, penalty,
        )


class DmaTrace:
    """Per-engine tracing hook for DMA descriptor lifecycles."""

    __slots__ = ("tracer", "pid", "tid_name")

    def __init__(self, tracer: SpanTracer, pid: int, tid_name: str) -> None:
        self.tracer = tracer
        self.pid = pid
        self.tid_name = tid_name

    def submit(self, stream: str, size: int, tick: int) -> None:
        self.tracer.instant(
            self.pid, self.tid_name, f"dma-submit:{stream}", "dma", tick,
            args={"bytes": size},
        )

    def segment(self, stream: str, issued_tick: int, done_tick: int,
                size: int) -> None:
        self.tracer.complete(
            self.pid, self.tid_name, f"dma-segment:{stream}", "dma",
            issued_tick, done_tick - issued_tick, args={"bytes": size},
        )

    def descriptor(self, stream: str, submit_tick: int, retire_tick: int,
                   size: int, retries: int) -> None:
        args = {"bytes": size}
        if retries:
            args["retries"] = retries
        self.tracer.complete(
            self.pid, self.tid_name, f"dma-descriptor:{stream}", "dma",
            submit_tick, retire_tick - submit_tick, args=args,
        )

    def retry(self, stream: str, tick: int, attempt: int) -> None:
        self.tracer.instant(
            self.pid, self.tid_name, f"dma-retry:{stream}", "dma", tick,
            args={"attempt": attempt},
        )

    def abort(self, stream: str, tick: int, reason: str) -> None:
        self.tracer.instant(
            self.pid, self.tid_name, f"dma-abort:{stream}", "dma", tick,
            args={"reason": reason},
        )


class QuantumTrace:
    """PDES quantum-barrier hook: one span per lockstep round."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: SpanTracer) -> None:
        self.tracer = tracer

    def round(self, start: int, end: int, round_index: int) -> None:
        self.tracer.complete(
            0, "pdes-quantum", "quantum-round", "pdes", start, end - start,
            args={"round": round_index},
        )
