"""Telemetry: span tracing, time-series metrics, self-profiling.

Three observability primitives for the simulator (docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.tracer` -- tick-domain spans (DMA descriptor
  lifecycles, TLP trains per link hop, fault retrain/down-train
  windows, PDES quantum rounds) exported as deterministic Chrome
  trace-event JSON, loadable in Perfetto.
* :mod:`repro.telemetry.metrics` -- periodic StatGroup delta snapshots
  in a bounded ring buffer, with a Prometheus text exposition writer.
* :mod:`repro.telemetry.profiler` -- host wall-clock attribution of the
  event loop to component buckets (exact or sampling).

Sessions are process-global (:func:`activate` / :func:`deactivate`,
inherited by sweep pool workers through an environment variable) and
never touch cache keys or result records: telemetry observes a
simulation, it does not participate in one.  Disabled -- the default --
every hook is ``None`` and the golden-value tests pin bit-identical
results; the import itself is gated below 2% run-loop overhead by
``benchmarks/bench_perf_core.py``'s ``tracer_off_overhead`` metric.
"""

from repro.telemetry.metrics import MetricsSampler, render_prometheus
from repro.telemetry.profiler import SelfProfiler
from repro.telemetry.runtime import TelemetryRuntime
from repro.telemetry.state import (
    TELEMETRY_ENV,
    TelemetrySettings,
    activate,
    active,
    current_runtime,
    deactivate,
    drain_point,
    on_system_acquired,
)
from repro.telemetry.tracer import (
    TRACER,
    NullTracer,
    SpanTracer,
    validate_chrome_trace,
)

__all__ = [
    "TELEMETRY_ENV",
    "MetricsSampler",
    "NullTracer",
    "SelfProfiler",
    "SpanTracer",
    "TRACER",
    "TelemetryRuntime",
    "TelemetrySettings",
    "activate",
    "active",
    "current_runtime",
    "deactivate",
    "drain_point",
    "on_system_acquired",
    "render_prometheus",
    "validate_chrome_trace",
]
