"""Process-global telemetry session state.

This module is deliberately tiny and import-light: the system factory
(:func:`repro.core.runner.system_for`) consults it on *every* system
acquisition, including the default untraced path, so it must not drag
the rest of the telemetry stack (tracer, sampler, profiler) into the
import footprint of ordinary sweeps.  The heavy modules are imported
lazily, and only once a session is actually active.

A session is activated either in-process (:func:`activate`) or through
the :data:`TELEMETRY_ENV` environment variable -- the channel by which
sweep pool workers (spawned after the parent exported the variable)
inherit the parent's settings without the settings riding the
content-addressed cache key.  Telemetry never changes what a point
*computes*, so it must never change what a point is *named*.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TELEMETRY_ENV",
    "TelemetrySettings",
    "activate",
    "active",
    "current_runtime",
    "deactivate",
    "drain_point",
    "on_system_acquired",
]

#: Environment channel: a JSON-encoded :class:`TelemetrySettings`.
TELEMETRY_ENV = "REPRO_TELEMETRY"


@dataclass(frozen=True)
class TelemetrySettings:
    """What the telemetry layer should collect for each simulated point.

    Everything defaults to *off*; :attr:`enabled` is False for the
    default settings, and the instrumentation hooks stay ``None`` so the
    fault-layer precedent holds: an inactive telemetry subsystem is
    bit-identical (and, within the perf gate, cost-identical) to a tree
    without one.
    """

    #: Record tick-domain spans (DMA lifecycles, TLP trains, fault
    #: windows, PDES quantum rounds) and export Chrome trace JSON.
    trace: bool = False
    #: Directory for per-point trace artifacts (``<key_hash>.trace.json``).
    trace_dir: Optional[str] = None
    #: Sample StatGroup deltas every N simulated ticks (None disables).
    metrics_every: Optional[int] = None
    #: Ring-buffer capacity of the metrics sampler (samples retained).
    metrics_capacity: int = 4096
    #: Self-profiler mode: ``None``, ``"exact"`` or ``"sampling"``.
    profile: Optional[str] = None
    #: Sampling stride for ``profile="sampling"``.
    profile_every: int = 97
    #: Capture ``Simulator.diagnostics()`` per point.
    diagnostics: bool = False

    @property
    def enabled(self) -> bool:
        return bool(
            self.trace
            or self.metrics_every is not None
            or self.profile is not None
            or self.diagnostics
        )

    def to_json(self) -> dict:
        return {
            "trace": self.trace,
            "trace_dir": self.trace_dir,
            "metrics_every": self.metrics_every,
            "metrics_capacity": self.metrics_capacity,
            "profile": self.profile,
            "profile_every": self.profile_every,
            "diagnostics": self.diagnostics,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TelemetrySettings":
        return cls(
            trace=bool(payload.get("trace", False)),
            trace_dir=payload.get("trace_dir"),
            metrics_every=payload.get("metrics_every"),
            metrics_capacity=int(payload.get("metrics_capacity", 4096)),
            profile=payload.get("profile"),
            profile_every=int(payload.get("profile_every", 97)),
            diagnostics=bool(payload.get("diagnostics", False)),
        )


_ACTIVE: Optional[TelemetrySettings] = None
_RUNTIME = None
#: Raw env string the cached parse below corresponds to.
_ENV_RAW: Optional[str] = None
_ENV_PARSED: Optional[TelemetrySettings] = None


def activate(settings: TelemetrySettings, *, export_env: bool = True) -> None:
    """Make ``settings`` the process-wide telemetry session.

    ``export_env`` additionally publishes the settings through
    :data:`TELEMETRY_ENV` so worker processes forked/spawned *after*
    this call pick them up.  Activation drops the memoized system pool:
    systems built before the session exists carry no hooks, and reusing
    them would silently produce empty traces.
    """
    global _ACTIVE, _RUNTIME
    deactivate()
    _ACTIVE = settings
    _RUNTIME = None
    if export_env:
        os.environ[TELEMETRY_ENV] = json.dumps(
            settings.to_json(), sort_keys=True
        )
    from repro.core.runner import clear_system_memo

    clear_system_memo()


def deactivate() -> None:
    """End the session: detach hooks and clear the env channel."""
    global _ACTIVE, _RUNTIME, _ENV_RAW, _ENV_PARSED
    runtime = _RUNTIME
    _ACTIVE = None
    _RUNTIME = None
    _ENV_RAW = None
    _ENV_PARSED = None
    os.environ.pop(TELEMETRY_ENV, None)
    if runtime is not None:
        runtime.detach_all()
        from repro.core.runner import clear_system_memo

        clear_system_memo()


def active() -> Optional[TelemetrySettings]:
    """The current session settings, or None when telemetry is off.

    Checks the in-process session first, then the environment channel
    (re-parsed only when the raw string changes, so the steady-state
    cost on the untraced path is one dict lookup).
    """
    global _ENV_RAW, _ENV_PARSED
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(TELEMETRY_ENV)
    if not raw:
        return None
    if raw != _ENV_RAW:
        try:
            settings = TelemetrySettings.from_json(json.loads(raw))
        except (ValueError, TypeError):
            settings = None
        _ENV_RAW = raw
        _ENV_PARSED = settings
    return _ENV_PARSED


def current_runtime():
    """The live :class:`~repro.telemetry.runtime.TelemetryRuntime`.

    Created lazily on first use; None when no session is active.
    """
    global _RUNTIME
    settings = active()
    if settings is None or not settings.enabled:
        return None
    if _RUNTIME is None:
        from repro.telemetry.runtime import TelemetryRuntime

        _RUNTIME = TelemetryRuntime(settings)
    return _RUNTIME


def on_system_acquired(system) -> None:
    """Hook called by :func:`repro.core.runner.system_for`.

    A no-op (one None check) when telemetry is off; otherwise attaches
    instrumentation to ``system`` (idempotently) and begins a new
    per-point collection window.
    """
    runtime = current_runtime()
    if runtime is not None:
        runtime.on_system_acquired(system)


def drain_point() -> Optional[dict]:
    """Collect and clear everything recorded since the last acquisition.

    Returns None when no session is active; see
    :meth:`~repro.telemetry.runtime.TelemetryRuntime.drain_point`.
    """
    runtime = current_runtime()
    if runtime is None:
        return None
    return runtime.drain_point()
