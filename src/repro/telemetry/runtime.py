"""Wiring a telemetry session into built systems.

:class:`TelemetryRuntime` is the per-process companion of one active
:class:`~repro.telemetry.state.TelemetrySettings`: it attaches hook
objects to a system's instrumented components (mirroring how
:class:`~repro.faults.injector.FaultModel` attaches fault state --
default-``None`` attributes checked next to existing branches), arms
the metrics sampler and self-profiler per point, and *drains* the
collected data after each point so consecutive points of a sweep never
bleed into each other.

Attachment happens in :func:`repro.core.runner.system_for` -- the one
chokepoint every runner acquires systems through -- right after the
memoized reset, so it is position-independent of the domain plan (the
plan is applied at construction; ``link.domain`` values are final by
the time any acquisition happens) and survives ``reset()`` exactly
like fault state does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.metrics import MetricsSampler
from repro.telemetry.profiler import SelfProfiler
from repro.telemetry.state import TelemetrySettings
from repro.telemetry.tracer import DmaTrace, LinkTrace, QuantumTrace, SpanTracer

__all__ = ["TelemetryRuntime"]


def _fabric_links(system) -> list:
    """Every directional link of the system's fabric, in stable order."""
    from repro.topology.fabric import SwitchedPCIeFabric

    fabric = system.fabric
    if isinstance(fabric, SwitchedPCIeFabric):
        return list(fabric.links())
    up = getattr(fabric, "up", None)
    down = getattr(fabric, "down", None)
    return [link for link in (up, down) if link is not None]


class TelemetryRuntime:
    """One process-wide collection pipeline for an active session."""

    def __init__(self, settings: TelemetrySettings) -> None:
        self.settings = settings
        self.tracer: Optional[SpanTracer] = (
            SpanTracer() if settings.trace else None
        )
        self.metrics: Optional[MetricsSampler] = (
            MetricsSampler(settings.metrics_every, settings.metrics_capacity)
            if settings.metrics_every is not None
            else None
        )
        #: Systems instrumented so far (strong refs are fine: the system
        #: memo retains at most a handful per process).
        self._attached: List = []
        self._attached_ids = set()
        self.current_system = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def on_system_acquired(self, system) -> None:
        """Instrument ``system`` (once) and open a new point window."""
        if id(system) not in self._attached_ids:
            self._attach(system)
            self._attached_ids.add(id(system))
            self._attached.append(system)
        self.current_system = system
        if self.tracer is not None:
            self.tracer.clear()
        if self.metrics is not None:
            self.metrics.begin_run(system)
            self.metrics.arm(system.sim)
        if self.settings.profile is not None:
            system.sim._profiler = SelfProfiler(
                self.settings.profile, self.settings.profile_every
            )

    def _attach(self, system) -> None:
        if self.tracer is None:
            return
        tracer = self.tracer
        hooks: Dict[str, LinkTrace] = {}
        for link in _fabric_links(system):
            hook = LinkTrace(
                tracer, getattr(link, "domain", 0), link.name
            )
            link.trace = hook
            hooks[link.name] = hook
        fault_model = getattr(system, "fault_model", None)
        if fault_model is not None:
            for name, state in fault_model.link_states.items():
                state.trace = hooks.get(name)
        for wrapper in system.wrappers:
            dma = wrapper.dma
            dma.trace = DmaTrace(
                tracer, getattr(dma, "domain", 0), dma.name
            )
        if hasattr(system.sim, "_quantum_trace"):
            system.sim._quantum_trace = QuantumTrace(tracer)

    def _detach(self, system) -> None:
        for link in _fabric_links(system):
            link.trace = None
        fault_model = getattr(system, "fault_model", None)
        if fault_model is not None:
            for state in fault_model.link_states.values():
                state.trace = None
        for wrapper in system.wrappers:
            wrapper.dma.trace = None
        if hasattr(system.sim, "_quantum_trace"):
            system.sim._quantum_trace = None
        system.sim._profiler = None

    def detach_all(self) -> None:
        for system in self._attached:
            self._detach(system)
        self._attached.clear()
        self._attached_ids.clear()
        self.current_system = None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def drain_point(self) -> dict:
        """Collect everything recorded since the last acquisition.

        Clears the tracer (the sampler and profiler reset at the next
        acquisition) so each point's artifacts stand alone.  The
        returned dict is JSON-safe except for ``trace.chrome_json``,
        which is the pre-serialized (byte-stable) trace document.
        """
        out: dict = {}
        if self.tracer is not None:
            out["trace"] = {
                "events": len(self.tracer),
                "chrome_json": self.tracer.to_chrome_json(),
            }
            self.tracer.clear()
        if self.metrics is not None:
            out["metrics"] = {
                "summary": self.metrics.summary(),
                "record": self.metrics.to_record(),
                "prometheus": self.metrics.prometheus_text(),
            }
        system = self.current_system
        if system is not None:
            profiler = getattr(system.sim, "_profiler", None)
            if profiler is not None:
                out["profile"] = profiler.to_record()
                system.sim._profiler = None
            if self.settings.diagnostics:
                out["diagnostics"] = system.sim.diagnostics()
        return out
