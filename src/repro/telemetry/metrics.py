"""Time-series metrics: periodic StatGroup snapshots with deltas.

The sampler rides the dirty-flag/generation machinery of
:class:`~repro.sim.statistics.StatGroup`: a component whose stats have
not moved since the previous sample is skipped on a two-field check
(``dirty`` plus ``generation``), so clean components cost nothing per
sample and the per-sample cost is O(components touched in the window).

Samples land in a bounded ring buffer (oldest dropped, drop count
kept), each holding the *deltas* of every changed series over the
window -- a sweep point reports utilization/queue-depth/retry-rate
timelines instead of only final counters.  Sampling is driven by a
self-rescheduling simulator event at :data:`~repro.sim.eventq.
PRIORITY_LATE` (observing a settled tick) which stands down as soon as
it finds the queue otherwise empty, so drain-mode ``run()`` still
terminates.  The sampler only ever *reads* stats; simulated results are
bit-identical with and without it (``events_executed`` moves, which is
exactly why runner records exclude it).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.eventq import PRIORITY_LATE

__all__ = ["MetricsSampler", "render_prometheus"]


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def render_prometheus(families: Sequence[tuple]) -> str:
    """Prometheus text exposition for a list of metric families.

    ``families`` is ``[(name, kind, help, samples), ...]`` where
    ``samples`` is ``[(labels or None, value), ...]``.  One writer for
    the whole tree: the sampler's per-point ``.prom`` artifacts and the
    result server's ``/metrics`` endpoint emit through this, so both
    stay deterministic (caller-ordered families, ``repr``-stable value
    formatting, escaped label values) and format drift cannot split
    them.
    """
    lines: List[str] = []
    for name, kind, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(val)}"'
                    for key, val in labels.items()
                )
                lines.append(f"{name}{{{rendered}}} {value!r}")
            else:
                lines.append(f"{name} {value!r}")
    return "\n".join(lines) + "\n"


class MetricsSampler:
    """Ring-buffered periodic sampler over a set of stat groups."""

    def __init__(self, every: int, capacity: int = 4096) -> None:
        if every < 1:
            raise ValueError(f"sample interval must be >= 1 tick, got {every}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.every = every
        self.capacity = capacity
        #: Retained samples: (tick, {series: delta}).
        self.samples: deque = deque(maxlen=capacity)
        #: Samples evicted by the ring bound.
        self.dropped = 0
        self.total_samples = 0
        #: Watched groups: (StatGroup, last generation seen).
        self._groups: List[list] = []
        #: Latest absolute value per series (across all samples).
        self._latest: Dict[str, float] = {}
        #: Absolute values at the previous sample, per series.
        self._previous: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def begin_run(self, system) -> None:
        """Point a fresh collection window at ``system``'s components.

        Called once per point acquisition (after the system reset), so
        baselines, the ring buffer and the watch list never leak across
        points or across the different systems of a mixed-config grid.
        """
        self.samples.clear()
        self.dropped = 0
        self.total_samples = 0
        self._latest.clear()
        self._previous.clear()
        self._groups = [
            [obj.stats, obj.stats.generation]
            for obj in system.sim.objects
            if getattr(obj, "stats", None) is not None
        ]

    def arm(self, sim) -> None:
        """Schedule the periodic sampling event on ``sim``.

        The event re-arms itself only while other events remain pending,
        so it never keeps a drained queue alive.
        """
        every = self.every

        def fire() -> None:
            self.sample_now(sim.now)
            if sim.pending_events > 0:
                sim.schedule(every, fire, priority=PRIORITY_LATE,
                             name="telemetry.metrics")

        sim.schedule(every, fire, priority=PRIORITY_LATE,
                     name="telemetry.metrics")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_now(self, tick: int) -> Dict[str, float]:
        """Take one sample: deltas of every series that moved."""
        deltas: Dict[str, float] = {}
        previous = self._previous
        latest = self._latest
        for entry in self._groups:
            group, seen_generation = entry
            if not group.dirty and group.generation == seen_generation:
                continue  # untouched since the last sample: free skip
            for key, value in group.flatten():
                if previous.get(key, 0) != value:
                    deltas[key] = value - previous.get(key, 0)
                    previous[key] = value
                    latest[key] = value
            entry[1] = group.generation
        self.total_samples += 1
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append((tick, deltas))
        return deltas

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        return sorted(self._latest)

    def timeline(self, series: str) -> List[Tuple[int, float]]:
        """(tick, delta) pairs for one series, oldest first."""
        return [
            (tick, deltas[series])
            for tick, deltas in self.samples
            if series in deltas
        ]

    def summary(self) -> dict:
        """Compact JSON-safe description for shard reports/provenance."""
        return {
            "every": self.every,
            "samples": self.total_samples,
            "retained": len(self.samples),
            "dropped": self.dropped,
            "series": len(self._latest),
        }

    def to_record(self) -> dict:
        """Full JSON-safe dump: summary plus the retained timeline."""
        return {
            **self.summary(),
            "timeline": [
                {"tick": tick, "deltas": dict(sorted(deltas.items()))}
                for tick, deltas in self.samples
            ],
        }

    def prometheus_text(self) -> str:
        """Prometheus text exposition of the latest absolute values.

        Series names become labels of one ``repro_stat`` family (dotted
        stat names are not valid Prometheus metric names), plus sampler
        meta-counters.  Deterministic: series sorted, values rendered
        with ``repr``-stable formatting.
        """
        return render_prometheus([
            (
                "repro_stat", "gauge",
                "Simulated component statistic (latest absolute value).",
                [({"series": name}, self._latest[name])
                 for name in sorted(self._latest)],
            ),
            (
                "repro_samples_total", "counter",
                "Samples taken this run.",
                [(None, self.total_samples)],
            ),
            (
                "repro_samples_dropped", "counter",
                "Samples evicted by the ring buffer.",
                [(None, self.dropped)],
            ),
        ])
