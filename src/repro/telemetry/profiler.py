"""Simulator self-profiling: host wall-clock per component bucket.

Attributes the *host* time spent inside ``Simulator.run_*`` to the
components whose callbacks consumed it, bucketed by event name (every
component schedules its events under its own name).  Two modes:

* ``"exact"`` wraps every callback in a ``perf_counter`` pair --
  precise, roughly doubles loop overhead, fine for diagnosis runs.
* ``"sampling"`` times every *K*-th event and scales the measurement by
  the stride -- an estimate whose loop overhead stays near zero.

The profiler is host-side observation only: it never touches simulated
time, so results stay bit-identical (the run merely takes longer).  Its
*output* is wall-clock and therefore non-deterministic -- it is kept
out of trace artifacts and result records, which must be byte-stable.

Zero overhead when off: ``Simulator._profiler`` defaults to ``None``
and the run methods test it once at entry, dispatching to a separate
instrumented loop -- the hot loop itself carries no new branches.

This is the measurement the "PDES beyond the GIL" roadmap item needs:
which domains' components actually burn Python time, hence which are
worth pushing onto their own interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["SelfProfiler"]


class SelfProfiler:
    """Wall-clock accumulator keyed by event-name bucket."""

    MODES = ("exact", "sampling")

    __slots__ = ("mode", "sample_every", "buckets", "events_seen")

    def __init__(self, mode: str = "exact", sample_every: int = 97) -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"profiler mode must be one of {self.MODES}, got {mode!r}"
            )
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.mode = mode
        self.sample_every = sample_every if mode == "sampling" else 1
        #: bucket name -> [timed_calls, seconds].
        self.buckets: Dict[str, list] = {}
        self.events_seen = 0

    def record(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of host time to bucket ``name``."""
        bucket = self.buckets.get(name)
        if bucket is None:
            self.buckets[name] = [1, seconds]
        else:
            bucket[0] += 1
            bucket[1] += seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Estimated total attributed host time (stride-scaled)."""
        return sum(b[1] for b in self.buckets.values()) * self.sample_every

    def table(self, limit: Optional[int] = None) -> List[dict]:
        """Buckets sorted by attributed time, heaviest first."""
        rows = [
            {
                "bucket": name or "(anonymous)",
                "timed_calls": calls,
                "seconds": seconds * self.sample_every,
            }
            for name, (calls, seconds) in self.buckets.items()
        ]
        rows.sort(key=lambda row: (-row["seconds"], row["bucket"]))
        return rows[:limit] if limit is not None else rows

    def to_record(self) -> dict:
        return {
            "mode": self.mode,
            "sample_every": self.sample_every,
            "events_seen": self.events_seen,
            "total_seconds": self.total_seconds,
            "buckets": self.table(),
        }
