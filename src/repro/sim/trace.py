"""Transaction trace recording and replay.

Trace-driven methodology, as in gem5's ``CommMonitor`` + ``TrafficGen``
pair: wrap any :class:`~repro.sim.ports.TargetPort` with a
:class:`TracingPort` to capture the request stream flowing through it,
persist it, then drive the same stream into a *different* memory system
with a :class:`TraceReplayer` — memory studies without re-simulating the
accelerator that generated the traffic.

Traces store ``(tick, cmd, addr, size, source, stream)`` records; the
replayer can respect recorded inter-arrival times (open-loop) or issue
as fast as a fixed window allows (closed-loop), the two standard replay
disciplines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import MemCmd, Transaction


@dataclass(frozen=True)
class TraceRecord:
    """One captured request."""

    tick: int
    cmd: str
    addr: int
    size: int
    source: str = ""
    stream: str = ""

    def to_transaction(self) -> Transaction:
        txn = Transaction(MemCmd(self.cmd), self.addr, self.size,
                          source=self.source)
        txn.stream = self.stream
        return txn


class Trace:
    """An ordered collection of :class:`TraceRecord`."""

    def __init__(self, records: Optional[List[TraceRecord]] = None) -> None:
        self.records: List[TraceRecord] = records or []

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)

    @property
    def duration_ticks(self) -> int:
        if not self.records:
            return 0
        return self.records[-1].tick - self.records[0].tick

    # ------------------------------------------------------------------
    # Persistence (JSON lines)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps({
                    "tick": record.tick,
                    "cmd": record.cmd,
                    "addr": record.addr,
                    "size": record.size,
                    "source": record.source,
                    "stream": record.stream,
                }) + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                records.append(TraceRecord(
                    tick=raw["tick"], cmd=raw["cmd"], addr=raw["addr"],
                    size=raw["size"], source=raw.get("source", ""),
                    stream=raw.get("stream", ""),
                ))
        return cls(records)


class TracingPort(TargetPort):
    """Transparent proxy that records every request it forwards."""

    def __init__(self, sim: Simulator, name: str, wrapped: TargetPort) -> None:
        super().__init__(sim, name)
        self.wrapped = wrapped
        self.trace = Trace()
        self._recorded = self.stats.scalar("recorded", "requests captured")

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self.trace.append(TraceRecord(
            tick=self.now,
            cmd=txn.cmd.value,
            addr=txn.addr,
            size=txn.size,
            source=txn.source,
            stream=txn.stream,
        ))
        self._recorded.inc()
        self.wrapped.send(txn, on_complete)


class TraceReplayer(TargetPort):
    """Drives a recorded trace into a target.

    Parameters
    ----------
    mode:
        ``"timed"`` replays with the recorded inter-arrival gaps
        (open-loop; measures added queueing under the new memory);
        ``"asap"`` issues as fast as ``window`` outstanding requests
        allow (closed-loop; measures the new memory's throughput).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace: Trace,
        target: TargetPort,
        mode: str = "asap",
        window: int = 8,
    ) -> None:
        super().__init__(sim, name)
        if mode not in ("timed", "asap"):
            raise ValueError(f"unknown replay mode {mode!r}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.trace = trace
        self.target = target
        self.mode = mode
        self.window = window
        self._replayed = self.stats.scalar("replayed", "requests issued")
        self._latency = self.stats.histogram("latency", "per-request latency")

    def run(self, on_done: Callable[[int], None]) -> None:
        """Replay the whole trace; ``on_done(finish_tick)`` at the end."""
        records = self.trace.records
        if not records:
            on_done(self.now)
            return
        if self.mode == "timed":
            self._run_timed(records, on_done)
        else:
            self._run_asap(records, on_done)

    # ------------------------------------------------------------------
    def _run_timed(self, records, on_done) -> None:
        base = records[0].tick
        start = self.now
        state = {"outstanding": 0, "issued": 0}

        def completion(txn: Transaction) -> None:
            self._latency.sample(self.now - txn.issue_tick)
            state["outstanding"] -= 1
            if state["issued"] == len(records) and state["outstanding"] == 0:
                on_done(self.now)

        for record in records:
            def issue(record=record) -> None:
                txn = record.to_transaction()
                txn.issue_tick = self.now
                state["outstanding"] += 1
                state["issued"] += 1
                self._replayed.inc()
                self.target.send(txn, completion)

            self.schedule_at(start + (record.tick - base), issue)

    def _run_asap(self, records, on_done) -> None:
        state = {"next": 0, "outstanding": 0}

        def pump() -> None:
            while (
                state["next"] < len(records)
                and state["outstanding"] < self.window
            ):
                record = records[state["next"]]
                state["next"] += 1
                txn = record.to_transaction()
                txn.issue_tick = self.now
                state["outstanding"] += 1
                self._replayed.inc()
                self.target.send(txn, completion)

        def completion(txn: Transaction) -> None:
            self._latency.sample(self.now - txn.issue_tick)
            state["outstanding"] -= 1
            if state["next"] < len(records):
                pump()
            elif state["outstanding"] == 0:
                on_done(self.now)

        pump()

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """TargetPort interface: pass-through (a replayer is an initiator)."""
        self.target.send(txn, on_complete)
