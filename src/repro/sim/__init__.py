"""Discrete-event simulation kernel.

This package is the substrate that stands in for gem5's event engine in the
Gem5-AcceSys reproduction.  It provides:

* :mod:`repro.sim.ticks` -- an integer picosecond time base and conversion
  helpers (bandwidth, frequency, byte serialization times),
* :mod:`repro.sim.eventq` -- the event queue and :class:`Simulator` driver,
* :mod:`repro.sim.simobject` -- :class:`SimObject` / :class:`ClockedObject`
  base classes with hierarchical naming and stats registration,
* :mod:`repro.sim.transaction` -- the memory transaction type exchanged by
  every component (the analogue of gem5's ``Packet``),
* :mod:`repro.sim.ports` -- lightweight TLM-style connection points and the
  :class:`PipelinedLink` / :class:`QueueStation` building blocks,
* :mod:`repro.sim.statistics` -- scalar/derived counters and histograms.

Timing model style
------------------
Components exchange *transactions* (contiguous address ranges, typically one
PCIe packet or one DMA segment) rather than per-cache-line packets.  Each
component charges per-line / per-TLP / per-burst costs arithmetically inside
a transaction, so per-line statistics remain exact while the event count
stays tractable in pure Python.  This is the SystemC TLM-2.0 "approximately
timed" style; DESIGN.md discusses the trade-off.
"""

from repro.sim.eventq import (
    Domain,
    Event,
    EventQueue,
    ParallelSimulator,
    Simulator,
)
from repro.sim.simobject import ClockedObject, SimObject
from repro.sim.ticks import (
    GHZ,
    MHZ,
    TICKS_PER_SEC,
    cycles_to_ticks,
    freq_to_period,
    from_seconds,
    gbps_to_bytes_per_sec,
    ns,
    ps,
    serialization_ticks,
    ticks_to_ns,
    ticks_to_seconds,
    us,
)
from repro.sim.transaction import MemCmd, Transaction
from repro.sim.ports import PipelinedLink, QueueStation, TargetPort
from repro.sim.statistics import Histogram, Scalar, StatGroup
from repro.sim.trace import Trace, TraceRecord, TraceReplayer, TracingPort

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Domain",
    "ParallelSimulator",
    "SimObject",
    "ClockedObject",
    "TICKS_PER_SEC",
    "GHZ",
    "MHZ",
    "ps",
    "ns",
    "us",
    "from_seconds",
    "ticks_to_seconds",
    "ticks_to_ns",
    "freq_to_period",
    "cycles_to_ticks",
    "gbps_to_bytes_per_sec",
    "serialization_ticks",
    "MemCmd",
    "Transaction",
    "TargetPort",
    "QueueStation",
    "PipelinedLink",
    "Scalar",
    "Histogram",
    "StatGroup",
    "Trace",
    "TraceRecord",
    "TracingPort",
    "TraceReplayer",
]
