"""Statistics primitives (scalars, histograms, groups).

Every :class:`~repro.sim.simobject.SimObject` owns a :class:`StatGroup`;
components register named statistics and the experiment runner flattens them
into the report printed by the benchmark harness, mirroring gem5's
``stats.txt``.

Snapshot cost
-------------
Each group carries a *dirty flag* and a *generation counter*.  Stats mark
their group dirty on every mutation (one attribute store -- cheap enough
for the event hot path) and :meth:`StatGroup.flatten` memoizes its rows:
a clean group returns its cached snapshot without walking a single stat,
and a freshly *reset* group serves a shared pristine snapshot computed at
most once per process.  A sweep that resets a memoized system between
points therefore pays O(components actually touched) per snapshot instead
of O(all stats) -- the values are bit-identical either way.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

#: Bucket key for non-positive samples (float exponents bottom out near
#: -1074, so this sorts below every real power-of-two bucket).
_NONPOS_BUCKET = -(10**9)


class _DetachedGroup:
    """Dirty-flag sink for stats constructed outside a StatGroup."""

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty = True


#: Shared sink so standalone stats (tests, ad-hoc counters) stay cheap.
_DETACHED = _DetachedGroup()


class Scalar:
    """A named accumulating counter."""

    __slots__ = ("name", "desc", "value", "_group")

    def __init__(self, name: str, desc: str = "", group=None) -> None:
        self.name = name
        self.desc = desc
        self.value: float = 0
        self._group = group if group is not None else _DETACHED

    def inc(self, amount: float = 1) -> None:
        self.value += amount
        self._group.dirty = True

    def set(self, value: float) -> None:
        self.value = value
        self._group.dirty = True

    def reset(self) -> None:
        self.value = 0
        self._group.dirty = True

    def __repr__(self) -> str:
        return f"Scalar({self.name}={self.value})"


class Histogram:
    """A sample accumulator tracking count / sum / min / max.

    Keeps moments rather than raw samples so memory stays bounded for the
    tens of millions of samples the address-translation experiments record.

    Pass ``track_quantiles=True`` to additionally maintain power-of-two
    buckets (one counter per binary order of magnitude -- still O(64)
    memory regardless of sample volume) and enable :meth:`quantile`.
    The default stays bucket-free so existing goldens and the sample()
    hot path are untouched.
    """

    __slots__ = ("name", "desc", "count", "total", "sum_sq", "min", "max",
                 "_group", "_buckets")

    def __init__(self, name: str, desc: str = "", group=None,
                 track_quantiles: bool = False) -> None:
        self.name = name
        self.desc = desc
        self._group = group if group is not None else _DETACHED
        # Construction-time values, set directly: reset() would mark the
        # owning group dirty, but nothing observable has changed yet.
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets: Optional[Dict[int, int]] = (
            {} if track_quantiles else None
        )

    @property
    def tracks_quantiles(self) -> bool:
        return self._buckets is not None

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        if self._buckets is not None:
            self._buckets.clear()
        self._group.dirty = True

    def sample(self, value: float, repeat: int = 1) -> None:
        """Record ``value`` occurring ``repeat`` times."""
        self.count += repeat
        self.total += value * repeat
        self.sum_sq += value * value * repeat
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._buckets is not None:
            # math.frexp(v) = (m, e) with v = m * 2**e and 0.5 <= m < 1,
            # so bucket e covers [2**(e-1), 2**e).
            key = math.frexp(value)[1] if value > 0 else _NONPOS_BUCKET
            self._buckets[key] = self._buckets.get(key, 0) + repeat
        self._group.dirty = True

    def _bucket_bounds(self, key: int) -> Tuple[float, float]:
        if key == _NONPOS_BUCKET:
            return min(self.min, 0.0), 0.0
        return float(2.0 ** (key - 1)), float(2.0 ** key)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation within the covering power-of-two bucket,
        clamped to the exact observed [min, max]; worst-case relative
        error is therefore one binary order of magnitude.  Requires
        ``track_quantiles=True``.
        """
        if self._buckets is None:
            raise ValueError(
                f"histogram {self.name!r} was built without "
                f"track_quantiles=True; quantiles unavailable"
            )
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for key in sorted(self._buckets):
            n = self._buckets[key]
            if cumulative + n >= target:
                lo, hi = self._bucket_bounds(key)
                estimate = lo + (hi - lo) * (target - cumulative) / n
                return min(max(estimate, self.min), self.max)
            cumulative += n
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.sum_sq / self.count - mean * mean)

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3f})"


class StatGroup:
    """A named collection of statistics belonging to one component.

    ``dirty`` is set by member stats on every mutation; ``generation``
    increments whenever a new snapshot becomes observable (a flatten that
    recomputed, or a reset).  Consumers comparing generations can tell
    "has this component's snapshot changed?" without walking it.
    """

    __slots__ = ("owner_name", "_stats", "dirty", "generation",
                 "_rows", "_pristine_rows", "_pristine_valid")

    def __init__(self, owner_name: str) -> None:
        self.owner_name = owner_name
        self._stats: Dict[str, object] = {}
        self.dirty = False
        self.generation = 0
        #: Cached flatten() rows, valid while not dirty.
        self._rows: Optional[List[Tuple[str, float]]] = None
        #: flatten() rows at construction/reset values, computed once.
        self._pristine_rows: Optional[List[Tuple[str, float]]] = None
        #: True while no stat has mutated since construction/reset --
        #: the *only* state in which computed rows may be captured as
        #: pristine.  (``not dirty`` is weaker: flatten clears dirty, so
        #: a mutated-then-flattened group is clean but not pristine.)
        self._pristine_valid = True

    def _register(self, name: str, stat) -> None:
        self._stats[name] = stat
        # A new stat changes the snapshot *shape*: drop both caches.
        # `dirty` is deliberately untouched -- the new stat holds its
        # construction value, so if the group was clean it still is, and
        # the next flatten() of a clean group captures pristine rows.
        self._rows = None
        self._pristine_rows = None

    def scalar(self, name: str, desc: str = "") -> Scalar:
        """Create (or fetch) a scalar counter."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Scalar(name, desc, group=self)
            self._register(name, stat)
        if not isinstance(stat, Scalar):
            raise TypeError(f"stat {name!r} already exists with another type")
        return stat

    def histogram(self, name: str, desc: str = "",
                  track_quantiles: bool = False) -> Histogram:
        """Create (or fetch) a histogram.

        ``track_quantiles=True`` opts this histogram into power-of-two
        bucket tracking: :meth:`Histogram.quantile` works and
        :meth:`flatten` gains ``.p50``/``.p95``/``.p99`` rows for it.
        Opt-in only -- default histograms keep the golden two-row
        (``.count``/``.mean``) snapshot shape.
        """
        stat = self._stats.get(name)
        if stat is None:
            stat = Histogram(name, desc, group=self,
                             track_quantiles=track_quantiles)
            self._register(name, stat)
        if not isinstance(stat, Histogram):
            raise TypeError(f"stat {name!r} already exists with another type")
        return stat

    def __getitem__(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset(self) -> None:
        """Return every stat to its construction value (O(stats)).

        Afterwards the group is clean and ``flatten`` serves the shared
        pristine snapshot without walking the stats again.
        """
        for stat in self._stats.values():
            stat.reset()
        self.dirty = False
        self.generation += 1
        self._rows = self._pristine_rows
        self._pristine_valid = True

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(self._stats.items())

    def _compute_rows(self) -> List[Tuple[str, float]]:
        rows: List[Tuple[str, float]] = []
        prefix = self.owner_name
        for name, stat in sorted(self._stats.items()):
            dotted = f"{prefix}.{name}"
            if isinstance(stat, Scalar):
                rows.append((dotted, stat.value))
            elif isinstance(stat, Histogram):
                rows.append((f"{dotted}.count", stat.count))
                rows.append((f"{dotted}.mean", stat.mean))
                if stat.tracks_quantiles:
                    rows.append((f"{dotted}.p50", stat.quantile(0.50)))
                    rows.append((f"{dotted}.p95", stat.quantile(0.95)))
                    rows.append((f"{dotted}.p99", stat.quantile(0.99)))
        return rows

    def flatten(self) -> List[Tuple[str, float]]:
        """Return (dotted-name, value) pairs for reporting.

        Memoized: a clean group returns the cached rows without touching
        its stats.  Treat the result as read-only -- it may be shared
        across calls (and, for pristine groups, across resets).
        """
        rows = self._rows
        if rows is not None and not self.dirty:
            return rows
        if self.dirty:
            self._pristine_valid = False
        rows = self._compute_rows()
        if self._pristine_valid and self._pristine_rows is None:
            self._pristine_rows = rows
        self.dirty = False
        self.generation += 1
        self._rows = rows
        return rows
