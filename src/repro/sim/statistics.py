"""Statistics primitives (scalars, histograms, groups).

Every :class:`~repro.sim.simobject.SimObject` owns a :class:`StatGroup`;
components register named statistics and the experiment runner flattens them
into the report printed by the benchmark harness, mirroring gem5's
``stats.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class Scalar:
    """A named accumulating counter."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Scalar({self.name}={self.value})"


class Histogram:
    """A sample accumulator tracking count / sum / min / max.

    Keeps moments rather than raw samples so memory stays bounded for the
    tens of millions of samples the address-translation experiments record.
    """

    __slots__ = ("name", "desc", "count", "total", "sum_sq", "min", "max")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def sample(self, value: float, repeat: int = 1) -> None:
        """Record ``value`` occurring ``repeat`` times."""
        self.count += repeat
        self.total += value * repeat
        self.sum_sq += value * value * repeat
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.sum_sq / self.count - mean * mean)

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3f})"


class StatGroup:
    """A named collection of statistics belonging to one component."""

    def __init__(self, owner_name: str) -> None:
        self.owner_name = owner_name
        self._stats: Dict[str, object] = {}

    def scalar(self, name: str, desc: str = "") -> Scalar:
        """Create (or fetch) a scalar counter."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Scalar(name, desc)
            self._stats[name] = stat
        if not isinstance(stat, Scalar):
            raise TypeError(f"stat {name!r} already exists with another type")
        return stat

    def histogram(self, name: str, desc: str = "") -> Histogram:
        """Create (or fetch) a histogram."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Histogram(name, desc)
            self._stats[name] = stat
        if not isinstance(stat, Histogram):
            raise TypeError(f"stat {name!r} already exists with another type")
        return stat

    def __getitem__(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(self._stats.items())

    def flatten(self) -> List[Tuple[str, float]]:
        """Return (dotted-name, value) pairs for reporting."""
        rows: List[Tuple[str, float]] = []
        for name, stat in sorted(self._stats.items()):
            prefix = f"{self.owner_name}.{name}"
            if isinstance(stat, Scalar):
                rows.append((prefix, stat.value))
            elif isinstance(stat, Histogram):
                rows.append((f"{prefix}.count", stat.count))
                rows.append((f"{prefix}.mean", stat.mean))
        return rows
