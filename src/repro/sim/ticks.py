"""Integer time base for the simulator.

Like gem5, the simulator counts time in integer *ticks*, with one tick equal
to one picosecond.  All timing arithmetic is done on integers to keep event
ordering exact and runs reproducible; floating point only appears at the
reporting boundary (``ticks_to_seconds`` and friends).
"""

from __future__ import annotations

#: Number of ticks per simulated second (1 tick = 1 ps).
TICKS_PER_SEC: int = 10**12

#: Ticks per common sub-second units.
TICKS_PER_MS: int = TICKS_PER_SEC // 10**3
TICKS_PER_US: int = TICKS_PER_SEC // 10**6
TICKS_PER_NS: int = TICKS_PER_SEC // 10**9
TICKS_PER_PS: int = 1

#: Frequency helpers (Hz).
GHZ: int = 10**9
MHZ: int = 10**6
KHZ: int = 10**3


def ps(value: float) -> int:
    """Convert picoseconds to ticks."""
    return round(value * TICKS_PER_PS)


def ns(value: float) -> int:
    """Convert nanoseconds to ticks."""
    return round(value * TICKS_PER_NS)


def us(value: float) -> int:
    """Convert microseconds to ticks."""
    return round(value * TICKS_PER_US)


def from_seconds(value: float) -> int:
    """Convert seconds to ticks."""
    return round(value * TICKS_PER_SEC)


def ticks_to_seconds(ticks: int) -> float:
    """Convert ticks to (floating point) seconds."""
    return ticks / TICKS_PER_SEC


def ticks_to_ns(ticks: int) -> float:
    """Convert ticks to (floating point) nanoseconds."""
    return ticks / TICKS_PER_NS


def ticks_to_us(ticks: int) -> float:
    """Convert ticks to (floating point) microseconds."""
    return ticks / TICKS_PER_US


def freq_to_period(freq_hz: float) -> int:
    """Return the clock period in ticks for a frequency in Hz.

    >>> freq_to_period(1 * GHZ)
    1000
    """
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return max(1, round(TICKS_PER_SEC / freq_hz))


def cycles_to_ticks(cycles: int, period: int) -> int:
    """Return the duration of ``cycles`` clock cycles of the given period."""
    return cycles * period


def gbps_to_bytes_per_sec(gbps: float) -> int:
    """Convert a line rate in gigabits per second to bytes per second.

    PCIe lane speeds are quoted in Gb/s (giga = 1e9); the return value is an
    integer number of bytes per second.
    """
    return round(gbps * 10**9 / 8)


def gb_per_sec(gbytes: float) -> int:
    """Convert gigabytes per second (1e9 bytes) to bytes per second."""
    return round(gbytes * 10**9)


def serialization_ticks(nbytes: int, bytes_per_sec: int) -> int:
    """Ticks needed to serialize ``nbytes`` at ``bytes_per_sec``.

    Rounds up so that a transfer never completes early; a zero-byte transfer
    takes zero time.
    """
    if nbytes <= 0:
        return 0
    if bytes_per_sec <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_sec}")
    return -(-nbytes * TICKS_PER_SEC // bytes_per_sec)


def bytes_per_tick_rate(bytes_per_sec: int) -> float:
    """Bandwidth expressed in bytes per tick (for reporting only)."""
    return bytes_per_sec / TICKS_PER_SEC
