"""Event queue and simulation driver.

The :class:`Simulator` owns a single global event queue ordered by
``(tick, priority, sequence)``.  Ties at the same tick are broken first by an
explicit priority (lower runs earlier) and then by insertion order, which
makes runs fully deterministic -- a property the regression tests rely on.

Hot-path design
---------------
This module is the innermost loop of every experiment, so it trades a
little generality for speed:

* The heap holds plain ``(when, priority, seq, event)`` tuples.  Tuple
  comparison runs entirely in C and, because ``seq`` is unique, never
  falls through to comparing the :class:`Event` payload itself.
* :class:`Event` is a ``__slots__`` class used purely as a handle
  (cancellation) and a callback carrier; it is never compared.
* Executed and skipped-cancelled events return to a per-queue freelist,
  so steady-state scheduling allocates no new objects.  A handle is
  therefore only valid until its event fires or is reaped after
  cancellation -- cancelling a stale handle may affect a recycled event.
  Nothing in the tree holds handles past completion.
* Lazy deletion lives in one place (:meth:`EventQueue._prune`), shared
  by ``pop`` and ``peek_tick``; every reaped cancelled event is counted
  in :attr:`EventQueue.skipped_cancelled` (surfaced as
  :attr:`Simulator.events_skipped`).
* ``Simulator.run`` / ``run_until_idle`` inline the pop/prune logic with
  locals-bound heap operations, and ``run_until_idle`` throttles the
  ``quiesce()`` predicate adaptively instead of calling it per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

#: Default event priority.  Lower values run first within a tick.
PRIORITY_DEFAULT = 100
#: Priority for bookkeeping events that must observe a settled state.
PRIORITY_LATE = 1000
#: Priority for events that must run before ordinary work at a tick.
PRIORITY_EARLY = 10

#: Freelist bound: beyond this many retired events, let the GC have them.
_FREELIST_MAX = 8192

#: run_until_idle throttle: after this many consecutive "not quiesced"
#: answers the check interval doubles, up to the cap.  Short runs (fewer
#: than BACKOFF_AFTER events) therefore see exactly the historical
#: check-after-every-event behaviour.
_QUIESCE_BACKOFF_AFTER = 8
_QUIESCE_MAX_INTERVAL = 64


class Event:
    """A scheduled callback handle.

    Events live in the heap as the payload of ``(when, priority, seq,
    event)`` tuples; the object itself is never ordered.  ``cancelled``
    events stay in the heap but are skipped (and recycled) when they
    surface, which keeps cancellation O(1).
    """

    __slots__ = ("when", "priority", "seq", "callback", "name", "cancelled")

    def __init__(
        self,
        when: int,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self.when = when
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Only valid while the event is pending: handles are recycled once
        the event has fired or been reaped (see module docstring).  A
        handle sitting on the freelist (fired, not yet reused) is
        detected and rejected here -- its ``callback`` was cleared on
        release -- which catches the common cancel-after-completion bug
        at the call site instead of silently dropping whichever future
        event the handle gets recycled into.  A handle cancelled after
        its object was *already reused* cannot be distinguished from the
        new occupant; don't hold handles past their event's completion.
        """
        if self.callback is None:
            raise RuntimeError(
                "cancelling a completed event handle (handles are only "
                "valid until their event fires; see repro.sim.eventq)"
            )
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event @{self.when} prio={self.priority}{state} {self.name!r}>"


class EventQueue:
    """A deterministic min-heap of scheduled events.

    The public interface still speaks :class:`Event` (``push`` returns a
    handle, ``pop`` returns the next live event); the tuple layout and
    the freelist are internal.
    """

    __slots__ = ("_heap", "_seq", "_free", "skipped_cancelled")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._free: list = []
        #: Cancelled events reaped by lazy deletion (pop/peek/run loops).
        self.skipped_cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Insert a callback to run at tick ``when`` and return its handle."""
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(self._heap, (when, priority, seq, event))
        return event

    def _release(self, event: Event) -> None:
        """Recycle a finished event through the freelist."""
        event.callback = None  # drop the closure reference eagerly
        free = self._free
        if len(free) < _FREELIST_MAX:
            free.append(event)

    def _prune(self) -> None:
        """Reap cancelled events at the head (the one lazy-deletion site)."""
        heap = self._heap
        skipped = 0
        while heap and heap[0][3].cancelled:
            self._release(heappop(heap)[3])
            skipped += 1
        if skipped:
            self.skipped_cancelled += skipped

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty.

        The returned event is *not* recycled -- external callers own it.
        The run loops use their own inlined pop that recycles after
        dispatch.
        """
        self._prune()
        heap = self._heap
        if not heap:
            return None
        return heappop(heap)[3]

    def peek_tick(self) -> Optional[int]:
        """Tick of the next live event without removing it, or None."""
        self._prune()
        heap = self._heap
        return heap[0][0] if heap else None


class Simulator:
    """Drives the event queue and tracks the current tick.

    A single Simulator instance is shared by every :class:`SimObject` in a
    system.  Typical use::

        sim = Simulator()
        sim.schedule(ns(10), lambda: print("hello at 10ns"))
        sim.run()

    The simulator also keeps a registry of every :class:`SimObject` bound
    to it (in construction order), which is what lets a fully wired system
    be reset to its pristine state and reused for another run instead of
    being rebuilt from scratch.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: int = 0
        self._running = False
        self.events_executed: int = 0
        #: Every SimObject constructed against this simulator, in order.
        self.objects: list = []

    def register(self, obj) -> None:
        """Record a SimObject for system-wide reset walks."""
        self.objects.append(obj)

    def reset(self) -> None:
        """Rewind to tick 0 with an empty queue.

        Replacing the queue (rather than draining it) also resets the
        event sequence counter, freelist and skipped-event count, so a
        reset simulator schedules events in exactly the order a freshly
        built one would -- a precondition for reused systems producing
        bit-identical results.
        """
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        self.queue = EventQueue()
        self.now = 0
        self.events_executed = 0

    @property
    def events_skipped(self) -> int:
        """Cancelled events reaped by lazy deletion since the last reset."""
        return self.queue.skipped_cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        The body duplicates :meth:`EventQueue.push` deliberately: this is
        called once per event and the extra frame shows up on every
        sweep profile.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        queue = self.queue
        when = self.now + delay
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(queue._heap, (when, priority, seq, event))
        return event

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute tick ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at tick {when}, current tick is {self.now}"
            )
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(queue._heap, (when, priority, seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or limits hit).

        Parameters
        ----------
        until:
            Stop before executing events scheduled after this tick.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the tick of the last executed event (i.e. ``self.now``).
        """
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        budget = max_events if max_events is not None else (1 << 62)
        try:
            if until is None:
                # Common case (drain the queue): pop unconditionally, no
                # per-event peek.  This is the monomorphic inner loop
                # every experiment spends its time in; `now` mirrors
                # self.now in a local so the monotonicity check costs a
                # local load (the attribute store remains, because
                # callbacks read self.now).
                now = self.now
                while heap:
                    when, _prio, _seq, event = pop(heap)
                    if event.cancelled:
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    if when < now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {now}"
                        )
                    self.now = now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    executed += 1
                    if executed >= budget:
                        break
            else:
                # Bounded run: peek before popping so events beyond
                # `until` stay queued for the next call.
                while heap:
                    head = heap[0]
                    event = head[3]
                    if event.cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    when = head[0]
                    if when > until:
                        break
                    if when < self.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {self.now}"
                        )
                    pop(heap)
                    self.now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    executed += 1
                    if executed >= budget:
                        break
        finally:
            self.events_executed += executed
            self._running = False
        return self.now

    def run_until_idle(self, quiesce: Callable[[], bool], max_events: int = 10**9) -> int:
        """Run until ``quiesce()`` returns True.

        The predicate is evaluated between events, but *throttled*: after
        ``quiesce`` has answered "not yet" a handful of times in a row,
        the check interval backs off (doubling up to a small cap) so long
        drains stop paying a Python call per event.  Short runs see the
        historical check-after-every-event behaviour exactly; a throttled
        run may execute up to the current interval of extra events after
        the predicate first turns true.  The predicate is always
        re-checked before an event-budget return, so this method never
        reports quiescence that does not hold.

        Raises ``RuntimeError`` if the ``max_events`` budget is exhausted
        before the system quiesces, or if time would move backwards --
        the same monotonicity contract :meth:`run` enforces.
        """
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        interval = 1
        misses = 0  # consecutive "not quiesced" answers at this interval
        drained = False
        try:
            while True:
                if quiesce():
                    break
                if heap and not drained:
                    misses += 1
                    if (misses >= _QUIESCE_BACKOFF_AFTER
                            and interval < _QUIESCE_MAX_INTERVAL):
                        interval <<= 1
                        misses = 0
                elif drained:
                    break  # queue empty and quiesce still false: give up
                # Execute up to `interval` events before asking again.
                ran = 0
                while ran < interval and executed + ran < max_events:
                    if not heap:
                        drained = True
                        break
                    head = heap[0]
                    event = head[3]
                    if event.cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    when = head[0]
                    if when < self.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {self.now}"
                        )
                    pop(heap)
                    self.now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    ran += 1
                executed += ran
                if not drained and executed >= max_events:
                    if not quiesce():
                        raise RuntimeError(
                            f"run_until_idle exhausted max_events="
                            f"{max_events} before quiescing"
                        )
                    break
        finally:
            self.events_executed += executed
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self.queue)
