"""Event queue and simulation driver.

The :class:`Simulator` owns a single global event queue ordered by
``(tick, priority, sequence)``.  Ties at the same tick are broken first by an
explicit priority (lower runs earlier) and then by insertion order, which
makes runs fully deterministic -- a property the regression tests rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Default event priority.  Lower values run first within a tick.
PRIORITY_DEFAULT = 100
#: Priority for bookkeeping events that must observe a settled state.
PRIORITY_LATE = 1000
#: Priority for events that must run before ordinary work at a tick.
PRIORITY_EARLY = 10


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(when, priority, seq)`` so they can live directly in
    a heap.  ``cancelled`` events stay in the heap but are skipped when they
    surface (lazy deletion), which keeps cancellation O(1).
    """

    when: int
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Insert a callback to run at tick ``when`` and return its handle."""
        event = Event(when, priority, self._seq, callback, name)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                return event
        return None

    def peek_tick(self) -> Optional[int]:
        """Tick of the next live event without removing it, or None."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].when if heap else None


class Simulator:
    """Drives the event queue and tracks the current tick.

    A single Simulator instance is shared by every :class:`SimObject` in a
    system.  Typical use::

        sim = Simulator()
        sim.schedule(ns(10), lambda: print("hello at 10ns"))
        sim.run()

    The simulator also keeps a registry of every :class:`SimObject` bound
    to it (in construction order), which is what lets a fully wired system
    be reset to its pristine state and reused for another run instead of
    being rebuilt from scratch.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: int = 0
        self._running = False
        self.events_executed: int = 0
        #: Every SimObject constructed against this simulator, in order.
        self.objects: list = []

    def register(self, obj) -> None:
        """Record a SimObject for system-wide reset walks."""
        self.objects.append(obj)

    def reset(self) -> None:
        """Rewind to tick 0 with an empty queue.

        Replacing the queue (rather than draining it) also resets the
        event sequence counter, so a reset simulator schedules events in
        exactly the order a freshly built one would -- a precondition for
        reused systems producing bit-identical results.
        """
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        self.queue = EventQueue()
        self.now = 0
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self.now + delay, callback, priority, name)

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute tick ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at tick {when}, current tick is {self.now}"
            )
        return self.queue.push(when, callback, priority, name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or limits hit).

        Parameters
        ----------
        until:
            Stop before executing events scheduled after this tick.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the tick of the last executed event (i.e. ``self.now``).
        """
        self._running = True
        executed = 0
        queue = self.queue
        try:
            while True:
                if until is not None:
                    next_tick = queue.peek_tick()
                    if next_tick is None or next_tick > until:
                        break
                event = queue.pop()
                if event is None:
                    break
                if event.when < self.now:
                    raise RuntimeError(
                        f"event {event.name!r} scheduled at {event.when} "
                        f"but time already at {self.now}"
                    )
                self.now = event.when
                event.callback()
                executed += 1
                self.events_executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return self.now

    def run_until_idle(self, quiesce: Callable[[], bool], max_events: int = 10**9) -> int:
        """Run until ``quiesce()`` returns True, checking after each event.

        Raises ``RuntimeError`` if the ``max_events`` budget is exhausted
        before the system quiesces, or if time would move backwards --
        the same monotonicity contract :meth:`run` enforces.
        """
        self._running = True
        executed = 0
        queue = self.queue
        try:
            while True:
                if quiesce():
                    break
                event = queue.pop()
                if event is None:
                    break
                if event.when < self.now:
                    raise RuntimeError(
                        f"event {event.name!r} scheduled at {event.when} "
                        f"but time already at {self.now}"
                    )
                self.now = event.when
                event.callback()
                executed += 1
                self.events_executed += 1
                if executed >= max_events:
                    if not quiesce():
                        raise RuntimeError(
                            f"run_until_idle exhausted max_events="
                            f"{max_events} before quiescing"
                        )
                    break
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self.queue)
