"""Event queue and simulation driver.

The :class:`Simulator` owns a single global event queue ordered by
``(tick, priority, sequence)``.  Ties at the same tick are broken first by an
explicit priority (lower runs earlier) and then by insertion order, which
makes runs fully deterministic -- a property the regression tests rely on.

Hot-path design
---------------
This module is the innermost loop of every experiment, so it trades a
little generality for speed:

* The heap holds plain ``(when, priority, seq, event)`` tuples.  Tuple
  comparison runs entirely in C and, because ``seq`` is unique, never
  falls through to comparing the :class:`Event` payload itself.
* :class:`Event` is a ``__slots__`` class used purely as a handle
  (cancellation) and a callback carrier; it is never compared.
* Executed and skipped-cancelled events return to a per-queue freelist,
  so steady-state scheduling allocates no new objects.  A handle is
  therefore only valid until its event fires or is reaped after
  cancellation -- cancelling a stale handle may affect a recycled event.
  Nothing in the tree holds handles past completion.
* Lazy deletion lives in one place (:meth:`EventQueue._prune`), shared
  by ``pop`` and ``peek_tick``; every reaped cancelled event is counted
  in :attr:`EventQueue.skipped_cancelled` (surfaced as
  :attr:`Simulator.events_skipped`).
* ``Simulator.run`` / ``run_until_idle`` inline the pop/prune logic with
  locals-bound heap operations, and ``run_until_idle`` throttles the
  ``quiesce()`` predicate adaptively instead of calling it per event.

Parallel discrete-event simulation
----------------------------------
:class:`ParallelSimulator` partitions the event program into
:class:`Domain` s -- disjoint groups of SimObjects, each with its own
:class:`EventQueue` -- advanced in lockstep *quantum rounds* bounded by
the minimum cross-domain link latency (the conservative-synchronization
lookahead window of parti-gem5).  Cross-domain communication goes
through :meth:`ParallelSimulator.post_at`, which lands the message in
the target domain's inbox; inboxes are delivered at the round barrier.
See ``docs/PARALLEL.md`` for the model and its determinism guarantees.
"""

from __future__ import annotations

import threading
from heapq import heappop, heappush
from typing import Callable, List, Optional

#: Default event priority.  Lower values run first within a tick.
PRIORITY_DEFAULT = 100
#: Priority for bookkeeping events that must observe a settled state.
PRIORITY_LATE = 1000
#: Priority for events that must run before ordinary work at a tick.
PRIORITY_EARLY = 10

#: Freelist bound: beyond this many retired events, let the GC have them.
_FREELIST_MAX = 8192

#: run_until_idle throttle: after this many consecutive "not quiesced"
#: answers the check interval doubles, up to the cap.  Short runs (fewer
#: than BACKOFF_AFTER events) therefore see exactly the historical
#: check-after-every-event behaviour.
_QUIESCE_BACKOFF_AFTER = 8
_QUIESCE_MAX_INTERVAL = 64


class Event:
    """A scheduled callback handle.

    Events live in the heap as the payload of ``(when, priority, seq,
    event)`` tuples; the object itself is never ordered.  ``cancelled``
    events stay in the heap but are skipped (and recycled) when they
    surface, which keeps cancellation O(1).
    """

    __slots__ = ("when", "priority", "seq", "callback", "name", "cancelled")

    def __init__(
        self,
        when: int,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self.when = when
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Only valid while the event is pending: handles are recycled once
        the event has fired or been reaped (see module docstring).  A
        handle sitting on the freelist (fired, not yet reused) is
        detected and rejected here -- its ``callback`` was cleared on
        release -- which catches the common cancel-after-completion bug
        at the call site instead of silently dropping whichever future
        event the handle gets recycled into.  A handle cancelled after
        its object was *already reused* cannot be distinguished from the
        new occupant; don't hold handles past their event's completion.
        """
        if self.callback is None:
            raise RuntimeError(
                "cancelling a completed event handle (handles are only "
                "valid until their event fires; see repro.sim.eventq)"
            )
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event @{self.when} prio={self.priority}{state} {self.name!r}>"


class EventQueue:
    """A deterministic min-heap of scheduled events.

    The public interface still speaks :class:`Event` (``push`` returns a
    handle, ``pop`` returns the next live event); the tuple layout and
    the freelist are internal.
    """

    __slots__ = ("_heap", "_seq", "_free", "skipped_cancelled")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._free: list = []
        #: Cancelled events reaped by lazy deletion (pop/peek/run loops).
        self.skipped_cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Insert a callback to run at tick ``when`` and return its handle."""
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(self._heap, (when, priority, seq, event))
        return event

    def _release(self, event: Event) -> None:
        """Recycle a finished event through the freelist."""
        event.callback = None  # drop the closure reference eagerly
        free = self._free
        if len(free) < _FREELIST_MAX:
            free.append(event)

    def _prune(self) -> None:
        """Reap cancelled events at the head (the one lazy-deletion site)."""
        heap = self._heap
        skipped = 0
        while heap and heap[0][3].cancelled:
            self._release(heappop(heap)[3])
            skipped += 1
        if skipped:
            self.skipped_cancelled += skipped

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty.

        The returned event is *not* recycled -- external callers own it.
        The run loops use their own inlined pop that recycles after
        dispatch.
        """
        self._prune()
        heap = self._heap
        if not heap:
            return None
        return heappop(heap)[3]

    def peek_tick(self) -> Optional[int]:
        """Tick of the next live event without removing it, or None."""
        self._prune()
        heap = self._heap
        return heap[0][0] if heap else None


class Simulator:
    """Drives the event queue and tracks the current tick.

    A single Simulator instance is shared by every :class:`SimObject` in a
    system.  Typical use::

        sim = Simulator()
        sim.schedule(ns(10), lambda: print("hello at 10ns"))
        sim.run()

    The simulator also keeps a registry of every :class:`SimObject` bound
    to it (in construction order), which is what lets a fully wired system
    be reset to its pristine state and reused for another run instead of
    being rebuilt from scratch.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: int = 0
        self._running = False
        self.events_executed: int = 0
        #: Largest freelist population observed at the end of a run loop
        #: (diagnostic: how much event recycling the run actually used).
        self.freelist_high_water: int = 0
        #: Every SimObject constructed against this simulator, in order.
        self.objects: list = []
        #: Self-profiler hook (repro.telemetry.profiler).  ``None`` keeps
        #: the monomorphic run loops untouched: the run methods test this
        #: once at entry and dispatch to the instrumented variants, so
        #: the disabled path gains no per-event branch.
        self._profiler = None

    def register(self, obj) -> None:
        """Record a SimObject for system-wide reset walks."""
        self.objects.append(obj)

    def reset(self) -> None:
        """Rewind to tick 0 with an empty queue.

        Replacing the queue (rather than draining it) also resets the
        event sequence counter, freelist and skipped-event count, so a
        reset simulator schedules events in exactly the order a freshly
        built one would -- a precondition for reused systems producing
        bit-identical results.
        """
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        self.queue = EventQueue()
        self.now = 0
        self.events_executed = 0
        # Diagnostic counters describe *one* run of the system; a reset
        # system must report them from scratch, not cumulatively
        # (events_skipped resets with the queue above).
        self.freelist_high_water = 0

    @property
    def events_skipped(self) -> int:
        """Cancelled events reaped by lazy deletion since the last reset."""
        return self.queue.skipped_cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        The body duplicates :meth:`EventQueue.push` deliberately: this is
        called once per event and the extra frame shows up on every
        sweep profile.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        queue = self.queue
        when = self.now + delay
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(queue._heap, (when, priority, seq, event))
        return event

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute tick ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at tick {when}, current tick is {self.now}"
            )
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(queue._heap, (when, priority, seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or limits hit).

        Parameters
        ----------
        until:
            Stop before executing events scheduled after this tick.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the tick of the last executed event (i.e. ``self.now``).
        """
        if self._profiler is not None:
            return self._run_profiled(until, max_events)
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        budget = max_events if max_events is not None else (1 << 62)
        try:
            if until is None:
                # Common case (drain the queue): pop unconditionally, no
                # per-event peek.  This is the monomorphic inner loop
                # every experiment spends its time in; `now` mirrors
                # self.now in a local so the monotonicity check costs a
                # local load (the attribute store remains, because
                # callbacks read self.now).
                now = self.now
                while heap:
                    when, _prio, _seq, event = pop(heap)
                    if event.cancelled:
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    if when < now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {now}"
                        )
                    self.now = now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    executed += 1
                    if executed >= budget:
                        break
            else:
                # Bounded run: peek before popping so events beyond
                # `until` stay queued for the next call.
                while heap:
                    head = heap[0]
                    event = head[3]
                    if event.cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    when = head[0]
                    if when > until:
                        break
                    if when < self.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {self.now}"
                        )
                    pop(heap)
                    self.now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    executed += 1
                    if executed >= budget:
                        break
        finally:
            self.events_executed += executed
            if len(free) > self.freelist_high_water:
                self.freelist_high_water = len(free)
            self._running = False
        return self.now

    def _run_profiled(
        self, until: Optional[int], max_events: Optional[int]
    ) -> int:
        """:meth:`run` with host wall-clock attribution per event bucket.

        Semantically identical to :meth:`run` (same monotonicity checks,
        lazy deletion, freelist recycling and budget accounting), with a
        ``perf_counter`` pair around every profiled callback.  Simulated
        results are bit-identical; only the host time differs.  Kept as
        a separate method so the unprofiled loop stays branch-free.
        """
        from time import perf_counter

        profiler = self._profiler
        stride = profiler.sample_every
        record = profiler.record
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        budget = max_events if max_events is not None else (1 << 62)
        try:
            while heap:
                if until is not None:
                    head = heap[0]
                    if head[3].cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        head[3].callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(head[3])
                        continue
                    if head[0] > until:
                        break
                when, _prio, _seq, event = pop(heap)
                if event.cancelled:
                    queue.skipped_cancelled += 1
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    continue
                if when < self.now:
                    raise RuntimeError(
                        f"event {event.name!r} scheduled at {when} "
                        f"but time already at {self.now}"
                    )
                self.now = when
                profiler.events_seen += 1
                if profiler.events_seen % stride == 0:
                    began = perf_counter()
                    event.callback()
                    record(event.name, perf_counter() - began)
                else:
                    event.callback()
                event.callback = None
                if len(free) < _FREELIST_MAX:
                    free.append(event)
                executed += 1
                if executed >= budget:
                    break
        finally:
            self.events_executed += executed
            if len(free) > self.freelist_high_water:
                self.freelist_high_water = len(free)
            self._running = False
        return self.now

    def run_until_idle(self, quiesce: Callable[[], bool], max_events: int = 10**9) -> int:
        """Run until ``quiesce()`` returns True.

        The predicate is evaluated between events, but *throttled*: after
        ``quiesce`` has answered "not yet" a handful of times in a row,
        the check interval backs off (doubling up to a small cap) so long
        drains stop paying a Python call per event.  Short runs see the
        historical check-after-every-event behaviour exactly; a throttled
        run may execute up to the current interval of extra events after
        the predicate first turns true.  The predicate is always
        re-checked before an event-budget return, so this method never
        reports quiescence that does not hold.

        Raises ``RuntimeError`` if the ``max_events`` budget is exhausted
        before the system quiesces, or if time would move backwards --
        the same monotonicity contract :meth:`run` enforces.
        """
        if self._profiler is not None:
            return self._run_until_idle_profiled(quiesce, max_events)
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        interval = 1
        misses = 0  # consecutive "not quiesced" answers at this interval
        drained = False
        try:
            while True:
                if quiesce():
                    break
                if heap and not drained:
                    misses += 1
                    if (misses >= _QUIESCE_BACKOFF_AFTER
                            and interval < _QUIESCE_MAX_INTERVAL):
                        interval <<= 1
                        misses = 0
                elif drained:
                    break  # queue empty and quiesce still false: give up
                # Execute up to `interval` events before asking again.
                ran = 0
                while ran < interval and executed + ran < max_events:
                    if not heap:
                        drained = True
                        break
                    head = heap[0]
                    event = head[3]
                    if event.cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    when = head[0]
                    if when < self.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {self.now}"
                        )
                    pop(heap)
                    self.now = when
                    event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    ran += 1
                executed += ran
                if not drained and executed >= max_events:
                    if not quiesce():
                        raise RuntimeError(
                            f"run_until_idle exhausted max_events="
                            f"{max_events} before quiescing"
                        )
                    break
        finally:
            self.events_executed += executed
            if len(free) > self.freelist_high_water:
                self.freelist_high_water = len(free)
            self._running = False
        return self.now

    def _run_until_idle_profiled(
        self, quiesce: Callable[[], bool], max_events: int
    ) -> int:
        """:meth:`run_until_idle` with per-bucket wall-clock attribution.

        Replicates the throttled quiesce loop exactly (including the
        backoff schedule, so the executed-event count matches the
        unprofiled run bit for bit) and times callbacks the same way
        :meth:`_run_profiled` does.
        """
        from time import perf_counter

        profiler = self._profiler
        stride = profiler.sample_every
        record = profiler.record
        self._running = True
        executed = 0
        queue = self.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        interval = 1
        misses = 0
        drained = False
        try:
            while True:
                if quiesce():
                    break
                if heap and not drained:
                    misses += 1
                    if (misses >= _QUIESCE_BACKOFF_AFTER
                            and interval < _QUIESCE_MAX_INTERVAL):
                        interval <<= 1
                        misses = 0
                elif drained:
                    break
                ran = 0
                while ran < interval and executed + ran < max_events:
                    if not heap:
                        drained = True
                        break
                    head = heap[0]
                    event = head[3]
                    if event.cancelled:
                        pop(heap)
                        queue.skipped_cancelled += 1
                        event.callback = None
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    when = head[0]
                    if when < self.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but time already at {self.now}"
                        )
                    pop(heap)
                    self.now = when
                    profiler.events_seen += 1
                    if profiler.events_seen % stride == 0:
                        began = perf_counter()
                        event.callback()
                        record(event.name, perf_counter() - began)
                    else:
                        event.callback()
                    event.callback = None
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    ran += 1
                executed += ran
                if not drained and executed >= max_events:
                    if not quiesce():
                        raise RuntimeError(
                            f"run_until_idle exhausted max_events="
                            f"{max_events} before quiescing"
                        )
                    break
        finally:
            self.events_executed += executed
            if len(free) > self.freelist_high_water:
                self.freelist_high_water = len(free)
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self.queue)

    def diagnostics(self) -> dict:
        """Run-health counters (all reset by :meth:`reset`)."""
        return {
            "events_executed": self.events_executed,
            "events_skipped": self.events_skipped,
            "freelist_high_water": self.freelist_high_water,
        }


class Domain:
    """One synchronized event domain of a :class:`ParallelSimulator`.

    A domain owns a disjoint subtree of SimObjects and the
    :class:`EventQueue` their events run on, plus an *inbox* of
    cross-domain messages awaiting delivery at the next round barrier.
    """

    __slots__ = ("index", "name", "queue", "now", "executed", "inbox", "posts")

    def __init__(self, index: int, name: str = "") -> None:
        self.index = index
        self.name = name or f"domain{index}"
        self.queue = EventQueue()
        #: Local time: tick of the last event this domain executed.
        self.now = 0
        self.executed = 0
        #: Buffered cross-domain messages:
        #: ``(when, priority, src_domain, src_post, gseq, callback, name)``.
        #: ``gseq`` is pre-allocated in lockstep mode, ``None`` in a
        #: threaded round (allocated at the barrier, in sorted order).
        self.inbox: list = []
        #: Messages this domain has *posted* (monotonic per domain; the
        #: deterministic tie-breaker for barrier delivery).
        self.posts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Domain {self.index} {self.name!r} @{self.now} "
                f"pending={len(self.queue)} inbox={len(self.inbox)}>")


class ParallelSimulator(Simulator):
    """A :class:`Simulator` partitioned into synchronized event domains.

    Conservative PDES in the parti-gem5 style: each domain advances its
    own queue, and all domains synchronize at a barrier every ``quantum``
    ticks, where ``quantum`` is the minimum cross-domain link latency
    (the lookahead).  A message posted across a domain boundary always
    targets a tick at least one quantum ahead, so delivering inboxes at
    the barrier can never deliver into a domain's past.

    Two execution modes share that round structure:

    * **Lockstep** (default): one thread executes each round's events in
      global ``(tick, priority, sequence)`` order via a k-way merge over
      the domain heaps.  Sequence numbers come from one global counter,
      allocated at exactly the moments a single-queue run would allocate
      them, so the execution order -- and every stat -- is *identical*
      to the classic :class:`Simulator` by construction, for any domain
      count.  This is the determinism-debugging mode and the mode
      systems run in.
    * **Threaded** (``threads=True``): each round fans out one worker
      thread per domain, draining that domain's window concurrently,
      with a barrier join before inbox delivery.  Only sound when each
      domain's callbacks touch that domain's state exclusively and
      cross-domain effects go through :meth:`post_at`.  Deterministic
      (barrier delivery sorts by ``(tick, priority, source domain,
      source post)``), but the interleaving differs from lockstep only
      in sequence-number values, never in per-domain order.

    The classic single-queue :class:`Simulator` remains the engine for
    unpartitioned systems; nothing in its hot path changed.
    """

    def __init__(self, num_domains: int, quantum: int = 1,
                 threads: bool = False) -> None:
        if num_domains < 1:
            raise ValueError(f"need at least one domain, got {num_domains}")
        if quantum < 1:
            raise ValueError(f"quantum must be at least 1 tick, got {quantum}")
        # The `now` property reads these; bind them before base init
        # (which assigns self.now = 0 through the property setter).
        self._tls = threading.local()
        self._now = 0
        self._current = 0
        super().__init__()
        self.quantum = quantum
        self.threads = threads
        self._domains: List[Domain] = [Domain(i) for i in range(num_domains)]
        #: Alias of domain 0's queue so introspection helpers keep
        #: working; scheduling goes through the domain router below.
        self.queue = self._domains[0].queue
        #: Global event sequence counter shared by every domain queue.
        self._gseq = 0
        self._threaded_round = False
        #: Quantum rounds synchronized so far (the sync-overhead unit).
        self.sync_rounds = 0
        #: Messages delivered across domain boundaries.
        self.cross_posts = 0
        #: Telemetry hook for quantum-barrier spans
        #: (repro.telemetry.tracer.QuantumTrace); checked once per round,
        #: never per event.
        self._quantum_trace = None

    # ------------------------------------------------------------------
    # Domain bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_domains(self) -> int:
        return len(self._domains)

    @property
    def domains(self) -> List[Domain]:
        return self._domains

    def _ctx(self) -> int:
        """Index of the domain whose event is currently executing."""
        current = getattr(self._tls, "domain", None)
        return self._current if current is None else current

    def assign_domain(self, obj, index: int) -> None:
        """Pin a SimObject's events to domain ``index``."""
        if not 0 <= index < len(self._domains):
            raise ValueError(
                f"domain {index} out of range 0..{len(self._domains) - 1}"
            )
        obj.domain = index

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current tick of the executing domain (global tick outside)."""
        current = getattr(self._tls, "domain", None)
        if current is None:
            return self._now
        return self._domains[current].now

    @now.setter
    def now(self, value: int) -> None:
        self._now = value

    # ------------------------------------------------------------------
    # Reset / diagnostics
    # ------------------------------------------------------------------
    def reset(self) -> None:
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        for dom in self._domains:
            dom.queue = EventQueue()
            dom.now = 0
            dom.executed = 0
            dom.inbox.clear()
            dom.posts = 0
        self.queue = self._domains[0].queue
        self._gseq = 0
        self._now = 0
        self._current = 0
        self.events_executed = 0
        self.sync_rounds = 0
        self.cross_posts = 0
        self.freelist_high_water = 0

    @property
    def events_skipped(self) -> int:
        return sum(dom.queue.skipped_cancelled for dom in self._domains)

    @property
    def pending_events(self) -> int:
        return sum(len(dom.queue) + len(dom.inbox) for dom in self._domains)

    def diagnostics(self) -> dict:
        out = super().diagnostics()
        out["sync_rounds"] = self.sync_rounds
        out["cross_posts"] = self.cross_posts
        return out

    # ------------------------------------------------------------------
    # Scheduling: same contract as Simulator, routed to the executing
    # domain's queue with globally-allocated sequence numbers.
    # ------------------------------------------------------------------
    def _push(self, dom: Domain, when: int, callback: Callable[[], None],
              priority: int, name: str) -> Event:
        queue = dom.queue
        seq = self._gseq
        self._gseq = seq + 1
        free = queue._free
        if free:
            event = free.pop()
            event.when = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(when, priority, seq, callback, name)
        heappush(queue._heap, (when, priority, seq, event))
        return event

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        dom = self._domains[self._ctx()]
        return self._push(dom, self.now + delay, callback, priority, name)

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        if when < self.now:
            raise ValueError(
                f"cannot schedule at tick {when}, current tick is {self.now}"
            )
        dom = self._domains[self._ctx()]
        return self._push(dom, when, callback, priority, name)

    def schedule_in(
        self,
        domain: int,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule directly into ``domain`` (setup/test convenience)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._push(self._domains[domain], self.now + delay,
                          callback, priority, name)

    # ------------------------------------------------------------------
    # Cross-domain channel
    # ------------------------------------------------------------------
    def post_at(
        self,
        domain: int,
        when: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> None:
        """Deliver ``callback`` at tick ``when`` in another domain.

        The message is buffered in the target domain's inbox and turned
        into an event at the next round barrier.  Posts must respect the
        lookahead contract: ``when`` is at least the hop latency past the
        poster's current tick, hence never earlier than the tick the
        target domain has reached when the barrier delivers (enforced at
        delivery).  No handle is returned -- cross-domain messages
        cannot be cancelled.
        """
        if when < self.now:
            raise ValueError(
                f"cannot post at tick {when}, current tick is {self.now}"
            )
        src = self._domains[self._ctx()]
        src.posts += 1
        if self._threaded_round:
            gseq = None  # allocated at the barrier, in sorted order
        else:
            gseq = self._gseq
            self._gseq = gseq + 1
        # list.append is atomic under the GIL, so concurrent domain
        # threads may post without a lock; delivery order is fixed by
        # the sort at the barrier, not arrival order.
        self._domains[domain].inbox.append(
            (when, priority, src.index, src.posts, gseq, callback, name)
        )

    def _flush_inboxes(self) -> None:
        """Turn buffered cross-domain messages into events (barrier)."""
        delivered = 0
        for dom in self._domains:
            inbox = dom.inbox
            if not inbox:
                continue
            inbox.sort(key=lambda entry: entry[:4])
            queue = dom.queue
            free = queue._free
            for when, priority, _src, _post, gseq, callback, name in inbox:
                if when < dom.now:
                    raise RuntimeError(
                        f"cross-domain message {name!r} for tick {when} "
                        f"reached {dom.name} already at tick {dom.now} "
                        f"(lookahead below the quantum of {self.quantum})"
                    )
                if gseq is None:
                    gseq = self._gseq
                    self._gseq = gseq + 1
                if free:
                    event = free.pop()
                    event.when = when
                    event.priority = priority
                    event.seq = gseq
                    event.callback = callback
                    event.name = name
                    event.cancelled = False
                else:
                    event = Event(when, priority, gseq, callback, name)
                heappush(queue._heap, (when, priority, gseq, event))
                delivered += 1
            inbox.clear()
        if delivered:
            self.cross_posts += delivered

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_tick(self) -> Optional[int]:
        start = None
        for dom in self._domains:
            tick = dom.queue.peek_tick()
            if tick is not None and (start is None or tick < start):
                start = tick
        return start

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        budget = max_events if max_events is not None else (1 << 62)
        if self.threads and len(self._domains) > 1:
            return self._run_threaded(until, budget)
        return self._run_lockstep(until, budget)

    def _round_end(self, start: int, until: Optional[int]) -> int:
        end = start + self.quantum
        if until is not None and end > until + 1:
            end = until + 1
        return end

    def _run_lockstep(self, until: Optional[int], budget: int) -> int:
        self._running = True
        executed = 0
        domains = self._domains
        quantum_trace = self._quantum_trace
        profiler = self._profiler
        if profiler is not None:
            from time import perf_counter
        try:
            while executed < budget:
                self._flush_inboxes()
                start = self._next_tick()
                if start is None:
                    break
                if until is not None and start > until:
                    break
                end = self._round_end(start, until)
                self.sync_rounds += 1
                if quantum_trace is not None:
                    quantum_trace.round(start, end, self.sync_rounds)
                # Drain the round window in global (tick, priority, seq)
                # order: a k-way merge over the domain heaps.  The O(D)
                # head scan per event *is* the lockstep sync overhead.
                while executed < budget:
                    best_key = None
                    best = None
                    for dom in domains:
                        dom.queue._prune()
                        heap = dom.queue._heap
                        if heap:
                            head = heap[0]
                            if head[0] < end and (best_key is None
                                                  or head[:3] < best_key):
                                best_key = head[:3]
                                best = dom
                    if best is None:
                        break
                    queue = best.queue
                    when, _prio, _seq, event = heappop(queue._heap)
                    if when < best.now:
                        raise RuntimeError(
                            f"event {event.name!r} scheduled at {when} "
                            f"but {best.name} already at {best.now}"
                        )
                    self._current = best.index
                    self._now = when
                    best.now = when
                    if profiler is None:
                        event.callback()
                    else:
                        profiler.events_seen += 1
                        if profiler.events_seen % profiler.sample_every == 0:
                            began = perf_counter()
                            event.callback()
                            profiler.record(
                                event.name, perf_counter() - began
                            )
                        else:
                            event.callback()
                    event.callback = None
                    free = queue._free
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    executed += 1
                    best.executed += 1
        finally:
            self.events_executed += executed
            high = max(len(dom.queue._free) for dom in domains)
            if high > self.freelist_high_water:
                self.freelist_high_water = high
            self._current = 0
            self._running = False
        return self._now

    def _drain_domain(self, dom: Domain, end: int, budget: int) -> int:
        """Execute one domain's events below ``end`` (one round window)."""
        queue = dom.queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        executed = 0
        now = dom.now
        while heap and executed < budget:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                pop(heap)
                queue.skipped_cancelled += 1
                event.callback = None
                if len(free) < _FREELIST_MAX:
                    free.append(event)
                continue
            when = head[0]
            if when >= end:
                break
            if when < now:
                raise RuntimeError(
                    f"event {event.name!r} scheduled at {when} "
                    f"but {dom.name} already at {now}"
                )
            pop(heap)
            dom.now = now = when
            event.callback()
            event.callback = None
            if len(free) < _FREELIST_MAX:
                free.append(event)
            executed += 1
        dom.executed += executed
        return executed

    def _run_threaded(self, until: Optional[int], budget: int) -> int:
        self._running = True
        executed = 0
        domains = self._domains
        try:
            while executed < budget:
                self._flush_inboxes()
                start = self._next_tick()
                if start is None:
                    break
                if until is not None and start > until:
                    break
                end = self._round_end(start, until)
                self.sync_rounds += 1
                if self._quantum_trace is not None:
                    self._quantum_trace.round(start, end, self.sync_rounds)
                remaining = budget - executed
                drained = [0] * len(domains)
                errors: list = []
                self._threaded_round = True

                def drain(dom: Domain) -> None:
                    self._tls.domain = dom.index
                    try:
                        drained[dom.index] = self._drain_domain(
                            dom, end, remaining
                        )
                    except BaseException as exc:  # surfaced after join
                        errors.append((dom.index, exc))
                    finally:
                        self._tls.domain = None

                workers = [
                    threading.Thread(target=drain, args=(dom,),
                                     name=f"pdes-{dom.name}")
                    for dom in domains
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                self._threaded_round = False
                if errors:
                    errors.sort(key=lambda item: item[0])
                    raise errors[0][1]
                executed += sum(drained)
            self._now = max(
                (dom.now for dom in domains), default=self._now
            )
        finally:
            self._threaded_round = False
            self.events_executed += executed
            high = max(len(dom.queue._free) for dom in domains)
            if high > self.freelist_high_water:
                self.freelist_high_water = high
            self._running = False
        return self._now

    def run_until_idle(self, quiesce: Callable[[], bool],
                       max_events: int = 10**9) -> int:
        """Run one event at a time until ``quiesce()`` holds.

        The parallel engine is for partitioned batch runs; nothing
        latency-sensitive sits on this path, so it trades the classic
        throttled loop for the simplest correct thing.
        """
        baseline = self.events_executed
        while not quiesce():
            before = self.events_executed
            self.run(max_events=1)
            if self.events_executed == before:
                break  # drained without quiescing: give up, like run()
            if self.events_executed - baseline >= max_events:
                if not quiesce():
                    raise RuntimeError(
                        f"run_until_idle exhausted max_events="
                        f"{max_events} before quiescing"
                    )
                break
        return self._now
