"""SimObject and ClockedObject base classes.

Every simulated component derives from :class:`SimObject`, which binds it to
a :class:`~repro.sim.eventq.Simulator`, gives it a hierarchical name and a
stats group, and provides scheduling shorthand.  :class:`ClockedObject` adds
a clock domain (period in ticks) with cycle arithmetic, mirroring gem5's
class of the same name.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.eventq import Event, Simulator
from repro.sim.statistics import StatGroup
from repro.sim.ticks import freq_to_period


class SimObject:
    """Base class for all simulated components."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        #: Event-domain affinity under a
        #: :class:`~repro.sim.eventq.ParallelSimulator`: the index of the
        #: domain this object's events run in.  Assigned by the system's
        #: domain plan (``fabric.apply_domain_plan``); 0 -- the host /
        #: root-complex domain -- for everything else, and inert on the
        #: classic single-queue :class:`Simulator`.
        self.domain = 0
        sim.register(self)

    def reset_state(self) -> None:
        """Restore construction-time state so the object can be reused.

        The base implementation clears statistics; components with
        additional mutable state (tag stores, queues, busy-until
        timestamps, ...) override this and call ``super().reset_state()``.
        Topology -- wiring established at construction or by one-time
        setup such as driver probe -- is deliberately preserved.
        """
        self.stats.reset()

    # Scheduling shorthand -------------------------------------------------
    # Hot components (links, DRAM, DMA) call ``self.sim.schedule``
    # directly to skip this extra frame; the shorthand remains the
    # readable default and tags events with the component name.
    def schedule(
        self, delay: int, callback: Callable[[], None], priority: int = 100
    ) -> Event:
        """Schedule ``callback`` after ``delay`` ticks."""
        return self.sim.schedule(delay, callback, priority, name=self.name)

    def schedule_at(
        self, when: int, callback: Callable[[], None], priority: int = 100
    ) -> Event:
        """Schedule ``callback`` at absolute tick ``when``."""
        return self.sim.schedule_at(when, callback, priority, name=self.name)

    @property
    def now(self) -> int:
        """Current simulation tick."""
        return self.sim.now

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ClockedObject(SimObject):
    """A SimObject in a clock domain.

    Parameters
    ----------
    freq_hz:
        Clock frequency in Hz; the period is stored in ticks.
    """

    def __init__(self, sim: Simulator, name: str, freq_hz: float) -> None:
        super().__init__(sim, name)
        self.freq_hz = freq_hz
        self.clock_period = freq_to_period(freq_hz)

    def cycles(self, n: float) -> int:
        """Duration of ``n`` clock cycles in ticks (rounded up)."""
        return -(-int(n * self.clock_period) // 1)

    def ticks_to_cycles(self, ticks: int) -> float:
        """Convert a tick duration into (fractional) cycles of this clock."""
        return ticks / self.clock_period

    def next_edge(self, from_tick: Optional[int] = None) -> int:
        """First clock edge at or after ``from_tick`` (default: now)."""
        tick = self.sim.now if from_tick is None else from_tick
        period = self.clock_period
        return -(-tick // period) * period
