"""Memory transactions -- the currency every component exchanges.

A :class:`Transaction` describes one contiguous read or write.  It is the
analogue of gem5's ``Packet``: components receive a transaction, charge
timing for it, optionally move functional data, and pass it on (or complete
it back to the originator).

Transactions may span many cache lines or PCIe TLPs; components that care
about finer granularity (the DRAM controller, the PCIe link, the SMMU)
account for the per-line / per-TLP costs arithmetically.  The helpers
:meth:`Transaction.num_lines` and :meth:`Transaction.pages_touched` support
that exact accounting.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

import numpy as np

_txn_ids = itertools.count()


class MemCmd(enum.Enum):
    """Transaction command."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is MemCmd.READ

    @property
    def is_write(self) -> bool:
        return self is MemCmd.WRITE


class Transaction:
    """One contiguous memory read or write.

    Parameters
    ----------
    cmd:
        :class:`MemCmd.READ` or :class:`MemCmd.WRITE`.
    addr:
        Start address.  Whether this is virtual or physical depends on where
        the transaction currently sits: accelerator-side components issue
        virtual addresses which the SMMU rewrites to physical (recorded in
        :attr:`paddr`).
    size:
        Length in bytes (must be positive).
    data:
        Optional functional payload (numpy uint8 array of length ``size``).
        Timing-only simulations leave it as None.
    source:
        Free-form tag identifying the originator (used by stats and by the
        MemBus for response routing).
    """

    __slots__ = (
        "id",
        "cmd",
        "addr",
        "size",
        "data",
        "source",
        "vaddr",
        "paddr",
        "issue_tick",
        "complete_tick",
        "packet_size",
        "stream",
        "is_translated",
        "for_ownership",
    )

    def __init__(
        self,
        cmd: MemCmd,
        addr: int,
        size: int,
        data: Optional[np.ndarray] = None,
        source: str = "",
    ) -> None:
        if size <= 0:
            raise ValueError(f"transaction size must be positive, got {size}")
        if addr < 0:
            raise ValueError(f"transaction address must be non-negative, got {addr}")
        if data is not None and data.nbytes != size:
            raise ValueError(
                f"payload size {data.nbytes} does not match transaction size {size}"
            )
        self.id = next(_txn_ids)
        self.cmd = cmd
        self.addr = addr
        self.size = size
        self.data = data
        self.source = source
        self.vaddr: Optional[int] = None
        self.paddr: Optional[int] = None
        self.issue_tick: Optional[int] = None
        self.complete_tick: Optional[int] = None
        #: Preferred on-wire packet size for interconnects that fragment.
        self.packet_size: Optional[int] = None
        #: Stream label for reuse/locality analysis ("A", "B", "C", ...).
        self.stream: str = ""
        self.is_translated: bool = False
        #: Read-for-ownership: a fetch that will be written on fill.
        #: Snooping buses treat it like a write (invalidate sharers).
        self.for_ownership: bool = False

    # ------------------------------------------------------------------
    # Convenience predicates and constructors
    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.cmd.is_read

    @property
    def is_write(self) -> bool:
        return self.cmd.is_write

    @property
    def end_addr(self) -> int:
        """One past the last byte touched."""
        return self.addr + self.size

    @classmethod
    def read(cls, addr: int, size: int, source: str = "") -> "Transaction":
        return cls(MemCmd.READ, addr, size, source=source)

    @classmethod
    def write(
        cls, addr: int, size: int, data: Optional[np.ndarray] = None, source: str = ""
    ) -> "Transaction":
        return cls(MemCmd.WRITE, addr, size, data, source=source)

    def clone_for_segment(
        self, addr: int, size: int, issue_tick: int
    ) -> "Transaction":
        """A fresh transaction for one segment of a larger transfer.

        Copies the routing-relevant fields (command, source, stream,
        packet size) from ``self`` -- the *template* the DMA engine
        builds once per descriptor -- and skips ``__init__`` validation:
        segment addresses and sizes are derived from an already-validated
        descriptor, so re-checking them per segment is pure overhead on
        the engine's hottest path.  Everything else starts pristine,
        exactly as a fresh construction would leave it.
        """
        txn = Transaction.__new__(Transaction)
        txn.id = next(_txn_ids)
        txn.cmd = self.cmd
        txn.addr = addr
        txn.size = size
        txn.data = None
        txn.source = self.source
        txn.vaddr = None
        txn.paddr = None
        txn.issue_tick = issue_tick
        txn.complete_tick = None
        txn.packet_size = self.packet_size
        txn.stream = self.stream
        txn.is_translated = False
        txn.for_ownership = False
        return txn

    # ------------------------------------------------------------------
    # Granularity accounting
    # ------------------------------------------------------------------
    def num_lines(self, line_size: int = 64) -> int:
        """Number of cache lines this transaction touches."""
        first = self.addr // line_size
        last = (self.end_addr - 1) // line_size
        return last - first + 1

    def num_packets(self, packet_size: int) -> int:
        """Number of on-wire packets when fragmented at ``packet_size``."""
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        return -(-self.size // packet_size)

    def pages_touched(self, page_size: int = 4096) -> range:
        """Range of virtual page numbers this transaction covers."""
        first = self.addr // page_size
        last = (self.end_addr - 1) // page_size
        return range(first, last + 1)

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency in ticks once completed, else None."""
        if self.issue_tick is None or self.complete_tick is None:
            return None
        return self.complete_tick - self.issue_tick

    def __repr__(self) -> str:
        return (
            f"Transaction(#{self.id} {self.cmd.value} "
            f"addr={self.addr:#x} size={self.size})"
        )
