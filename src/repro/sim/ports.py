"""TLM-style connection points and generic timing building blocks.

Components talk through a single protocol: a *target* exposes
``send(txn, on_complete)`` and invokes ``on_complete(txn)`` when the
transaction finishes (for reads: data returned; for writes: accepted at the
destination).  Initiators bound their own concurrency (DMA tags, CPU MSHRs),
so targets may queue without explicit retry handshakes; where hardware
credit-based backpressure matters (the PCIe link) it is modelled explicitly.

Two reusable timing elements cover most components:

* :class:`QueueStation` -- a single-server FIFO with a per-transaction
  service time (memory controller front-ends, switch forwarding logic).
* :class:`PipelinedLink` -- a serialized channel where a transaction
  occupies the wire for its serialization time but propagation overlaps
  with the next transaction (buses, PCIe lanes).

Ports carry *domain affinity* (via :class:`~repro.sim.simobject.SimObject`)
under a partitioned :class:`~repro.sim.eventq.ParallelSimulator`;
:func:`deliver_in_domain` and :class:`ChannelPort` are the cross-domain
message channel -- a completion crossing a domain boundary lands in the
peer domain's inbox with its link latency as the lookahead.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.eventq import PRIORITY_DEFAULT, Simulator
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction

#: Completion callback signature.
CompletionFn = Callable[[Transaction], None]


def deliver_in_domain(
    sim: Simulator,
    domain: Optional[int],
    when: int,
    callback: Callable[[], None],
    priority: int = PRIORITY_DEFAULT,
    name: str = "",
) -> None:
    """Schedule ``callback`` at ``when``, in ``domain`` if one is named.

    The one cross-domain primitive: with a partitioned simulator and an
    explicit target domain this goes through the peer domain's inbox
    (:meth:`~repro.sim.eventq.ParallelSimulator.post_at`); otherwise --
    classic simulator, or a delivery that stays home -- it is a plain
    ``schedule_at``.  Callers must respect the lookahead contract:
    ``when`` is at least one cross-domain hop latency in the future.
    """
    if domain is None:
        sim.schedule_at(when, callback, priority, name=name)
        return
    post = getattr(sim, "post_at", None)
    if post is None:
        sim.schedule_at(when, callback, priority, name=name)
    else:
        post(domain, when, callback, priority, name=name)


class TargetPort(SimObject):
    """Abstract base for anything that accepts transactions."""

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """Accept ``txn``; call ``on_complete(txn)`` when it finishes."""
        raise NotImplementedError


class ChannelPort(TargetPort):
    """A target port that hands transactions to a peer event domain.

    Wraps another target: ``send`` crosses into the wrapped target's
    domain after ``latency`` ticks (the channel's lookahead), then
    forwards.  The completion callback runs in the *target's* domain --
    initiators that need the completion back home hop through their own
    channel.  This is the generic form of the fabric's link crossing,
    useful for wiring ad-hoc cross-domain pairs in tests and tools.
    """

    def __init__(self, sim: Simulator, name: str, target: TargetPort,
                 latency: int) -> None:
        super().__init__(sim, name)
        if latency < 1:
            raise ValueError(
                f"{name}: a cross-domain channel needs latency >= 1 "
                f"(the lookahead), got {latency}"
            )
        self.target = target
        self.latency = latency
        self._count = self.stats.scalar("transactions", "transactions relayed")

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self._count.inc()
        target = self.target
        deliver_in_domain(
            self.sim, target.domain, self.sim.now + self.latency,
            lambda: target.send(txn, on_complete), name=self.name,
        )


class FixedLatencyTarget(TargetPort):
    """A target that completes every transaction after a fixed latency.

    Useful as a test stub and as a terminator for ranges that need no
    detailed model (e.g. MMIO doorbell registers).
    """

    def __init__(self, sim: Simulator, name: str, latency: int) -> None:
        super().__init__(sim, name)
        self.latency = latency
        self._count = self.stats.scalar("transactions", "transactions completed")

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self._count.inc()
        self.schedule(self.latency, lambda: on_complete(txn))


class QueueStation(TargetPort):
    """Single-server FIFO station.

    Subclasses (or callers via ``service_fn``) define the per-transaction
    service time.  The station serves transactions in arrival order; a
    transaction's completion fires ``service_time`` ticks after the server
    becomes free for it.  An optional ``forward_to`` target chains stations:
    completion then means "accepted downstream" and the downstream target's
    completion is propagated.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        service_fn: Optional[Callable[[Transaction], int]] = None,
        forward_to: Optional[TargetPort] = None,
    ) -> None:
        super().__init__(sim, name)
        self._service_fn = service_fn
        self.forward_to = forward_to
        self._server_free_at = 0
        self._queued = self.stats.scalar("transactions", "transactions served")
        self._busy_ticks = self.stats.scalar("busy_ticks", "server busy time")

    def service_time(self, txn: Transaction) -> int:
        """Service time for one transaction; override or pass service_fn."""
        if self._service_fn is None:
            raise NotImplementedError("provide service_fn or override service_time")
        return self._service_fn(txn)

    def reset_state(self) -> None:
        super().reset_state()
        self._server_free_at = 0

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        sim = self.sim
        now = sim.now
        start = now if now > self._server_free_at else self._server_free_at
        service = self.service_time(txn)
        done = start + service
        self._server_free_at = done
        # Batched stat update (equivalent to inc() per counter).
        self._queued.value += 1
        self._busy_ticks.value += service
        self.stats.dirty = True
        if self.forward_to is None:
            sim.schedule_at(done, lambda: on_complete(txn), name=self.name)
        else:
            target = self.forward_to
            sim.schedule_at(done, lambda: target.send(txn, on_complete),
                            name=self.name)

    @property
    def backlog_ticks(self) -> int:
        """How far in the future the server is already committed."""
        return max(0, self._server_free_at - self.now)


class PipelinedLink(TargetPort):
    """A serialized, pipelined channel.

    Each transaction holds the wire for ``serialize(txn)`` ticks starting
    when the wire frees up; it then *propagates* for ``prop_delay`` ticks
    while the next transaction may already be on the wire.  This is the
    standard bus/link model: throughput set by serialization, latency by
    serialization + propagation.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        serialize_fn: Callable[[Transaction], int],
        prop_delay: int = 0,
        forward_to: Optional[TargetPort] = None,
    ) -> None:
        super().__init__(sim, name)
        self._serialize_fn = serialize_fn
        self.prop_delay = prop_delay
        self.forward_to = forward_to
        self._wire_free_at = 0
        self._count = self.stats.scalar("transactions", "transactions carried")
        self._bytes = self.stats.scalar("bytes", "payload bytes carried")
        self._busy_ticks = self.stats.scalar("busy_ticks", "wire occupancy")

    def reset_state(self) -> None:
        super().reset_state()
        self._wire_free_at = 0

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        sim = self.sim
        now = sim.now
        start = now if now > self._wire_free_at else self._wire_free_at
        serialize = self._serialize_fn(txn)
        self._wire_free_at = start + serialize
        # Batched stat update (equivalent to inc() per counter).
        self._count.value += 1
        self._bytes.value += txn.size
        self._busy_ticks.value += serialize
        self.stats.dirty = True
        arrival = start + serialize + self.prop_delay
        if self.forward_to is None:
            sim.schedule_at(arrival, lambda: on_complete(txn),
                            name=self.name)
        else:
            target = self.forward_to
            sim.schedule_at(arrival, lambda: target.send(txn, on_complete),
                            name=self.name)

    @property
    def backlog_ticks(self) -> int:
        """How far in the future the wire is already committed."""
        return max(0, self._wire_free_at - self.now)
