"""Accelerator Wrapper: PCIe function, register file, DMA and controller.

The wrapper is the unit that plugs into the PCIe hierarchy (Fig. 1,
Section III-B): it exposes a register file through BAR0 (doorbell, status,
job descriptor registers), owns the multi-channel DMA engine and the
DevMem/local-buffer plumbing, and signals completion through an MSI-style
callback.  The paper's RTL-or-C++ accelerator core corresponds to the
:class:`~repro.accel.systolic.SystolicArray` instance inside.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

import numpy as np

from repro.accel.controller import AcceleratorController, GemmJob
from repro.accel.local_buffer import LocalBuffer
from repro.accel.systolic import SystolicArray, SystolicParams
from repro.dma import DMAEngine
from repro.interconnect.pcie.config_space import BAR, PCIeFunction
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns

#: Identity of the simulated device (matches the driver's probe list).
ACCESYS_VENDOR_ID = 0x1AB4
ACCESYS_DEVICE_ID = 0x5A10

#: BAR0 register map (byte offsets).
REG_DOORBELL = 0x00
REG_STATUS = 0x04
REG_M = 0x10
REG_K = 0x14
REG_N = 0x18
REG_A_ADDR = 0x20
REG_B_ADDR = 0x28
REG_C_ADDR = 0x30
REG_PACKET_SIZE = 0x38
REG_ELEMENT_BYTES = 0x3C

#: STATUS values.
STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_DONE = 2


class RegisterFile(TargetPort):
    """BAR0-backed register file with MMIO-class access latency."""

    def __init__(self, sim: Simulator, name: str, size: int = 4096,
                 latency: int = ns(10)) -> None:
        super().__init__(sim, name)
        self.backing = np.zeros(size, dtype=np.uint8)
        self.latency = latency
        self._on_doorbell: Optional[Callable[[], None]] = None
        self._accesses = self.stats.scalar("accesses", "MMIO register accesses")

    def set_doorbell_handler(self, handler: Callable[[], None]) -> None:
        self._on_doorbell = handler

    def reset_state(self) -> None:
        super().reset_state()
        self.backing[:] = 0

    # Functional helpers (zero-time; used by the wrapper itself) ---------
    def read_u32(self, offset: int) -> int:
        return struct.unpack_from("<I", self.backing, offset)[0]

    def read_u64(self, offset: int) -> int:
        return struct.unpack_from("<Q", self.backing, offset)[0]

    def write_u32(self, offset: int, value: int) -> None:
        struct.pack_into("<I", self.backing, offset, value & 0xFFFFFFFF)

    def write_u64(self, offset: int, value: int) -> None:
        struct.pack_into("<Q", self.backing, offset, value & (2**64 - 1))

    # Timing path --------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self._accesses.inc()
        offset = txn.addr % len(self.backing)
        if txn.is_write and txn.data is not None:
            self.backing[offset : offset + txn.size] = txn.data
        elif txn.is_read:
            txn.data = self.backing[offset : offset + txn.size].copy()

        def finish() -> None:
            if txn.is_write and offset == REG_DOORBELL and self._on_doorbell:
                self._on_doorbell()
            on_complete(txn)

        self.schedule(self.latency, finish)


class AcceleratorWrapper(SimObject):
    """The complete accelerator endpoint.

    Parameters
    ----------
    dma_target:
        Where device-initiated transactions go: the PCIe fabric adapter in
        host-memory modes, or the device memory controller in DevMem mode.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dma_target: TargetPort,
        systolic_params: Optional[SystolicParams] = None,
        local_buffer_bytes: int = 512 * 1024,
        dma_channels: int = 4,
        dma_tags: int = 32,
        dma_segment_bytes: int = 4096,
        prefetch_depth: int = 2,
        reuse_a_panels: bool = False,
        compute_ticks_override: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name)
        params = systolic_params or SystolicParams()
        self.systolic = SystolicArray(
            sim, f"{name}.sa", params, compute_ticks_override
        )
        self.local_buffer = LocalBuffer(
            sim, f"{name}.lbuf", capacity=local_buffer_bytes
        )
        self.dma = DMAEngine(
            sim,
            f"{name}.dma",
            dma_target,
            num_channels=dma_channels,
            max_outstanding=dma_tags,
            segment_bytes=dma_segment_bytes,
        )
        self.controller = AcceleratorController(
            sim,
            f"{name}.ctrl",
            self.systolic,
            self.local_buffer,
            self.dma,
            prefetch_depth=prefetch_depth,
            reuse_a_panels=reuse_a_panels,
        )
        self.regs = RegisterFile(sim, f"{name}.regs")
        self.regs.set_doorbell_handler(self._on_doorbell)
        self.pcie_function = PCIeFunction(
            vendor_id=ACCESYS_VENDOR_ID,
            device_id=ACCESYS_DEVICE_ID,
            bars=[BAR(size=4096), BAR(size=local_buffer_bytes or 4096,
                                      prefetchable=True)],
        )
        self._msi_handler: Optional[Callable[[GemmJob, Dict], None]] = None
        self._functional_operands: Optional[tuple] = None
        self.last_job_stats: Optional[Dict[str, float]] = None

    def reset_state(self) -> None:
        # The MSI handler is wired once by driver probe and kept.
        super().reset_state()
        self._functional_operands = None
        self.last_job_stats = None

    # ------------------------------------------------------------------
    # Driver-facing hooks
    # ------------------------------------------------------------------
    def set_msi_handler(self, handler: Callable[[GemmJob, Dict], None]) -> None:
        """Register the interrupt the driver receives on job completion."""
        self._msi_handler = handler

    def set_functional_operands(self, a: np.ndarray, b: np.ndarray) -> None:
        """Provide functional input matrices for the next job.

        This is the functional side channel (gem5-style functional access):
        timing flows through the full transaction path, data through here.
        """
        self._functional_operands = (a, b)

    @property
    def status(self) -> int:
        return self.regs.read_u32(REG_STATUS)

    # ------------------------------------------------------------------
    # Doorbell -> job launch
    # ------------------------------------------------------------------
    def _on_doorbell(self) -> None:
        if self.regs.read_u32(REG_STATUS) == STATUS_RUNNING:
            raise RuntimeError(f"{self.name}: doorbell while running")
        job = self._decode_job()
        self.regs.write_u32(REG_STATUS, STATUS_RUNNING)
        self.controller.launch(job, self._job_finished)

    def _decode_job(self) -> GemmJob:
        regs = self.regs
        packet = regs.read_u32(REG_PACKET_SIZE)
        a_data = b_data = None
        if self._functional_operands is not None:
            a_data, b_data = self._functional_operands
            self._functional_operands = None
        return GemmJob(
            m=regs.read_u32(REG_M),
            k=regs.read_u32(REG_K),
            n=regs.read_u32(REG_N),
            a_addr=regs.read_u64(REG_A_ADDR),
            b_addr=regs.read_u64(REG_B_ADDR),
            c_addr=regs.read_u64(REG_C_ADDR),
            element_bytes=regs.read_u32(REG_ELEMENT_BYTES) or 4,
            packet_size=packet or None,
            a_data=a_data,
            b_data=b_data,
        )

    def _job_finished(self, job: GemmJob, stats: Dict[str, float]) -> None:
        self.regs.write_u32(REG_STATUS, STATUS_DONE)
        self.last_job_stats = stats
        if self._msi_handler is not None:
            self._msi_handler(job, stats)
