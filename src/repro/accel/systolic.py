"""16x16 systolic array: timing and functional models.

The timing model is parametric rather than RTL-derived: a tile of
``rows x cols`` outputs over a reduction depth ``k`` costs the larger of
the MAC-array pipeline time (``k`` + fill/drain) and the operand ingest
time (two panels of ``k * rows`` elements through an ``ingest_elems``-wide
port from the local buffer).  The paper's own roofline experiment (Fig. 2)
treats the array's compute time as a free variable, which this model
exposes directly via ``compute_ticks_override``.

The functional model is exact: int32 matrix multiply with 64-bit
accumulation, matching the integer datapath the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.eventq import Simulator
from repro.sim.simobject import ClockedObject


@dataclass(frozen=True)
class SystolicParams:
    """Geometry and timing of the array.

    ``ingest_elems`` is the number of matrix elements the array can accept
    per cycle from the local buffer (per panel stream).  The default of 1
    models a loosely-coupled design fed over a single 32-bit port, which is
    what reproduces the paper's compute-bound ceiling; wide configurations
    (e.g. 16) model a fully-banked buffer feeding every row in parallel.
    """

    rows: int = 16
    cols: int = 16
    freq_hz: float = 1e9
    element_bytes: int = 4
    ingest_elems: int = 1
    #: Pipeline fill + drain cycles.
    fill_drain_cycles: int = 32

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.ingest_elems <= 0:
            raise ValueError("ingest width must be positive")
        if self.element_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported element size {self.element_bytes}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate units in the array."""
        return self.rows * self.cols

    @property
    def ingest_bytes_per_sec(self) -> float:
        """Sustained operand bandwidth the array can absorb."""
        return self.ingest_elems * self.element_bytes * self.freq_hz * 2

    def tile_cycles(self, k: int) -> int:
        """Cycles to produce one rows x cols output tile of depth ``k``."""
        if k <= 0:
            raise ValueError(f"reduction depth must be positive, got {k}")
        pipeline = k + self.fill_drain_cycles
        # Two operand panels (A: rows*k, B: k*cols) stream concurrently,
        # each through its own ingest port.
        ingest = max(self.rows, self.cols) * k // self.ingest_elems
        return max(pipeline, ingest)


class SystolicArray(ClockedObject):
    """The compute unit: schedules tile computations, computes results."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: SystolicParams,
        compute_ticks_override: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, params.freq_hz)
        self.params = params
        #: When set, every tile costs exactly this many ticks (Fig. 2 knob).
        self.compute_ticks_override = compute_ticks_override
        self._free_at = 0

        self._tiles = self.stats.scalar("tiles", "output tiles computed")
        self._busy_ticks = self.stats.scalar("busy_ticks", "array busy time")
        self._idle_ticks = self.stats.scalar(
            "idle_ticks", "array idle time between queued tiles"
        )
        self._macs_done = self.stats.scalar("macs", "multiply-accumulates")

    def reset_state(self) -> None:
        super().reset_state()
        self._free_at = 0

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def tile_ticks(self, k: int) -> int:
        """Duration of one tile computation in ticks."""
        if self.compute_ticks_override is not None:
            return self.compute_ticks_override
        return self.params.tile_cycles(k) * self.clock_period

    def compute_tile(self, k: int, on_done) -> int:
        """Occupy the array for one tile; fire ``on_done()`` when finished.

        Returns the tick at which the computation will finish.  Requests
        queue back-to-back if the array is busy.
        """
        duration = self.tile_ticks(k)
        start = max(self.now, self._free_at)
        done = start + duration
        if self._tiles.value > 0 and self.now > self._free_at:
            self._idle_ticks.inc(self.now - self._free_at)
        self._free_at = done
        self._tiles.inc()
        self._busy_ticks.inc(duration)
        self._macs_done.inc(self.params.rows * self.params.cols * k)
        self.schedule_at(done, on_done)
        return done

    @property
    def free_at(self) -> int:
        """Tick at which the array next becomes idle."""
        return max(self._free_at, self.now)

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    @staticmethod
    def multiply(a_panel: np.ndarray, b_panel: np.ndarray) -> np.ndarray:
        """Exact int32 tile product with 64-bit accumulation."""
        if a_panel.shape[1] != b_panel.shape[0]:
            raise ValueError(
                f"inner dimensions differ: {a_panel.shape} x {b_panel.shape}"
            )
        acc = a_panel.astype(np.int64) @ b_panel.astype(np.int64)
        return acc.astype(np.int32)

    def describe(self) -> str:
        p = self.params
        return (
            f"{p.rows}x{p.cols} systolic array @ {p.freq_hz / 1e9:g} GHz, "
            f"ingest {p.ingest_elems} elem/cycle "
            f"({p.ingest_bytes_per_sec / 1e9:.1f} GB/s)"
        )
