"""Device-side memory (DevMem) behind its controller.

The DevMem controller of Fig. 1 sits between the accelerator and device
memory; access bypasses the whole PCIe hierarchy (arrow 6 in the paper),
which is why DevMem GEMM outperforms every host-side configuration -- and
why CPU-side (non-GEMM) access to the same memory pays the PCIe round trip
instead (the NUMA penalty of Fig. 8).

The memory itself is pluggable: a bank-state :class:`DRAMController` for
technology studies (Fig. 5) or a :class:`SimpleMemory` for bandwidth /
latency sweeps (Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController
from repro.memory.dram.timings import DRAMTimings
from repro.memory.physmem import PhysicalMemory
from repro.memory.simple import SimpleMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort

from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


class DeviceMemory(TargetPort):
    """Device memory with its controller front-end.

    Parameters
    ----------
    range_:
        Physical window of the device memory in the system map.
    timings:
        DRAM preset for a bank-state model; mutually exclusive with
        ``simple_latency``/``simple_bandwidth``.
    ctrl_latency:
        Fixed controller traversal cost added to every access.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        range_: AddrRange,
        timings: Optional[DRAMTimings] = None,
        simple_latency: int = ns(40),
        simple_bandwidth: int = 64 * 10**9,
        ctrl_latency: int = ns(15),
        backing: Optional[PhysicalMemory] = None,
    ) -> None:
        super().__init__(sim, name)
        self.range = range_
        self.ctrl_latency = ctrl_latency
        if timings is not None:
            self.memory: TargetPort = DRAMController(
                sim, f"{name}.dram", timings, range_, backing
            )
        else:
            self.memory = SimpleMemory(
                sim,
                f"{name}.mem",
                range_,
                simple_latency,
                simple_bandwidth,
                backing,
            )
        self._accesses = self.stats.scalar("accesses", "controller accesses")

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self._accesses.inc()
        # Direct sim.schedule: this adapter forwards every accelerator
        # access in DevMem mode, so the SimObject shorthand hop matters.
        memory_send = self.memory.send
        self.sim.schedule(
            self.ctrl_latency,
            lambda: memory_send(txn, on_complete),
            name=self.name,
        )
