"""Local memory buffer (scratchpad) inside the accelerator wrapper.

Holds the operand panels currently being streamed into the systolic array
plus the prefetched next set (double buffering).  The model tracks
capacity -- the controller sizes its prefetch window against it -- and
provides scratchpad-speed access timing for components that read through
it (the wrapper's MMIO window exposes the buffer for debugging, and DevMem
mode stages through it).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns, serialization_ticks


class BufferFullError(Exception):
    """Raised when an allocation exceeds the scratchpad capacity."""


class LocalBuffer(TargetPort):
    """Capacity-tracked scratchpad with SRAM-class access timing.

    Allocation is tracked by byte count per tag (placement within the SRAM
    has no timing consequence); the controller uses the capacity check to
    size its prefetch window.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: int = 512 * 1024,
        latency: int = ns(2),
        bandwidth: int = 64 * 10**9,
    ) -> None:
        super().__init__(sim, name)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.latency = latency
        self.bandwidth = bandwidth
        self._allocations: Dict[str, int] = {}
        self._in_use = 0
        self._port_free_at = 0

        self._reads = self.stats.scalar("reads", "read accesses")
        self._writes = self.stats.scalar("writes", "write accesses")
        self._bytes = self.stats.scalar("bytes", "bytes transferred")
        self._high_water = self.stats.scalar("high_water", "peak allocation")

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, tag: str, size: int) -> None:
        """Reserve ``size`` bytes under ``tag``.

        Raises :class:`BufferFullError` when the scratchpad cannot hold the
        request; callers treat that as backpressure and retry after a free.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if tag in self._allocations:
            raise ValueError(f"tag {tag!r} already allocated")
        if self._in_use + size > self.capacity:
            raise BufferFullError(
                f"{self.name}: {size} bytes requested, "
                f"{self.capacity - self._in_use} free of {self.capacity}"
            )
        self._allocations[tag] = size
        self._in_use += size
        self._high_water.set(max(self._high_water.value, self._in_use))

    def free(self, tag: str) -> None:
        """Release the bytes held under ``tag`` (no-op if absent)."""
        size = self._allocations.pop(tag, None)
        if size is not None:
            self._in_use -= size

    def reset(self) -> None:
        """Drop every allocation (job boundary)."""
        self._allocations.clear()
        self._in_use = 0

    def reset_state(self) -> None:
        super().reset_state()
        self.reset()
        self._port_free_at = 0

    def holds(self, tag: str) -> bool:
        return tag in self._allocations

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._in_use

    # ------------------------------------------------------------------
    # TargetPort interface (SRAM timing)
    # ------------------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        if txn.is_read:
            self._reads.inc()
        else:
            self._writes.inc()
        self._bytes.inc(txn.size)
        serialize = serialization_ticks(txn.size, self.bandwidth)
        start = max(self.now, self._port_free_at)
        self._port_free_at = start + serialize
        self.schedule_at(start + serialize + self.latency, lambda: on_complete(txn))
