"""The MatrixFlow-style systolic-array accelerator and its wrapper.

Mirrors the paper's accelerator stack (Fig. 1, Section III-B):

* :mod:`~repro.accel.systolic` -- the 16x16 multiply-accumulate systolic
  array: cycle-level timing plus a numpy functional model (the RTL /
  Verilator child process of the paper is replaced by this parametric
  model; Fig. 2 sweeps its compute time directly),
* :mod:`~repro.accel.local_buffer` -- the Local Mem Buffer scratchpad,
* :mod:`~repro.accel.devmem` -- the device memory (DevMem) controller,
* :mod:`~repro.accel.controller` -- the accelerator controller: tiling,
  double-buffered DMA prefetch, compute/transfer overlap,
* :mod:`~repro.accel.wrapper` -- the Accelerator Wrapper: PCIe function
  (BARs), MMIO register file, DMA block and controller in one unit,
* :mod:`~repro.accel.driver` -- the kernel-driver model: config-space
  probe, BAR mapping, buffer pinning (SMMU page-table setup) and job
  launch via doorbell.
"""

from repro.accel.systolic import SystolicArray, SystolicParams
from repro.accel.local_buffer import LocalBuffer
from repro.accel.devmem import DeviceMemory
from repro.accel.controller import AcceleratorController, GemmJob
from repro.accel.wrapper import AcceleratorWrapper
from repro.accel.driver import AccelDriver

__all__ = [
    "SystolicArray",
    "SystolicParams",
    "LocalBuffer",
    "DeviceMemory",
    "AcceleratorController",
    "GemmJob",
    "AcceleratorWrapper",
    "AccelDriver",
]
