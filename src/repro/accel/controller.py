"""Accelerator controller: tiling, prefetch, compute/transfer overlap.

Implements the MatrixFlow dataflow the paper's Table IV implies: each
16x16 output tile streams its full A row-panel and B column-panel from
memory (no cross-tile panel reuse -- the uTLB lookup counts in the paper
equal the streamed line count), computes on the systolic array, and writes
the tile back.  Operands use the MatrixFlow packed layout: panels are
stored contiguously, so each panel is a single DMA descriptor.

The controller double-buffers: while tile *t* computes, panels for tiles
*t+1..t+depth* prefetch, bounded by the local-buffer capacity.  An
optional ``reuse_a_panels`` flag keeps the current A panel resident across
a row of output tiles -- an ablation knob for the design-choice study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.accel.local_buffer import BufferFullError, LocalBuffer
from repro.accel.systolic import SystolicArray
from repro.dma import DMADescriptor, DMADirection, DMAEngine
from repro.sim.eventq import Simulator
from repro.sim.simobject import SimObject

#: Called with (job, result_stats_dict) when a job retires.
JobDoneFn = Callable[["GemmJob", Dict[str, float]], None]


@dataclass
class GemmJob:
    """One C = A x B launch.

    Addresses are accelerator-visible (virtual when an SMMU is in the
    path).  Operands are stored in the MatrixFlow packed layout:

    * A: row-panel-major -- panel ``i`` (rows ``16i..16i+15``) contiguous
      at ``a_addr + i * 16 * k * element_bytes``,
    * B: column-panel-major -- panel ``j`` contiguous at
      ``b_addr + j * k * 16 * element_bytes``,
    * C: tile-major -- tile (i, j) contiguous at
      ``c_addr + (i * tiles_n + j) * 256 * element_bytes``.
    """

    m: int
    k: int
    n: int
    a_addr: int
    b_addr: int
    c_addr: int
    element_bytes: int = 4
    packet_size: Optional[int] = None
    #: Optional functional operands; results land in :attr:`c_result`.
    a_data: Optional[np.ndarray] = None
    b_data: Optional[np.ndarray] = None
    c_result: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive: {self.m}x{self.k}x{self.n}")
        if self.a_data is not None and self.a_data.shape != (self.m, self.k):
            raise ValueError(
                f"A shape {self.a_data.shape} != ({self.m}, {self.k})"
            )
        if self.b_data is not None and self.b_data.shape != (self.k, self.n):
            raise ValueError(
                f"B shape {self.b_data.shape} != ({self.k}, {self.n})"
            )

    @property
    def functional(self) -> bool:
        return self.a_data is not None and self.b_data is not None

    def traffic_bytes(self, tile: int = 16, reuse_a: bool = False) -> int:
        """Expected DMA read volume for the streaming dataflow."""
        tiles_m = -(-self.m // tile)
        tiles_n = -(-self.n // tile)
        a_panel = tile * self.k * self.element_bytes
        b_panel = self.k * tile * self.element_bytes
        a_fetches = tiles_m if reuse_a else tiles_m * tiles_n
        return a_fetches * a_panel + tiles_m * tiles_n * b_panel


class AcceleratorController(SimObject):
    """Sequences DMA and systolic-array work for GEMM jobs."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        systolic: SystolicArray,
        local_buffer: LocalBuffer,
        dma: DMAEngine,
        prefetch_depth: int = 2,
        reuse_a_panels: bool = False,
    ) -> None:
        super().__init__(sim, name)
        if prefetch_depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {prefetch_depth}")
        self.systolic = systolic
        self.local_buffer = local_buffer
        self.dma = dma
        self.prefetch_depth = prefetch_depth
        self.reuse_a_panels = reuse_a_panels
        self._busy = False

        self._jobs = self.stats.scalar("jobs", "GEMM jobs completed")
        self._tiles = self.stats.scalar("tiles", "output tiles produced")
        self._stall_ticks = self.stats.scalar(
            "stall_ticks", "array idle time waiting for operands"
        )

    def reset_state(self) -> None:
        super().reset_state()
        self._busy = False

    # ------------------------------------------------------------------
    # Job launch
    # ------------------------------------------------------------------
    def launch(self, job: GemmJob, on_done: JobDoneFn) -> None:
        """Run ``job``; fire ``on_done(job, stats)`` when it fully retires."""
        if self._busy:
            raise RuntimeError(f"{self.name}: a job is already running")
        self._busy = True

        tile = self.systolic.params.rows
        tiles_m = -(-job.m // tile)
        tiles_n = -(-job.n // tile)
        ntiles = tiles_m * tiles_n
        eb = job.element_bytes
        a_panel_bytes = tile * job.k * eb
        b_panel_bytes = job.k * tile * eb
        c_tile_bytes = tile * tile * eb

        if job.functional:
            job.c_result = np.zeros((job.m, job.n), dtype=np.int32)

        state = {
            "next_fetch": 0,
            "next_compute": 0,
            "ready": set(),
            "writebacks": 0,
            "fetched_a_row": -1,
            "start": self.now,
            "compute_done": 0,
            "last_data_wait": self.now,
        }

        def tile_coords(index: int) -> tuple:
            return index // tiles_n, index % tiles_n

        def issue_prefetches() -> None:
            while (
                state["next_fetch"] < ntiles
                and state["next_fetch"] - state["next_compute"] < self.prefetch_depth
            ):
                index = state["next_fetch"]
                i, j = tile_coords(index)
                fetch_a = not (self.reuse_a_panels and i == state["fetched_a_row"])
                need = b_panel_bytes + (a_panel_bytes if fetch_a else 0)
                try:
                    self.local_buffer.alloc(f"tile{index}", need)
                except BufferFullError:
                    return  # retry after a tile frees its panels
                state["next_fetch"] = index + 1
                if fetch_a:
                    state["fetched_a_row"] = i
                descriptors: List[DMADescriptor] = []
                if fetch_a:
                    descriptors.append(
                        DMADescriptor(
                            job.a_addr + i * a_panel_bytes,
                            a_panel_bytes,
                            DMADirection.HOST_TO_DEVICE,
                            stream="A",
                            packet_size=job.packet_size,
                        )
                    )
                descriptors.append(
                    DMADescriptor(
                        job.b_addr + j * b_panel_bytes,
                        b_panel_bytes,
                        DMADirection.HOST_TO_DEVICE,
                        stream="B",
                        packet_size=job.packet_size,
                    )
                )
                self.dma.submit_list(
                    descriptors, lambda idx=index: data_arrived(idx)
                )

        def data_arrived(index: int) -> None:
            state["ready"].add(index)
            start_computes()

        def start_computes() -> None:
            while state["next_compute"] < ntiles and state[
                "next_compute"
            ] in state["ready"]:
                index = state["next_compute"]
                state["next_compute"] = index + 1
                self.systolic.compute_tile(
                    job.k, lambda idx=index: tile_computed(idx)
                )

        def tile_computed(index: int) -> None:
            i, j = tile_coords(index)
            self.local_buffer.free(f"tile{index}")
            self._tiles.inc()
            if job.functional:
                self._compute_tile_result(job, i, j, tile)
            state["writebacks"] += 1
            writeback = DMADescriptor(
                job.c_addr + index * c_tile_bytes,
                c_tile_bytes,
                DMADirection.DEVICE_TO_HOST,
                stream="C",
                packet_size=job.packet_size,
            )
            self.dma.submit(writeback, lambda _d, idx=index: writeback_done(idx))
            state["compute_done"] += 1
            issue_prefetches()

        def writeback_done(_index: int) -> None:
            state["writebacks"] -= 1
            maybe_finish()

        def maybe_finish() -> None:
            if state["compute_done"] == ntiles and state["writebacks"] == 0:
                self._busy = False
                self._jobs.inc()
                self._stall_ticks.set(self.systolic.stats["idle_ticks"].value)
                stats = {
                    "ticks": self.now - state["start"],
                    "tiles": ntiles,
                    "bytes_read": job.traffic_bytes(
                        tile, self.reuse_a_panels
                    ),
                    "bytes_written": ntiles * c_tile_bytes,
                    "compute_busy_ticks": self.systolic.stats["busy_ticks"].value,
                    "stall_ticks": self.systolic.stats["idle_ticks"].value,
                }
                on_done(job, stats)

        issue_prefetches()

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    @staticmethod
    def _compute_tile_result(job: GemmJob, i: int, j: int, tile: int) -> None:
        r0, r1 = i * tile, min((i + 1) * tile, job.m)
        c0, c1 = j * tile, min((j + 1) * tile, job.n)
        a_panel = job.a_data[r0:r1, :]
        b_panel = job.b_data[:, c0:c1]
        job.c_result[r0:r1, c0:c1] = SystolicArray.multiply(a_panel, b_panel)

    @property
    def busy(self) -> bool:
        return self._busy
