"""Kernel-driver model for the AcceSys accelerator.

Follows the life cycle of a real PCIe accelerator driver:

1. **probe** -- find the device in config space by vendor/device ID and
   record its BAR windows (the system has already enumerated),
2. **pin** -- allocate physically contiguous host buffers and install
   their virtual-to-physical mappings in the SMMU page table, so the
   device can use virtual addresses,
3. **launch** -- program the job registers and ring the doorbell through
   real MMIO transactions over the PCIe down channel (launch latency is
   simulated, not assumed),
4. **complete** -- receive the MSI-style completion interrupt.

This is the "Kernel Driver Support" row of the paper's Table I.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

import numpy as np

from repro.accel.controller import GemmJob
from repro.faults.spec import DeviceLostError
from repro.accel.wrapper import (
    ACCESYS_DEVICE_ID,
    ACCESYS_VENDOR_ID,
    REG_A_ADDR,
    REG_B_ADDR,
    REG_C_ADDR,
    REG_DOORBELL,
    REG_ELEMENT_BYTES,
    REG_K,
    REG_M,
    REG_N,
    REG_PACKET_SIZE,
    AcceleratorWrapper,
)
from repro.interconnect.pcie.config_space import ConfigSpace
from repro.interconnect.pcie.fabric import PCIeFabric
from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction
from repro.smmu.page_table import PAGE_SIZE, PageTable


class BumpAllocator:
    """Page-granular bump allocator over a physical range."""

    def __init__(self, range_: AddrRange) -> None:
        self.range = range_
        self._cursor = range_.start

    def reset(self) -> None:
        """Release everything (the arena survives; addresses are reused)."""
        self._cursor = self.range.start

    def alloc(self, size: int, align: int = PAGE_SIZE) -> int:
        """Allocate ``size`` bytes aligned to ``align``."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base = -(-self._cursor // align) * align
        if base + size > self.range.end:
            raise MemoryError(
                f"allocator exhausted: {size} bytes requested in {self.range}"
            )
        self._cursor = base + size
        return base

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.range.start


class AccelDriver(SimObject):
    """Host-side driver for one accelerator function."""

    #: Device virtual address where pinned buffers start (when SMMU used).
    IOVA_BASE = 0x1000_0000
    #: Per-device IOVA window (cluster members get disjoint spaces).
    IOVA_WINDOW = 0x4000_0000

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config_space: ConfigSpace,
        fabric: PCIeFabric,
        wrapper: AcceleratorWrapper,
        host_allocator: BumpAllocator,
        page_table: Optional[PageTable] = None,
        device_index: int = 0,
    ) -> None:
        super().__init__(sim, name)
        self.config_space = config_space
        self.fabric = fabric
        self.wrapper = wrapper
        self.host_allocator = host_allocator
        self.page_table = page_table
        self.device_index = device_index
        self.slot: Optional[int] = None
        #: Endpoint stall/crash schedule
        #: (:class:`repro.faults.injector.EndpointFaultState`); attached
        #: by the system's fault model, ``None`` on fault-free runs.
        #: Like the probe binding it is topology, so it survives reset.
        self.fault_state = None
        self._iova_cursor = self.IOVA_BASE + device_index * self.IOVA_WINDOW
        self._buffers: Dict[str, dict] = {}
        self._completion_cb = None
        self._mmio_writes = self.stats.scalar("mmio_writes", "register writes issued")
        self._launches = self.stats.scalar("launches", "jobs launched")

    def reset_state(self) -> None:
        # The probe binding (slot, MSI wiring) is topology and survives;
        # buffer pins and IOVA assignments are per-run state.
        super().reset_state()
        self._iova_cursor = self.IOVA_BASE + self.device_index * self.IOVA_WINDOW
        self._buffers.clear()
        self._completion_cb = None

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """Bind to the ``device_index``-th matching function."""
        slots = self.config_space.find_all(ACCESYS_VENDOR_ID, ACCESYS_DEVICE_ID)
        if self.device_index >= len(slots):
            return False
        slot = slots[self.device_index]
        function = self.config_space.function(slot)
        if not function.memory_enabled:
            return False
        self.slot = slot
        self.wrapper.set_msi_handler(self._on_msi)
        return True

    @property
    def device_lost(self) -> bool:
        """Whether this driver's device has crashed off the bus."""
        return self.fault_state is not None and self.fault_state.crashed(
            self.now
        )

    @property
    def bar0(self) -> AddrRange:
        if self.slot is None:
            raise RuntimeError("driver not probed")
        return self.config_space.function(self.slot).bars[0].range

    # ------------------------------------------------------------------
    # Buffer pinning
    # ------------------------------------------------------------------
    def pin_buffer(self, tag: str, size: int) -> int:
        """Allocate a pinned, contiguous host buffer.

        Returns the device-visible address: an IOVA when an SMMU is
        present (mapping installed in the page table), the physical
        address otherwise.
        """
        paddr = self.host_allocator.alloc(size)
        if self.page_table is None:
            device_addr = paddr
        else:
            pages = -(-size // PAGE_SIZE)
            device_addr = self._iova_cursor
            self._iova_cursor += pages * PAGE_SIZE
            self.page_table.map_range(device_addr, paddr, size)
        self._buffers[tag] = {
            "paddr": paddr,
            "device_addr": device_addr,
            "size": size,
        }
        return device_addr

    def buffer_paddr(self, tag: str) -> int:
        return self._buffers[tag]["paddr"]

    def buffer_device_addr(self, tag: str) -> int:
        return self._buffers[tag]["device_addr"]

    # ------------------------------------------------------------------
    # Demand paging
    # ------------------------------------------------------------------
    def enable_demand_paging(self, smmu, fault_latency: int = 3_000_000) -> None:
        """Let the SMMU fault in unmapped pages instead of requiring
        every buffer to be pinned up front.

        On a translation fault the driver allocates a backing page,
        installs the mapping after ``fault_latency`` ticks (the OS fault
        path; default 3 us) and resumes the walk -- the usual ATS/PRI
        flow.
        """
        if self.page_table is None:
            raise RuntimeError("demand paging needs an SMMU page table")

        def handle_fault(vpn: int, resolve) -> None:
            def install() -> None:
                paddr = self.host_allocator.alloc(4096)
                self.page_table.map_page(vpn << 12, paddr)
                resolve()

            self.schedule(fault_latency, install)

        smmu.set_fault_handler(handle_fault)

    # ------------------------------------------------------------------
    # Software-managed coherency (DM access method)
    # ------------------------------------------------------------------
    def flush_buffer(self, tag: str, caches) -> int:
        """Flush a pinned buffer out of the given caches.

        The DM access method bypasses the cache hierarchy, so the paper
        notes it "requires software management of data coherency": before
        handing a buffer to the device the driver writes back and
        invalidates any cached lines.  Returns the number of lines
        dropped across all caches.
        """
        entry = self._buffers[tag]
        dropped = 0
        for cache in caches:
            dropped += cache.invalidate_range(entry["paddr"], entry["size"])
        return dropped

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def launch_gemm(
        self,
        m: int,
        k: int,
        n: int,
        a_addr: int,
        b_addr: int,
        c_addr: int,
        on_complete: Callable[[GemmJob, Dict], None],
        packet_size: Optional[int] = None,
        element_bytes: int = 4,
        a_data: Optional[np.ndarray] = None,
        b_data: Optional[np.ndarray] = None,
    ) -> None:
        """Program the job registers over MMIO and ring the doorbell.

        Raises :class:`~repro.faults.spec.DeviceLostError` when the
        device has crashed off the bus -- the MMIO writes would vanish
        into the void and the completion interrupt would never arrive,
        so refusing loudly is the graceful-degradation path.
        """
        if self.slot is None:
            raise RuntimeError("driver not probed; call probe() first")
        if self.device_lost:
            raise DeviceLostError(
                f"{self.name}: accelerator {self.device_index} is lost "
                f"(crashed at tick {self.fault_state.fault.crash_at}); "
                f"refusing to launch"
            )
        self._launches.inc()
        self._completion_cb = on_complete
        if a_data is not None and b_data is not None:
            self.wrapper.set_functional_operands(a_data, b_data)

        bar0_base = self.bar0.start
        writes = [
            (REG_M, self._u32(m)),
            (REG_K, self._u32(k)),
            (REG_N, self._u32(n)),
            (REG_A_ADDR, self._u64(a_addr)),
            (REG_B_ADDR, self._u64(b_addr)),
            (REG_C_ADDR, self._u64(c_addr)),
            (REG_PACKET_SIZE, self._u32(packet_size or 0)),
            (REG_ELEMENT_BYTES, self._u32(element_bytes)),
            (REG_DOORBELL, self._u32(1)),  # must be last
        ]

        def issue(index: int) -> None:
            if index >= len(writes):
                return
            offset, payload = writes[index]
            txn = Transaction.write(
                bar0_base + offset, len(payload), payload, source="cpu.driver"
            )
            self._mmio_writes.inc()
            self.fabric.host_access(
                txn, self.wrapper.regs, lambda _t: issue(index + 1)
            )

        issue(0)

    def _on_msi(self, job: GemmJob, stats: Dict) -> None:
        callback = self._completion_cb
        self._completion_cb = None
        if callback is not None:
            callback(job, stats)

    @staticmethod
    def _u32(value: int) -> np.ndarray:
        return np.frombuffer(struct.pack("<I", value), dtype=np.uint8).copy()

    @staticmethod
    def _u64(value: int) -> np.ndarray:
        return np.frombuffer(struct.pack("<Q", value), dtype=np.uint8).copy()
