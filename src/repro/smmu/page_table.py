"""Radix page table (ARM LPAE-style: 4 levels, 9 bits per level, 4 KiB).

The table is held both *logically* (nested dicts for O(1) translation) and
*spatially*: every table node is assigned a physical page so the walker can
issue real descriptor fetches with meaningful addresses.  Mappings are
installed by the driver model when it pins DMA buffers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: 4 KiB pages -> 12 offset bits; 9 translation bits per level; 4 levels.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
BITS_PER_LEVEL = 9
LEVELS = 4
ENTRIES_PER_NODE = 1 << BITS_PER_LEVEL
#: Descriptor size in bytes (one 64-bit PTE).
PTE_BYTES = 8


class PageFault(Exception):
    """Raised when translating an unmapped virtual address."""

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"page fault at vaddr {vaddr:#x}")
        self.vaddr = vaddr


class _Node:
    """One table node: children (interior) or pfns (leaf), plus its page."""

    __slots__ = ("phys_addr", "entries")

    def __init__(self, phys_addr: int) -> None:
        self.phys_addr = phys_addr
        self.entries: Dict[int, object] = {}


class PageTable:
    """A 4-level radix table rooted at a physical page.

    Parameters
    ----------
    table_base:
        Physical address where table nodes are allocated (grows upward,
        one 4 KiB page per node).
    """

    def __init__(self, table_base: int) -> None:
        self.table_base = table_base
        self._alloc_cursor = table_base
        self.root = self._new_node()
        self.mapped_pages = 0

    def reset(self) -> None:
        """Drop every mapping and node, back to a freshly built table."""
        self._alloc_cursor = self.table_base
        self.root = self._new_node()
        self.mapped_pages = 0

    def _new_node(self) -> _Node:
        node = _Node(self._alloc_cursor)
        self._alloc_cursor += PAGE_SIZE
        return node

    # ------------------------------------------------------------------
    # Index math
    # ------------------------------------------------------------------
    @staticmethod
    def vpn_of(vaddr: int) -> int:
        return vaddr >> PAGE_SHIFT

    @staticmethod
    def level_index(vpn: int, level: int) -> int:
        """Index into the node at ``level`` (0 = root) for this vpn."""
        shift = BITS_PER_LEVEL * (LEVELS - 1 - level)
        return (vpn >> shift) & (ENTRIES_PER_NODE - 1)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_page(self, vaddr: int, paddr: int) -> None:
        """Install one 4 KiB mapping (addresses must be page-aligned)."""
        if vaddr % PAGE_SIZE or paddr % PAGE_SIZE:
            raise ValueError(
                f"mapping must be page aligned: va={vaddr:#x} pa={paddr:#x}"
            )
        vpn = self.vpn_of(vaddr)
        node = self.root
        for level in range(LEVELS - 1):
            index = self.level_index(vpn, level)
            child = node.entries.get(index)
            if child is None:
                child = self._new_node()
                node.entries[index] = child
            node = child
        leaf_index = self.level_index(vpn, LEVELS - 1)
        if leaf_index not in node.entries:
            self.mapped_pages += 1
        node.entries[leaf_index] = paddr >> PAGE_SHIFT

    def map_range(self, vaddr: int, paddr: int, size: int) -> int:
        """Map a contiguous range; returns the number of pages mapped.

        The physical range is contiguous (a pinned DMA allocation), so a
        multi-page transaction translated at its head stays contiguous.
        """
        if size <= 0:
            raise ValueError(f"mapping size must be positive, got {size}")
        first = vaddr // PAGE_SIZE * PAGE_SIZE
        last = (vaddr + size - 1) // PAGE_SIZE * PAGE_SIZE
        pages = 0
        offset = paddr - vaddr
        va = first
        while va <= last:
            self.map_page(va, va + offset)
            va += PAGE_SIZE
            pages += 1
        return pages

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> int:
        """Return the physical address for ``vaddr`` (functional)."""
        vpn = self.vpn_of(vaddr)
        node = self.root
        for level in range(LEVELS - 1):
            child = node.entries.get(self.level_index(vpn, level))
            if child is None:
                raise PageFault(vaddr)
            node = child
        pfn = node.entries.get(self.level_index(vpn, LEVELS - 1))
        if pfn is None:
            raise PageFault(vaddr)
        return (pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def walk_path(self, vpn: int) -> List[Tuple[int, int]]:
        """Descriptor fetch addresses for a walk: [(level, pte_addr), ...].

        Raises :class:`PageFault` if the vpn is unmapped.
        """
        path: List[Tuple[int, int]] = []
        node: Optional[_Node] = self.root
        for level in range(LEVELS):
            index = self.level_index(vpn, level)
            path.append((level, node.phys_addr + index * PTE_BYTES))
            entry = node.entries.get(index)
            if entry is None:
                raise PageFault(vpn << PAGE_SHIFT)
            if level < LEVELS - 1:
                node = entry
        return path

    def is_mapped(self, vaddr: int) -> bool:
        try:
            self.translate(vaddr)
            return True
        except PageFault:
            return False

    @property
    def table_bytes(self) -> int:
        """Physical memory consumed by table nodes."""
        return self._alloc_cursor - self.root.phys_addr
