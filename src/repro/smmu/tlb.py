"""Set-associative translation lookaside buffer.

Used twice in the SMMU: a small fully-associative uTLB close to the
accelerator stream and a large set-associative main TLB behind it.  Entries
map virtual page numbers to physical frame numbers with LRU replacement
within a set.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional


class TLB:
    """VPN -> PFN cache with per-set LRU.

    Parameters
    ----------
    entries:
        Total capacity.
    assoc:
        Ways per set; ``entries`` for fully associative (the default turns
        any ``assoc >= entries`` into fully associative).
    """

    def __init__(self, name: str, entries: int, assoc: Optional[int] = None) -> None:
        if entries <= 0:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        if assoc is None or assoc >= entries:
            assoc = entries
        if entries % assoc:
            raise ValueError(f"entries {entries} not divisible by assoc {assoc}")
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

        self.lookups = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _set_for(self, vpn: int) -> OrderedDict:
        return self._sets[vpn % self.num_sets]

    def lookup(self, vpn: int, count: int = 1) -> Optional[int]:
        """Look up ``vpn``; ``count`` accounts for batched per-line lookups.

        Returns the pfn on hit (with LRU update) or None.
        """
        self.lookups += count
        entry_set = self._set_for(vpn)
        pfn = entry_set.get(vpn)
        if pfn is None:
            self.misses += count
            return None
        self.hits += count
        entry_set.move_to_end(vpn)
        return pfn

    def probe(self, vpn: int) -> bool:
        """Presence check without stats or LRU update."""
        return vpn in self._set_for(vpn)

    def insert(self, vpn: int, pfn: int) -> Optional[int]:
        """Insert a mapping; returns an evicted vpn or None."""
        entry_set = self._set_for(vpn)
        victim = None
        if vpn not in entry_set and len(entry_set) >= self.assoc:
            victim, _ = entry_set.popitem(last=False)
        entry_set[vpn] = pfn
        entry_set.move_to_end(vpn)
        return victim

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, vpn: int) -> bool:
        entry_set = self._set_for(vpn)
        return entry_set.pop(vpn, None) is not None

    def invalidate_all(self) -> None:
        for entry_set in self._sets:
            entry_set.clear()

    def reset(self) -> None:
        """Drop all entries and zero the access counters."""
        self.invalidate_all()
        self.lookups = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stat_dict(self) -> Dict[str, float]:
        return {
            f"{self.name}.lookups": self.lookups,
            f"{self.name}.hits": self.hits,
            f"{self.name}.misses": self.misses,
            f"{self.name}.hit_rate": self.hit_rate,
        }
