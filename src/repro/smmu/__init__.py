"""System MMU: accelerator-side virtual-to-physical translation.

Models the SMMU the paper places between the PCIe hierarchy and the MemBus
(Fig. 1): a small per-stream uTLB backed by a larger main TLB, with misses
serviced by a hardware page-table walker that issues real memory
transactions for descriptor fetches (so translation cost reflects memory
system load).  The Table IV metrics -- translation counts, mean translation
time, page-table-walk counts/times, uTLB lookups and misses, and the
translation overhead fraction -- are all recorded here.
"""

from repro.smmu.page_table import PageFault, PageTable
from repro.smmu.tlb import TLB
from repro.smmu.walker import PageTableWalker
from repro.smmu.smmu import SMMU, SMMUConfig

__all__ = [
    "PageTable",
    "PageFault",
    "TLB",
    "PageTableWalker",
    "SMMU",
    "SMMUConfig",
]
