"""The SMMU device: two-level TLB plus hardware walker.

Per-transaction behaviour mirrors an SMMU TBU/TCU pair:

* every cache line of the transaction performs a uTLB lookup (accounted
  exactly, arithmetically -- lines after the first within a page hit once
  the page is resident),
* a uTLB miss consults the main TLB (``tlb_latency`` stall),
* a main-TLB miss launches a serialized page-table walk whose descriptor
  fetches are real memory transactions,
* the transaction's physical address is the functional translation of its
  head; driver-pinned buffers are physically contiguous so multi-page
  transactions remain contiguous after translation.

Statistics map one-to-one onto the paper's Table IV: translation counts,
mean translation time (in accelerator cycles), PTW counts and mean times,
uTLB lookups/misses, and the cumulative translation stall used to compute
the overhead percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.smmu.page_table import PageTable
from repro.smmu.tlb import TLB
from repro.smmu.walker import PageTableWalker
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


@dataclass(frozen=True)
class SMMUConfig:
    """SMMU structure and timing parameters."""

    utlb_entries: int = 32
    tlb_entries: int = 4096
    tlb_assoc: int = 8
    page_size: int = 4096
    line_size: int = 64
    #: Stall for a main-TLB lookup on a uTLB miss.
    tlb_latency: int = ns(8)
    #: Accelerator clock period (for cycle-denominated Table IV stats).
    cycle_ticks: int = 1000
    walk_cache_entries: int = 64

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page size must be a power of two, got {self.page_size}")
        if self.line_size <= 0 or self.page_size % self.line_size:
            raise ValueError("line size must divide the page size")


class SMMU(SimObject):
    """Translation agent between the accelerator's DMA and host memory."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: SMMUConfig,
        page_table: PageTable,
        mem_target: TargetPort,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.page_table = page_table
        self.utlb = TLB(f"{name}.utlb", config.utlb_entries)
        self.tlb = TLB(f"{name}.tlb", config.tlb_entries, config.tlb_assoc)
        self.walker = PageTableWalker(
            sim, f"{name}.walker", page_table, mem_target, config.walk_cache_entries
        )

        #: Optional demand-paging hook: ``handler(vpn, resolve)`` maps the
        #: page (possibly after an OS-fault delay) then calls ``resolve()``.
        self._fault_handler = None
        self._translations = self.stats.scalar(
            "translations", "per-line translations performed"
        )
        self._page_faults = self.stats.scalar(
            "page_faults", "translation faults taken"
        )
        self._trans_cycles = self.stats.histogram(
            "trans_cycles", "per-line translation latency (cycles)"
        )
        self._ptw_cycles = self.stats.histogram(
            "ptw_cycles", "per-walk latency (cycles)"
        )
        self._stall_ticks = self.stats.scalar(
            "stall_ticks", "cumulative translation stall"
        )

    def reset_state(self) -> None:
        super().reset_state()
        self.utlb.reset()
        self.tlb.reset()
        self._fault_handler = None

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, txn: Transaction, on_done: CompletionFn) -> None:
        """Translate ``txn`` in place, then fire ``on_done(txn)``.

        ``txn.addr`` is interpreted as virtual; on completion ``txn.vaddr``
        holds the original address and ``txn.addr``/``txn.paddr`` the
        physical one.
        """
        cfg = self.config
        pages = self._pages_with_lines(txn)
        start_tick = self.now
        state = {"index": 0, "stall": 0}
        cycle = cfg.cycle_ticks

        def step() -> None:
            while state["index"] < len(pages):
                vpn, nlines = pages[state["index"]]
                state["index"] += 1
                pfn = self.utlb.lookup(vpn, count=1)
                if pfn is not None:
                    if nlines > 1:
                        self.utlb.lookup(vpn, count=nlines - 1)
                    self._account_lines(nlines, hit_cycles=1)
                    continue
                # uTLB miss: consult the main TLB.
                pfn = self.tlb.lookup(vpn)
                if pfn is not None:
                    state["stall"] += cfg.tlb_latency
                    self.utlb.insert(vpn, pfn)
                    if nlines > 1:
                        self.utlb.lookup(vpn, count=nlines - 1)
                    miss_cycles = 1 + cfg.tlb_latency // cycle
                    self._trans_cycles.sample(miss_cycles)
                    self._translations.inc(1)
                    self._account_lines(nlines - 1, hit_cycles=1)
                    continue
                # Main-TLB miss: fault in the page if needed, then walk.
                state["stall"] += cfg.tlb_latency
                if (
                    self._fault_handler is not None
                    and not self.page_table.is_mapped(vpn << 12)
                ):
                    self._page_faults.inc()
                    self._fault_handler(
                        vpn, lambda v=vpn, n=nlines: start_walk(v, n)
                    )
                    return
                start_walk(vpn, nlines)
                return
            finish()

        def start_walk(vpn: int, nlines: int) -> None:
            self.walker.walk(
                vpn,
                lambda w_vpn, _levels, w_ticks, n=nlines: walk_done(
                    w_vpn, w_ticks, n
                ),
            )

        def walk_done(vpn: int, walk_ticks: int, nlines: int) -> None:
            paddr = self.page_table.translate(vpn << 12)
            pfn = paddr >> 12
            self.tlb.insert(vpn, pfn)
            self.utlb.insert(vpn, pfn)
            if nlines > 1:
                self.utlb.lookup(vpn, count=nlines - 1)
            walk_cycles = walk_ticks // self.config.cycle_ticks
            self._ptw_cycles.sample(walk_cycles)
            miss_cycles = 1 + (self.config.tlb_latency // self.config.cycle_ticks)
            self._trans_cycles.sample(miss_cycles + walk_cycles)
            self._translations.inc(1)
            self._account_lines(nlines - 1, hit_cycles=1)
            step()

        def finish() -> None:
            paddr = self.page_table.translate(txn.addr)
            txn.vaddr = txn.addr
            txn.paddr = paddr
            txn.addr = paddr
            txn.is_translated = True
            total_stall = (self.now - start_tick) + state["stall"]
            self._stall_ticks.inc(total_stall)
            if state["stall"]:
                self.schedule(state["stall"], lambda: on_done(txn))
            else:
                on_done(txn)

        step()

    # ------------------------------------------------------------------
    # Demand paging
    # ------------------------------------------------------------------
    def set_fault_handler(self, handler) -> None:
        """Register a demand-paging handler.

        ``handler(vpn, resolve)`` must install a mapping for ``vpn`` and
        then call ``resolve()``; translation resumes with a walk.  Without
        a handler, unmapped accesses raise :class:`PageFault`.
        """
        self._fault_handler = handler

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _pages_with_lines(self, txn: Transaction) -> List[Tuple[int, int]]:
        """(vpn, lines-in-page) pairs covering the transaction, in order."""
        cfg = self.config
        page = cfg.page_size
        line = cfg.line_size
        first_line = txn.addr // line
        last_line = (txn.end_addr - 1) // line
        pages: List[Tuple[int, int]] = []
        current = first_line
        while current <= last_line:
            vpn = (current * line) // page
            page_last_line = ((vpn + 1) * page - 1) // line
            end = min(last_line, page_last_line)
            pages.append((vpn, end - current + 1))
            current = end + 1
        return pages

    def _account_lines(self, nlines: int, hit_cycles: int) -> None:
        if nlines <= 0:
            return
        self._translations.inc(nlines)
        self._trans_cycles.sample(hit_cycles, repeat=nlines)

    # ------------------------------------------------------------------
    # Table IV report
    # ------------------------------------------------------------------
    def table4_metrics(self, total_runtime_ticks: int) -> dict:
        """The Table IV row for this run."""
        return {
            "memory_footprint_pages": self.page_table.mapped_pages,
            "translation_times": int(self._translations.value),
            "trans_mean_cycles": self._trans_cycles.mean,
            "ptw_times": self.walker.stats["walks"].value,
            "ptw_mean_cycles": self._ptw_cycles.mean,
            "utlb_lookup_times": self.utlb.lookups,
            "utlb_miss_times": self.utlb.misses,
            "trans_overhead_pct": (
                100.0 * self._stall_ticks.value / total_runtime_ticks
                if total_runtime_ticks
                else 0.0
            ),
        }
