"""Hardware page-table walker.

Walks the radix table level by level, fetching one 8-byte descriptor per
level through a real memory target -- so walk latency reflects the actual
state of the memory system.  A *walk cache* holds recently used interior
nodes (levels 0..2), letting most walks skip straight to the leaf fetch,
which is why mean PTW times sit far below four full memory round trips
until the footprint outgrows the caches (the Table IV cliff).

Walks are serialized through the walker (one walk in flight), as in real
SMMU implementations with a small number of walk slots.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Tuple

from repro.smmu.page_table import LEVELS, PTE_BYTES, PageTable
from repro.sim.eventq import Simulator
from repro.sim.ports import TargetPort
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction

#: Callback type: (vpn, levels_fetched, walk_ticks).
WalkDoneFn = Callable[[int, int, int], None]


class PageTableWalker(SimObject):
    """Serialized table walker with an interior-node walk cache."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        page_table: PageTable,
        mem_target: TargetPort,
        walk_cache_entries: int = 64,
    ) -> None:
        super().__init__(sim, name)
        self.page_table = page_table
        self.mem_target = mem_target
        self.walk_cache_entries = walk_cache_entries
        #: node phys addr -> True, LRU over interior nodes.
        self._walk_cache: OrderedDict = OrderedDict()
        self._busy = False
        self._pending: Deque[Tuple[int, WalkDoneFn]] = deque()

        self._walks = self.stats.scalar("walks", "page table walks")
        self._fetches = self.stats.scalar("descriptor_fetches", "PTE memory reads")
        self._walk_cache_hits = self.stats.scalar(
            "walk_cache_hits", "interior levels skipped"
        )
        self._walk_ticks = self.stats.histogram("walk_ticks", "per-walk latency")

    def reset_state(self) -> None:
        super().reset_state()
        self._walk_cache.clear()
        self._busy = False
        self._pending.clear()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def walk(self, vpn: int, on_done: WalkDoneFn) -> None:
        """Resolve ``vpn``; fire ``on_done(vpn, levels_fetched, ticks)``."""
        self._pending.append((vpn, on_done))
        if not self._busy:
            self._start_next()

    # ------------------------------------------------------------------
    # Walk machinery
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        vpn, on_done = self._pending.popleft()
        self._walks.inc()
        path = self.page_table.walk_path(vpn)

        # Skip interior levels whose node is in the walk cache.  The walk
        # resumes at the first uncached level; the leaf PTE fetch always
        # goes to memory (it is what the TLBs exist to cache).
        first_fetch = 0
        for level, pte_addr in path[:-1]:
            node_page = pte_addr - (pte_addr % 4096)
            if node_page in self._walk_cache:
                self._walk_cache.move_to_end(node_page)
                self._walk_cache_hits.inc()
                first_fetch = level + 1
            else:
                break

        to_fetch = path[first_fetch:]
        start_tick = self.now
        state = {"index": 0}

        def fetch_next() -> None:
            if state["index"] >= len(to_fetch):
                self._finish(vpn, len(to_fetch), start_tick, on_done)
                return
            level, pte_addr = to_fetch[state["index"]]
            state["index"] += 1
            self._fetches.inc()
            if level < LEVELS - 1:
                self._cache_node(pte_addr - (pte_addr % 4096))
            txn = Transaction.read(pte_addr, PTE_BYTES, source=f"{self.name}.ptw")
            self.mem_target.send(txn, lambda _t: fetch_next())

        fetch_next()

    def _cache_node(self, node_page: int) -> None:
        if node_page in self._walk_cache:
            self._walk_cache.move_to_end(node_page)
            return
        if len(self._walk_cache) >= self.walk_cache_entries:
            self._walk_cache.popitem(last=False)
        self._walk_cache[node_page] = True

    def _finish(
        self, vpn: int, levels_fetched: int, start_tick: int, on_done: WalkDoneFn
    ) -> None:
        ticks = self.now - start_tick
        self._walk_ticks.sample(ticks)
        on_done(vpn, levels_fetched, ticks)
        self._start_next()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def mean_walk_ticks(self) -> float:
        return self._walk_ticks.mean
