"""In-order timing CPU with a bounded memory-level-parallelism window.

The CPU executes *kernels*: streaming loops that read input tensors,
spend compute cycles per element, and write outputs.  Memory traffic is
issued as segment transactions through the CPU's cache port with at most
``mlp_window`` in flight, and compute is modelled as a cycle budget that
overlaps memory time (the slower of the two dominates, as in a balanced
in-order core with a stream prefetcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.sim.eventq import Simulator
from repro.sim.ports import TargetPort
from repro.sim.simobject import ClockedObject
from repro.sim.transaction import MemCmd, Transaction


@dataclass(frozen=True)
class StreamRef:
    """One tensor the kernel touches: (address, bytes, read-or-write)."""

    addr: int
    size: int
    is_read: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"stream size must be positive, got {self.size}")


class TimingCPU(ClockedObject):
    """Single in-order core issuing kernel memory streams."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mem_port: TargetPort,
        freq_hz: float = 1e9,
        mlp_window: int = 8,
        segment_bytes: int = 1024,
    ) -> None:
        super().__init__(sim, name, freq_hz)
        if mlp_window <= 0:
            raise ValueError(f"MLP window must be positive, got {mlp_window}")
        if segment_bytes < 64:
            raise ValueError(f"segment size too small: {segment_bytes}")
        self.mem_port = mem_port
        self.mlp_window = mlp_window
        self.segment_bytes = segment_bytes
        self._busy = False

        self._kernels = self.stats.scalar("kernels", "kernels executed")
        self._mem_bytes = self.stats.scalar("mem_bytes", "bytes streamed")
        self._compute_ticks = self.stats.scalar("compute_ticks", "compute time")
        self._mem_stall_ticks = self.stats.scalar(
            "mem_stall_ticks", "time memory exceeded compute"
        )

    def reset_state(self) -> None:
        super().reset_state()
        self._busy = False

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def run_kernel(
        self,
        streams: List[StreamRef],
        compute_cycles: int,
        on_done: Callable[[int], None],
    ) -> None:
        """Stream ``streams`` while spending ``compute_cycles``.

        ``on_done(elapsed_ticks)`` fires when both the compute budget and
        all memory traffic have retired.  Kernels are serialized (a single
        core).
        """
        if self._busy:
            raise RuntimeError(f"{self.name}: kernel already running")
        self._busy = True
        self._kernels.inc()
        start = self.now

        segments = self._segment(streams)
        compute_ticks = compute_cycles * self.clock_period
        self._compute_ticks.inc(compute_ticks)
        state = {
            "next": 0,
            "outstanding": 0,
            "mem_done_at": start,
        }

        def issue() -> None:
            while (
                state["next"] < len(segments)
                and state["outstanding"] < self.mlp_window
            ):
                addr, size, is_read = segments[state["next"]]
                state["next"] += 1
                state["outstanding"] += 1
                cmd = MemCmd.READ if is_read else MemCmd.WRITE
                txn = Transaction(cmd, addr, size, source=self.name)
                self._mem_bytes.inc(size)
                self.mem_port.send(txn, segment_done)

        def segment_done(_txn: Transaction) -> None:
            state["outstanding"] -= 1
            state["mem_done_at"] = max(state["mem_done_at"], self.now)
            if state["next"] < len(segments):
                issue()
            elif state["outstanding"] == 0:
                finish()

        def finish() -> None:
            mem_ticks = state["mem_done_at"] - start
            total = max(mem_ticks, compute_ticks)
            if mem_ticks > compute_ticks:
                self._mem_stall_ticks.inc(mem_ticks - compute_ticks)
            done_at = start + total

            def retire() -> None:
                self._busy = False
                on_done(done_at - start)

            self.schedule_at(max(done_at, self.now), retire)

        if not segments:
            # Pure-compute kernel.
            def retire_compute() -> None:
                self._busy = False
                on_done(compute_ticks)

            self.schedule(compute_ticks, retire_compute)
            return
        issue()

    def _segment(self, streams: List[StreamRef]) -> List[Tuple[int, int, bool]]:
        """Cut tensors into interleaved issue-order segments."""
        per_stream: List[List[Tuple[int, int, bool]]] = []
        for stream in streams:
            pieces = []
            offset = 0
            while offset < stream.size:
                size = min(self.segment_bytes, stream.size - offset)
                pieces.append((stream.addr + offset, size, stream.is_read))
                offset += size
            per_stream.append(pieces)
        # Interleave round-robin: kernels walk their tensors in lockstep.
        interleaved: List[Tuple[int, int, bool]] = []
        cursors = [0] * len(per_stream)
        remaining = sum(len(p) for p in per_stream)
        while remaining:
            for index, pieces in enumerate(per_stream):
                if cursors[index] < len(pieces):
                    interleaved.append(pieces[cursors[index]])
                    cursors[index] += 1
                    remaining -= 1
        return interleaved

    @property
    def busy(self) -> bool:
        return self._busy
