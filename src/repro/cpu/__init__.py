"""Host CPU model and non-GEMM kernel execution.

The paper's ARM CPU (Table II) runs everything the accelerator does not:
the non-GEMM operators of the transformer (LayerNorm, Softmax, GELU,
residual adds) plus driver work.  :class:`~repro.cpu.cpu.TimingCPU` is an
in-order core with a limited memory-level-parallelism window issuing
transactions through its cache hierarchy; :mod:`repro.cpu.nongemm` maps
operator types onto per-element compute costs and memory streams.

The Fig. 8 result (DevMem hurting non-GEMM by up to ~5x) emerges here:
when tensors live in device memory, every CPU miss crosses the PCIe
hierarchy instead of the local memory bus.
"""

from repro.cpu.cpu import TimingCPU
from repro.cpu.nongemm import (
    NONGEMM_COSTS,
    NonGemmKernel,
    kernel_for_op,
)

__all__ = ["TimingCPU", "NonGemmKernel", "NONGEMM_COSTS", "kernel_for_op"]
