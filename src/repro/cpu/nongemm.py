"""Non-GEMM operator cost models.

Per-element compute costs for the transformer's non-GEMM operators,
following the operator classes profiled by NonGEMM-Bench (the paper's
reference [20]): normalization, softmax, activation, and element-wise
arithmetic.  Costs are in CPU cycles per element and deliberately simple:
the experiments depend on the *ratio* between memory time and compute
time per operator, not on vendor-exact instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cpu.cpu import StreamRef

#: Cycles per element by operator type (scalar in-order ARM-class core).
NONGEMM_COSTS: Dict[str, float] = {
    # mean/variance pass + normalize pass
    "layernorm": 8.0,
    # exp + sum + divide, numerically stabilized (max pass)
    "softmax": 12.0,
    # tanh-approximation GELU
    "gelu": 10.0,
    # residual add
    "add": 1.0,
    # patch extraction / reshape
    "patchify": 2.0,
    # pooling / classifier glue
    "pool": 2.0,
}


@dataclass(frozen=True)
class NonGemmKernel:
    """A non-GEMM operator instance ready to run on the CPU.

    ``streams`` name the tensors touched (input reads, output writes);
    ``compute_cycles`` is the total cycle budget for the element loop.
    """

    op_type: str
    elements: int
    streams: List[StreamRef]
    compute_cycles: int

    @property
    def bytes_touched(self) -> int:
        return sum(stream.size for stream in self.streams)


def kernel_for_op(
    op_type: str,
    elements: int,
    input_addrs: List[tuple],
    output_addrs: List[tuple],
) -> NonGemmKernel:
    """Build a kernel from operator type and tensor placements.

    ``input_addrs`` / ``output_addrs`` are ``(addr, bytes)`` pairs; the
    per-element cost comes from :data:`NONGEMM_COSTS`.
    """
    if op_type not in NONGEMM_COSTS:
        raise ValueError(
            f"unknown non-GEMM op {op_type!r}; known: {sorted(NONGEMM_COSTS)}"
        )
    if elements <= 0:
        raise ValueError(f"element count must be positive, got {elements}")
    streams = [StreamRef(addr, size, is_read=True) for addr, size in input_addrs]
    streams += [StreamRef(addr, size, is_read=False) for addr, size in output_addrs]
    cycles = int(elements * NONGEMM_COSTS[op_type])
    return NonGemmKernel(op_type, elements, streams, cycles)
