"""Gem5-AcceSys reproduction: system-level exploration of standard
interconnects and configurable memory hierarchies for accelerators.

Public API (the surface the examples and benchmarks use)::

    from repro import (
        SystemConfig, AccessMode, AcceSysSystem,
        run_gemm, run_vit,
        roofline_sweep, find_crossover,
        TradeoffModel, devmem_threshold,
    )

    result = run_gemm(SystemConfig.pcie_8gb(), 512, 512, 512)
    print(result.seconds, result.delivered_bytes_per_sec / 1e9, "GB/s")

Subpackages expose the individual subsystems (``repro.sim``,
``repro.interconnect``, ``repro.memory``, ``repro.cache``, ``repro.smmu``,
``repro.dma``, ``repro.accel``, ``repro.cpu``, ``repro.workloads``); see
DESIGN.md for the inventory and README.md for the tour.
"""

from repro.core import (
    AccessMode,
    AcceSysSystem,
    GemmResult,
    MultiGemmResult,
    PeerTransferResult,
    RooflinePoint,
    SystemConfig,
    TradeoffModel,
    ViTResult,
    collect_stats,
    devmem_threshold,
    find_crossover,
    format_table,
    nongemm_time_threshold,
    relative_time_curve,
    roofline_sweep,
    run_gemm,
    run_multi_gemm,
    run_peer_transfer,
    run_vit,
)
from repro.workloads import VIT_VARIANTS, ViTConfig, build_vit_graph

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "AccessMode",
    "AcceSysSystem",
    "run_gemm",
    "run_vit",
    "run_multi_gemm",
    "run_peer_transfer",
    "GemmResult",
    "ViTResult",
    "MultiGemmResult",
    "PeerTransferResult",
    "roofline_sweep",
    "find_crossover",
    "RooflinePoint",
    "TradeoffModel",
    "devmem_threshold",
    "nongemm_time_threshold",
    "relative_time_curve",
    "collect_stats",
    "format_table",
    "ViTConfig",
    "VIT_VARIANTS",
    "build_vit_graph",
    "__version__",
]
