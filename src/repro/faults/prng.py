"""Counter-based deterministic PRNG for fault injection.

Fault schedules must be bit-identical across reruns, ``--shard`` slices
and ``--domains 1`` vs ``N``, so the generator carries **no mutable
state**: every draw is a pure function of ``(seed, label, counter)``.
The label (a link name) is hashed once into a 64-bit *stream*; each
draw finalizes ``stream ^ mix(counter)`` through the splitmix64 mixer.
Per-link counters live with the link's fault state and advance once per
TLP train -- and since the lockstep engine executes events in the same
global order for any domain count, the per-link train sequence (and
therefore every draw) is identical no matter how the system is
partitioned.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """The splitmix64 finalizer: a bijective 64-bit avalanche mix."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def stream_for(seed: int, label: str) -> int:
    """A 64-bit stream identity for ``(seed, label)``.

    Hash-based (not ``hash()``) so it is stable across interpreter runs
    and ``PYTHONHASHSEED`` values -- the same guarantee the sweep cache
    keys rely on.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def draw64(stream: int, counter: int) -> int:
    """The ``counter``-th 64-bit draw of ``stream`` (pure function)."""
    return mix64(stream ^ mix64((counter * _GAMMA) & _MASK64))


def uniform(stream: int, counter: int) -> float:
    """The ``counter``-th draw as a float in ``[0, 1)``."""
    return draw64(stream, counter) / float(1 << 64)
