"""Resilience workloads: DMA streams driven through a faulty fabric.

:class:`ResilienceRunner` measures what the fault subsystem exists to
answer: how much goodput survives a given fault schedule, and how the
degradation machinery (ACK/NAK replays, retrain stalls, completion
timeouts, bounded retries, descriptor aborts) accounts for the loss.
One point submits a fixed stream of DMA transfers round-robin across
the cluster and reports completion/abort counts, latency tail, and the
per-fault-class totals gathered from the link and engine counters.

The runner registers as ``"resilience"`` in the sweep registry, so the
``resilience-*`` grids flow through the existing cache / shard /
orchestrate / fidelity-ladder machinery unchanged -- the
:class:`~repro.faults.spec.FaultSpec` rides the config hash, keeping
cached fault-free results honest.

This module is deliberately *not* imported by ``repro.faults.__init__``:
it pulls the sweep/runner stack, which imports the system builder, which
imports the driver, which imports ``repro.faults.spec`` -- importing it
from the package root would create a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import SystemConfig
from repro.core.runner import WorkloadRunner
from repro.faults.spec import FaultSpec
from repro.sim.ticks import ticks_to_seconds
from repro.sweep.spec import SweepPoint, SweepSpec, register_runner


@dataclass
class ResilienceResult:
    """Outcome of one resilience point: goodput under a fault schedule."""

    config_name: str
    transfers: int
    size_bytes: int
    active_devices: int
    #: Transfers that completed / aborted (their sum is ``transfers``
    #: unless the run hung, which drive() turns into a hard error).
    completed: int
    aborted: int
    #: Last completion/abort tick -- end-to-end makespan of the stream.
    ticks: int
    #: Bytes of *successfully delivered* payload (completed transfers).
    payload_bytes: int
    #: DMA-engine fault counters summed across the cluster.
    timeouts: int = 0
    retries: int = 0
    #: Link fault counters summed across every faulty link.
    replays: int = 0
    replay_ticks: int = 0
    retrain_stall_ticks: int = 0
    downtrain_penalty_ticks: int = 0
    #: Cluster indices whose device was lost by end of run.
    device_lost: List[int] = field(default_factory=list)
    #: Completion-latency distribution over completed transfers (ticks).
    latency_p50: int = 0
    latency_max: int = 0

    @property
    def seconds(self) -> float:
        return ticks_to_seconds(self.ticks)

    @property
    def goodput_bytes_per_sec(self) -> float:
        """Delivered payload over the makespan (aborted bytes excluded)."""
        if self.ticks == 0:
            return 0.0
        return self.payload_bytes / ticks_to_seconds(self.ticks)

    @property
    def completion_rate(self) -> float:
        if self.transfers == 0:
            return 0.0
        return self.completed / self.transfers


class ResilienceRunner(WorkloadRunner):
    """A fixed DMA stream pushed through whatever faults the config arms.

    ``transfers`` descriptors of ``size_bytes`` each are submitted up
    front, round-robin across the cluster's first ``devices`` DMA
    engines (device-to-host writes: pure fabric/host-memory traffic, no
    kernel launches, so endpoint crash faults surface through the DMA
    timeout path rather than the driver).  The system then drains; each
    descriptor either completes or -- under an armed
    :class:`~repro.faults.spec.RetryPolicy` -- aborts with an error
    string.  A transfer that does neither means the fault schedule
    swallowed a completion with no retry machinery armed; drive() raises
    rather than report a silent hang.
    """

    def drive(
        self,
        system,
        size_bytes: int = 65536,
        transfers: int = 8,
        devices: Optional[int] = None,
    ) -> ResilienceResult:
        from repro.dma import DMADescriptor, DMADirection

        config = system.config
        total = len(system.wrappers)
        active = total if devices is None else devices
        if not 1 <= active <= total:
            raise ValueError(
                f"devices={active} out of range 1..{total} "
                f"(cluster has {total} accelerator(s))"
            )

        records = []
        for index in range(transfers):
            device = index % active
            addr = system.alloc_buffer(
                f"resilience.{index}", size_bytes,
                driver=system.drivers[device],
            )
            descriptor = DMADescriptor(
                addr=addr, size=size_bytes,
                direction=DMADirection.DEVICE_TO_HOST, stream="R",
            )
            record = {"descriptor": descriptor, "done_at": None}

            def complete(_descriptor, record=record) -> None:
                record["done_at"] = system.now

            system.wrappers[device].dma.submit(descriptor, complete)
            records.append(record)
        system.run()

        hung = [r for r in records if r["done_at"] is None]
        if hung:
            raise RuntimeError(
                f"{len(hung)}/{transfers} transfers neither completed nor "
                f"aborted -- a fault swallowed their completions with no "
                f"RetryPolicy armed (set FaultSpec.retry)"
            )
        completed = [
            r for r in records if r["descriptor"].error is None
        ]
        aborted = [r for r in records if r["descriptor"].error is not None]
        latencies = sorted(r["done_at"] for r in completed)

        timeouts = retries = 0
        for wrapper in system.wrappers:
            stats = wrapper.dma.stats
            if "fault_timeouts" in stats:
                timeouts += int(stats["fault_timeouts"].value)
                retries += int(stats["fault_retries"].value)

        link_totals = {
            "replays": 0, "replay_ticks": 0,
            "retrain_stall_ticks": 0, "downtrain_penalty_ticks": 0,
        }
        if system.fault_model is not None:
            link_totals = system.fault_model.link_totals()

        # The makespan is the last completion/abort tick, *not*
        # ``system.now``: cancelled timeout events are reaped lazily and
        # must never leak into the reported end of the stream.
        ticks = max((r["done_at"] for r in records), default=0)
        return ResilienceResult(
            config_name=config.name,
            transfers=transfers,
            size_bytes=size_bytes,
            active_devices=active,
            completed=len(completed),
            aborted=len(aborted),
            ticks=ticks,
            payload_bytes=len(completed) * size_bytes,
            timeouts=timeouts,
            retries=retries,
            replays=link_totals["replays"],
            replay_ticks=link_totals["replay_ticks"],
            retrain_stall_ticks=link_totals["retrain_stall_ticks"],
            downtrain_penalty_ticks=link_totals["downtrain_penalty_ticks"],
            device_lost=[
                index for index, driver in enumerate(system.drivers)
                if driver.device_lost
            ],
            latency_p50=(
                latencies[(len(latencies) - 1) // 2] if latencies else 0
            ),
            latency_max=latencies[-1] if latencies else 0,
        )


def run_resilience(
    config: SystemConfig,
    size_bytes: int = 65536,
    transfers: int = 8,
    devices: Optional[int] = None,
) -> ResilienceResult:
    """Drive one resilience stream under ``config`` (faults included)."""
    return ResilienceRunner().run(
        config, size_bytes=size_bytes, transfers=transfers, devices=devices
    )


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
def _run_resilience_point(config: SystemConfig, **params) -> ResilienceResult:
    return run_resilience(config, **params)


def _encode_resilience(result: ResilienceResult) -> dict:
    return {
        "config_name": result.config_name,
        "transfers": result.transfers,
        "size_bytes": result.size_bytes,
        "active_devices": result.active_devices,
        "completed": result.completed,
        "aborted": result.aborted,
        "ticks": result.ticks,
        "payload_bytes": result.payload_bytes,
        "timeouts": result.timeouts,
        "retries": result.retries,
        "replays": result.replays,
        "replay_ticks": result.replay_ticks,
        "retrain_stall_ticks": result.retrain_stall_ticks,
        "downtrain_penalty_ticks": result.downtrain_penalty_ticks,
        "device_lost": list(result.device_lost),
        "latency_p50": result.latency_p50,
        "latency_max": result.latency_max,
    }


def _decode_resilience(record: dict) -> ResilienceResult:
    return ResilienceResult(
        config_name=record["config_name"],
        transfers=record["transfers"],
        size_bytes=record["size_bytes"],
        active_devices=record["active_devices"],
        completed=record["completed"],
        aborted=record["aborted"],
        ticks=record["ticks"],
        payload_bytes=record["payload_bytes"],
        timeouts=record.get("timeouts", 0),
        retries=record.get("retries", 0),
        replays=record.get("replays", 0),
        replay_ticks=record.get("replay_ticks", 0),
        retrain_stall_ticks=record.get("retrain_stall_ticks", 0),
        downtrain_penalty_ticks=record.get("downtrain_penalty_ticks", 0),
        device_lost=list(record.get("device_lost", [])),
        latency_p50=record.get("latency_p50", 0),
        latency_max=record.get("latency_max", 0),
    )


register_runner(
    "resilience", _run_resilience_point, _encode_resilience,
    _decode_resilience,
)


def apply_faults(spec: SweepSpec, faults: Optional[FaultSpec]) -> SweepSpec:
    """Copy of ``spec`` with every point running under ``faults``.

    The mirror of :func:`repro.sweep.spec.apply_domains`: the CLI's
    ``sweep --faults <preset>`` overlays a fault schedule onto any
    registered grid.  Because the spec rides the config hash, the
    overlaid points can never alias the fault-free cache entries.
    ``None`` returns the spec unchanged.
    """
    if faults is None:
        return spec
    points = [
        SweepPoint(point.key, point.config.with_faults(faults), point.params)
        for point in spec.points
    ]
    return SweepSpec(
        name=spec.name,
        points=points,
        runner=spec.runner,
        base_seed=spec.base_seed,
        auto_seed=spec.auto_seed,
    )
