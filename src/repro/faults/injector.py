"""Runtime fault state attached to links, DMA engines and drivers.

:class:`FaultModel` compiles a frozen :class:`~repro.faults.spec.FaultSpec`
against a built system: every matching link gets a
:class:`LinkFaultState` (its injection hook plus per-fault-class stat
counters), every DMA engine gets the retry policy and its endpoint's
stall/crash state, and every driver learns whether its device can be
lost.  Nothing here runs when ``SystemConfig.faults`` is ``None`` -- the
hooks in the links and the DMA engine are a single ``is None`` check,
so the fault-free path stays bit-identical to a tree without this
subsystem (pinned by the golden tests).

Determinism: a link's injection decisions are pure functions of
``(spec.seed, link name, per-link train counter)`` plus the train's
deterministic start tick.  The counters advance once per granted train
and are rewound by ``reset_state``, so reruns, ``--shard`` slices and
``--domains 1`` vs ``N`` (globally-ordered lockstep -- identical event
order by construction) all see identical schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.prng import stream_for, uniform
from repro.faults.spec import (
    DeviceLostError,
    EndpointFault,
    FaultSpec,
    LinkFaults,
)

__all__ = [
    "DeviceLostError",
    "EndpointFaultState",
    "FaultModel",
    "LinkFaultState",
]


class LinkFaultState:
    """Deterministic fault runtime for one directional link.

    Attached as ``link.faults``; the link's timing path calls
    :meth:`adjust` once per granted TLP train.  Stats are created
    lazily here -- only faulty links grow ``fault_*`` counters, so the
    stat-snapshot shape of fault-free systems never changes.
    """

    __slots__ = (
        "spec", "stream", "counter", "trace",
        "_replays", "_replay_ticks", "_retrain_ticks", "_downtrain_ticks",
    )

    def __init__(self, spec: LinkFaults, seed: int, link_name: str,
                 stats) -> None:
        self.spec = spec
        self.stream = stream_for(seed, link_name)
        self.counter = 0
        # Telemetry hook (repro.telemetry): the owning link's LinkTrace,
        # so retrain/down-train windows land on the same trace row as
        # the TLP trains they delay; None when tracing is off.
        self.trace = None
        self._replays = stats.scalar(
            "fault_replays", "TLPs retransmitted after LCRC corruption"
        )
        self._replay_ticks = stats.scalar(
            "fault_replay_ticks", "wire time spent on ACK/NAK replays"
        )
        self._retrain_ticks = stats.scalar(
            "fault_retrain_stall_ticks", "ticks stalled in retrain windows"
        )
        self._downtrain_ticks = stats.scalar(
            "fault_downtrain_penalty_ticks",
            "extra occupancy from down-trained lanes",
        )

    def reset(self) -> None:
        """Rewind the draw counter (stat values reset with the group)."""
        self.counter = 0

    def adjust(self, start: int, occupancy: int, n_tlps: int,
               tlp_fill: int) -> tuple:
        """Apply this link's faults to one TLP train.

        Returns ``(stall, occupancy)``: ``stall`` is how long the train
        waits for a retrain window to close before the wire is usable,
        and ``occupancy`` is the (possibly inflated) wire time.  The
        caller folds the stall into its own notion of start time (the
        flat channel delays ``start``, the switch link extends the wire
        hold) -- both keep FIFO arrival ordering.
        """
        spec = self.spec
        # Persistent lane down-training: bandwidth divided from a tick on.
        if spec.downtrain_at and start >= spec.downtrain_at \
                and spec.downtrain_factor > 1:
            penalty = occupancy * (spec.downtrain_factor - 1)
            occupancy += penalty
            self._downtrain_ticks.inc(penalty)
            if self.trace is not None:
                self.trace.downtrain(start, penalty)
        # Retrain window: the wire is dead until the window closes.
        stall = 0
        if spec.retrain_period and spec.retrain_duration:
            phase = start % spec.retrain_period
            if phase < spec.retrain_duration:
                stall = spec.retrain_duration - phase
                self._retrain_ticks.inc(stall)
                if self.trace is not None:
                    self.trace.retrain(start, stall)
        # Transient TLP corruption -> NAK + replay-buffer retransmission.
        # One counter draw per train: the expected corrupted-TLP count is
        # n * rate; the fractional remainder resolves through the
        # counter-based PRNG so long-run rates are exact and every
        # decision replays bit-identically.
        if spec.corrupt_rate > 0.0 and n_tlps > 0:
            counter = self.counter
            self.counter = counter + 1
            expected = n_tlps * spec.corrupt_rate
            replays = int(expected)
            fraction = expected - replays
            if fraction > 0.0 and uniform(self.stream, counter) < fraction:
                replays += 1
            replays = min(replays, n_tlps * spec.max_replays_per_tlp)
            if replays:
                penalty = replays * (tlp_fill + spec.replay_latency)
                occupancy += penalty
                self._replays.inc(replays)
                self._replay_ticks.inc(penalty)
        return stall, occupancy


class EndpointFaultState:
    """Stall/crash schedule of one endpoint (pure functions of the tick)."""

    __slots__ = ("fault",)

    def __init__(self, fault: EndpointFault) -> None:
        self.fault = fault

    def crashed(self, now: int) -> bool:
        crash_at = self.fault.crash_at
        return crash_at is not None and now >= crash_at

    def dropping(self, now: int) -> bool:
        """Whether a completion arriving at ``now`` is lost."""
        if self.crashed(now):
            return True
        return self.fault.stall_from <= now < self.fault.stall_until


class FaultModel:
    """A :class:`FaultSpec` compiled against one built system."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.link_states: Dict[str, LinkFaultState] = {}
        self.endpoint_states: Dict[int, EndpointFaultState] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Wire the spec into ``system``'s links, DMA engines and drivers.

        Called once from ``AcceSysSystem.__init__`` after the fabric,
        wrappers and drivers exist; the attachment survives ``reset()``
        (per-run counters rewind through each component's
        ``reset_state``).
        """
        # Imports are local: this module must stay importable from the
        # driver layer without pulling the fabric/system stack around in
        # a cycle.
        from repro.interconnect.pcie.fabric import PCIeFabric
        from repro.topology.fabric import SwitchedPCIeFabric

        spec = self.spec
        fabric = system.fabric
        # CXLFabric subclasses PCIeFabric, so gate on the configured
        # interconnect rather than isinstance alone.
        if isinstance(fabric, SwitchedPCIeFabric):
            links = fabric.links()
        elif isinstance(fabric, PCIeFabric) \
                and system.config.interconnect != "cxl":
            links = [fabric.up, fabric.down]
        else:
            raise ValueError(
                "fault injection models the PCIe fabric; the CXL port has "
                "no TLP trains to corrupt -- drop `faults` or use a PCIe "
                "interconnect"
            )
        for link in links:
            entry = spec.link_spec_for(link.name)
            if entry is not None and entry.active:
                state = LinkFaultState(entry, spec.seed, link.name, link.stats)
                link.faults = state
                self.link_states[link.name] = state

        for fault in spec.endpoints:
            if not 0 <= fault.endpoint < len(system.wrappers):
                raise ValueError(
                    f"endpoint fault targets index {fault.endpoint}, but the "
                    f"cluster has {len(system.wrappers)} accelerator(s)"
                )
            self.endpoint_states[fault.endpoint] = EndpointFaultState(fault)

        if spec.retry is not None:
            for index, wrapper in enumerate(system.wrappers):
                wrapper.dma.configure_faults(
                    spec.retry, self.endpoint_states.get(index)
                )
        for index, driver in enumerate(system.drivers):
            state = self.endpoint_states.get(index)
            if state is not None:
                driver.fault_state = state

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def faulty_links(self) -> List[str]:
        return sorted(self.link_states)

    def link_totals(self) -> Dict[str, int]:
        """Summed per-fault-class link counters across every faulty link."""
        totals = {
            "replays": 0,
            "replay_ticks": 0,
            "retrain_stall_ticks": 0,
            "downtrain_penalty_ticks": 0,
        }
        for state in self.link_states.values():
            totals["replays"] += int(state._replays.value)
            totals["replay_ticks"] += int(state._replay_ticks.value)
            totals["retrain_stall_ticks"] += int(state._retrain_ticks.value)
            totals["downtrain_penalty_ticks"] += int(
                state._downtrain_ticks.value
            )
        return totals
