"""Deterministic fault injection for the simulated interconnect.

``repro.faults`` adds a seeded, fully reproducible fault model on top of
the PCIe fabric: TLP corruption with ACK/NAK replay, link retraining
windows, persistent lane down-training, endpoint stall/crash -- plus the
retry/timeout machinery (DMA completion timeouts with exponential
backoff, device-lost surfacing in the driver) that lets the modeled
system degrade gracefully instead of hanging.  See docs/FAULTS.md.

The sweep-facing :class:`ResilienceRunner` lives in
:mod:`repro.faults.runner` and is imported separately (by the sweep
registry and the CLI) to keep this package importable from the driver
layer without a cycle.
"""

from repro.faults.injector import (
    EndpointFaultState,
    FaultModel,
    LinkFaultState,
)
from repro.faults.prng import draw64, stream_for, uniform
from repro.faults.spec import (
    FAULT_PRESETS,
    DeviceLostError,
    EndpointFault,
    FaultSpec,
    LinkFaults,
    RetryPolicy,
    fault_preset,
    register_preset,
)

__all__ = [
    "FAULT_PRESETS",
    "DeviceLostError",
    "EndpointFault",
    "EndpointFaultState",
    "FaultModel",
    "FaultSpec",
    "LinkFaultState",
    "LinkFaults",
    "RetryPolicy",
    "draw64",
    "fault_preset",
    "register_preset",
    "stream_for",
    "uniform",
]
