"""Frozen fault-injection specifications.

A :class:`FaultSpec` describes everything that can go wrong on a
simulated run: per-link fault schedules (TLP corruption with ACK/NAK
replay, link retraining windows, persistent lane down-training),
endpoint stall/crash events, and the retry policy the DMA engines use
to survive them.  It rides :class:`~repro.core.config.SystemConfig` as
an ordinary frozen field, so it flows through ``to_canonical()`` /
``stable_hash()`` and the sweep cache keys on it like any other
configuration knob -- a faulty run can never alias a fault-free cache
entry.

All schedules are *deterministic*: periodic windows and crash ticks are
literal tick values, and probabilistic corruption expands from
``FaultSpec.seed`` through the counter-based PRNG in
:mod:`repro.faults.prng` (see docs/FAULTS.md for the guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.sim.ticks import ns, us


class DeviceLostError(RuntimeError):
    """Raised by the driver when its device has crashed off the bus.

    Surfacing the loss as an exception (instead of an MMIO write into
    the void that never completes) is what keeps callers from hanging
    on a dead endpoint.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Completion-timeout and retry behaviour of the DMA engines.

    ``completion_timeout`` arms a timer per in-flight segment; on expiry
    the segment is reissued with the timeout scaled by
    ``backoff ** attempts`` (exponential backoff), up to ``max_retries``
    reissues.  ``retry_budget`` bounds how many segments *per channel*
    may be in a retry state at once -- a segment that times out with the
    budget exhausted aborts its descriptor instead of retrying.
    """

    completion_timeout: int = us(200)
    max_retries: int = 3
    backoff: int = 2
    retry_budget: int = 4

    def __post_init__(self) -> None:
        if self.completion_timeout <= 0:
            raise ValueError(
                f"completion timeout must be positive, got {self.completion_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1:
            raise ValueError(f"backoff factor must be >= 1, got {self.backoff}")
        if self.retry_budget < 1:
            raise ValueError(f"retry budget must be >= 1, got {self.retry_budget}")


@dataclass(frozen=True)
class LinkFaults:
    """Fault schedule for every link whose name matches ``link``.

    ``link`` is an ``fnmatch`` pattern over compiled link names
    (``system.pcie.up``, ``system.pcie.ep2.down``, ...); the first
    matching entry in ``FaultSpec.links`` wins.

    Fault classes (any combination):

    * ``corrupt_rate`` -- per-TLP LCRC corruption probability.  Each
      corrupted TLP is NAK'd and retransmitted from the replay buffer,
      costing one TLP wire time plus ``replay_latency`` (the ACK/NAK
      turnaround); ``max_replays_per_tlp`` bounds the retransmissions
      charged to one train.
    * ``retrain_period`` / ``retrain_duration`` -- the link retrains for
      ``retrain_duration`` ticks at the start of every
      ``retrain_period``-tick interval; trains hitting the window stall
      until it closes.
    * ``downtrain_at`` / ``downtrain_factor`` -- at tick
      ``downtrain_at`` the link permanently down-trains its lanes,
      dividing effective bandwidth by ``downtrain_factor``.
    """

    link: str = "*"
    corrupt_rate: float = 0.0
    replay_latency: int = ns(250)
    max_replays_per_tlp: int = 4
    retrain_period: int = 0
    retrain_duration: int = 0
    downtrain_at: int = 0
    downtrain_factor: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError(
                f"corrupt_rate must be in [0, 1], got {self.corrupt_rate}"
            )
        if self.replay_latency < 0:
            raise ValueError(
                f"replay latency must be >= 0, got {self.replay_latency}"
            )
        if self.max_replays_per_tlp < 1:
            raise ValueError(
                f"max_replays_per_tlp must be >= 1, got {self.max_replays_per_tlp}"
            )
        if self.retrain_period < 0 or self.retrain_duration < 0:
            raise ValueError("retrain period/duration must be >= 0")
        if self.retrain_period and self.retrain_duration >= self.retrain_period:
            raise ValueError(
                f"retrain_duration ({self.retrain_duration}) must be shorter "
                f"than retrain_period ({self.retrain_period})"
            )
        if self.downtrain_at < 0:
            raise ValueError(f"downtrain_at must be >= 0, got {self.downtrain_at}")
        if self.downtrain_factor < 1:
            raise ValueError(
                f"downtrain_factor must be >= 1, got {self.downtrain_factor}"
            )

    @property
    def active(self) -> bool:
        """Whether this entry injects anything at all."""
        return bool(
            self.corrupt_rate > 0.0
            or (self.retrain_period and self.retrain_duration)
            or (self.downtrain_at and self.downtrain_factor > 1)
        )


@dataclass(frozen=True)
class EndpointFault:
    """Stall or crash schedule for one endpoint (cluster index).

    ``crash_at`` kills the device at that tick: completions it owes are
    lost forever and the driver surfaces :class:`DeviceLostError` on any
    later launch.  ``stall_from`` / ``stall_until`` define a transient
    window during which completions are dropped (lost TLPs); retries
    issued after the window succeed.
    """

    endpoint: int = 0
    crash_at: Optional[int] = None
    stall_from: int = 0
    stall_until: int = 0

    def __post_init__(self) -> None:
        if self.endpoint < 0:
            raise ValueError(f"endpoint index must be >= 0, got {self.endpoint}")
        if self.crash_at is not None and self.crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.stall_from < 0 or self.stall_until < self.stall_from:
            raise ValueError(
                f"stall window [{self.stall_from}, {self.stall_until}) is invalid"
            )


@dataclass(frozen=True)
class FaultSpec:
    """The complete fault model of one simulated run.

    ``links`` entries match link names first-match-wins; ``endpoints``
    entries must name distinct cluster indices.  ``retry`` enables the
    DMA completion-timeout machinery -- required whenever an endpoint
    fault can swallow completions, otherwise the run would hang exactly
    the way an unprotected real system would.
    """

    seed: int = 1
    links: Tuple[LinkFaults, ...] = ()
    endpoints: Tuple[EndpointFault, ...] = ()
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        indices = [fault.endpoint for fault in self.endpoints]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate endpoint fault indices: {indices}")
        if self.endpoints and self.retry is None:
            raise ValueError(
                "endpoint stall/crash faults swallow completions; a "
                "RetryPolicy is required so transfers time out and abort "
                "instead of hanging"
            )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=seed)

    def link_spec_for(self, name: str) -> Optional[LinkFaults]:
        """First ``links`` entry matching ``name`` (or ``None``)."""
        from fnmatch import fnmatchcase

        for entry in self.links:
            if fnmatchcase(name, entry.link):
                return entry
        return None

    def endpoint_fault_for(self, index: int) -> Optional[EndpointFault]:
        for entry in self.endpoints:
            if entry.endpoint == index:
                return entry
        return None

    def describe(self) -> str:
        """Multi-line human summary (the ``faults describe`` CLI body)."""
        lines = [f"seed: {self.seed}"]
        if not self.links and not self.endpoints:
            lines.append("links: (none)")
        for entry in self.links:
            parts = []
            if entry.corrupt_rate > 0.0:
                parts.append(
                    f"corrupt_rate={entry.corrupt_rate:g} "
                    f"(replay {entry.replay_latency} ticks, "
                    f"<= {entry.max_replays_per_tlp}/TLP)"
                )
            if entry.retrain_period and entry.retrain_duration:
                parts.append(
                    f"retrain {entry.retrain_duration}/{entry.retrain_period} ticks"
                )
            if entry.downtrain_at and entry.downtrain_factor > 1:
                parts.append(
                    f"downtrain /{entry.downtrain_factor} at tick "
                    f"{entry.downtrain_at}"
                )
            lines.append(f"link {entry.link!r}: {'; '.join(parts) or 'no-op'}")
        for fault in self.endpoints:
            parts = []
            if fault.crash_at is not None:
                parts.append(f"crash at tick {fault.crash_at}")
            if fault.stall_until > fault.stall_from:
                parts.append(
                    f"stall [{fault.stall_from}, {fault.stall_until}) ticks"
                )
            lines.append(f"endpoint {fault.endpoint}: {'; '.join(parts)}")
        if self.retry is not None:
            retry = self.retry
            lines.append(
                f"retry: timeout {retry.completion_timeout} ticks, "
                f"x{retry.backoff} backoff, <= {retry.max_retries} retries, "
                f"budget {retry.retry_budget}/channel"
            )
        else:
            lines.append("retry: (none -- faults degrade, nothing aborts)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Preset registry (CLI: ``sweep --faults <preset>``, ``faults describe``)
# ----------------------------------------------------------------------
FAULT_PRESETS: Dict[str, Callable[[], FaultSpec]] = {}


def register_preset(name: str):
    """Decorator: register a factory building a named :class:`FaultSpec`."""

    def wrap(factory: Callable[[], FaultSpec]) -> Callable[[], FaultSpec]:
        FAULT_PRESETS[name] = factory
        return factory

    return wrap


def fault_preset(name: str, seed: Optional[int] = None) -> FaultSpec:
    """Instantiate a registered preset (optionally reseeded)."""
    try:
        factory = FAULT_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault preset {name!r}; registered: {sorted(FAULT_PRESETS)}"
        ) from None
    spec = factory()
    if seed is not None:
        spec = spec.with_seed(seed)
    return spec


@register_preset("noisy-wire")
def _noisy_wire() -> FaultSpec:
    """1e-3 per-TLP corruption on every link, retries on."""
    return FaultSpec(
        seed=7,
        links=(LinkFaults(link="*", corrupt_rate=1e-3),),
        retry=RetryPolicy(),
    )


@register_preset("retrain-storm")
def _retrain_storm() -> FaultSpec:
    """The shared uplink retrains 10 us out of every 100 us."""
    return FaultSpec(
        seed=7,
        links=(
            LinkFaults(link="*.up", retrain_period=us(100),
                       retrain_duration=us(10)),
        ),
        retry=RetryPolicy(),
    )


@register_preset("slow-lane")
def _slow_lane() -> FaultSpec:
    """Endpoint 0's wires down-train to half bandwidth at 50 us."""
    return FaultSpec(
        seed=7,
        links=(
            LinkFaults(link="*.ep0.*", downtrain_at=us(50),
                       downtrain_factor=2),
        ),
        retry=RetryPolicy(),
    )


@register_preset("flaky-endpoint")
def _flaky_endpoint() -> FaultSpec:
    """Endpoint 0 drops completions for a 300 us window, then recovers."""
    return FaultSpec(
        seed=7,
        endpoints=(EndpointFault(endpoint=0, stall_from=us(20),
                                 stall_until=us(320)),),
        retry=RetryPolicy(),
    )


@register_preset("dead-endpoint")
def _dead_endpoint() -> FaultSpec:
    """Endpoint 0 crashes off the bus at 50 us and never returns."""
    return FaultSpec(
        seed=7,
        endpoints=(EndpointFault(endpoint=0, crash_at=us(50)),),
        retry=RetryPolicy(),
    )
