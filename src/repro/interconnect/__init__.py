"""Interconnects: the coherent memory bus and the PCIe hierarchy.

:class:`~repro.interconnect.bus.MemBus` is the host-side coherent crossbar
(gem5's ``SystemXBar``): address-ranged routing, bounded bandwidth, and a
snoop/invalidation path that keeps the accelerator-side cache coherent with
the CPU caches in DC mode.

:mod:`repro.interconnect.pcie` models the standard interconnect the paper
adds to gem5: lanes/speeds/encodings, TLP packetization with header
overhead, and the store-and-forward root complex + switch pipeline of
Fig. 1 (150 ns and 50 ns latencies from Table II).
"""

from repro.interconnect.bus import MemBus
from repro.interconnect.pcie import (
    PCIeConfig,
    PCIeChannel,
    PCIeFabric,
    PCIE_GENERATIONS,
)
from repro.interconnect.cxl import CXLFabric, cxl_link_config

__all__ = [
    "MemBus",
    "PCIeConfig",
    "PCIeChannel",
    "PCIeFabric",
    "PCIE_GENERATIONS",
    "CXLFabric",
    "cxl_link_config",
]
