"""PCIe configuration space, enumeration and BAR assignment.

A minimal but functional model of the machinery a kernel driver uses to
find and map a device: each :class:`PCIeFunction` exposes a 4 KiB config
space with vendor/device IDs and Base Address Registers (BARs); the
:class:`ConfigSpace` enumerates functions and assigns BAR windows from an
MMIO aperture, exactly what the accelerator driver model
(:mod:`repro.accel.driver`) consumes.  This backs the "kernel driver
support" row of the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.addr_range import AddrRange

#: Standard config-space register offsets (type-0 header).
REG_VENDOR_ID = 0x00
REG_DEVICE_ID = 0x02
REG_COMMAND = 0x04
REG_STATUS = 0x06
REG_CLASS_CODE = 0x08
REG_BAR0 = 0x10

#: COMMAND register bits.
CMD_MEMORY_ENABLE = 0x2
CMD_BUS_MASTER_ENABLE = 0x4


@dataclass
class BAR:
    """One Base Address Register: a power-of-two MMIO window."""

    size: int
    prefetchable: bool = False
    assigned_base: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size & (self.size - 1):
            raise ValueError(f"BAR size must be a power of two, got {self.size}")
        if self.size < 128:
            raise ValueError(f"BAR size must be at least 128 bytes, got {self.size}")

    @property
    def range(self) -> AddrRange:
        if self.assigned_base is None:
            raise RuntimeError("BAR not assigned yet; run enumeration first")
        return AddrRange.from_size(self.assigned_base, self.size)


@dataclass
class PCIeFunction:
    """One PCIe endpoint function with its config header."""

    vendor_id: int
    device_id: int
    class_code: int = 0x120000  # processing accelerator
    bars: List[BAR] = field(default_factory=list)
    command: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vendor_id <= 0xFFFF:
            raise ValueError(f"vendor id out of range: {self.vendor_id:#x}")
        if not 0 <= self.device_id <= 0xFFFF:
            raise ValueError(f"device id out of range: {self.device_id:#x}")
        if len(self.bars) > 6:
            raise ValueError("a type-0 function has at most 6 BARs")

    @property
    def memory_enabled(self) -> bool:
        return bool(self.command & CMD_MEMORY_ENABLE)

    @property
    def bus_master_enabled(self) -> bool:
        return bool(self.command & CMD_BUS_MASTER_ENABLE)

    def config_read(self, offset: int) -> int:
        """Read a config register (16-bit granularity for IDs, 32 for BARs)."""
        if offset == REG_VENDOR_ID:
            return self.vendor_id
        if offset == REG_DEVICE_ID:
            return self.device_id
        if offset == REG_COMMAND:
            return self.command
        if offset == REG_CLASS_CODE:
            return self.class_code
        if REG_BAR0 <= offset < REG_BAR0 + 4 * len(self.bars) and offset % 4 == 0:
            bar = self.bars[(offset - REG_BAR0) // 4]
            return bar.assigned_base if bar.assigned_base is not None else 0
        return 0

    def config_write(self, offset: int, value: int) -> None:
        """Write a config register (COMMAND and BAR assignment)."""
        if offset == REG_COMMAND:
            self.command = value & 0xFFFF
        elif REG_BAR0 <= offset < REG_BAR0 + 4 * len(self.bars) and offset % 4 == 0:
            self.bars[(offset - REG_BAR0) // 4].assigned_base = value


class ConfigSpace:
    """Enumerates functions and carves BAR windows from an MMIO aperture."""

    def __init__(self, mmio_window: AddrRange) -> None:
        self.mmio_window = mmio_window
        self._functions: Dict[int, PCIeFunction] = {}
        self._next_slot = 0
        self._alloc_cursor = mmio_window.start

    def register(self, function: PCIeFunction) -> int:
        """Add a function; returns its device number (slot)."""
        slot = self._next_slot
        self._functions[slot] = function
        self._next_slot += 1
        return slot

    def function(self, slot: int) -> PCIeFunction:
        return self._functions[slot]

    def enumerate(self) -> List[int]:
        """Assign BAR addresses for every function (BIOS/kernel probe).

        Each BAR is naturally aligned to its size, as the spec requires.
        Returns the list of slots that were configured.
        """
        for slot in sorted(self._functions):
            function = self._functions[slot]
            for bar in function.bars:
                base = self._align_up(self._alloc_cursor, bar.size)
                if base + bar.size > self.mmio_window.end:
                    raise RuntimeError(
                        f"MMIO window {self.mmio_window} exhausted "
                        f"assigning {bar.size:#x}-byte BAR"
                    )
                bar.assigned_base = base
                self._alloc_cursor = base + bar.size
            function.config_write(
                REG_COMMAND, CMD_MEMORY_ENABLE | CMD_BUS_MASTER_ENABLE
            )
        return sorted(self._functions)

    def find(self, vendor_id: int, device_id: int) -> Optional[int]:
        """Slot of the first function matching the IDs, or None."""
        matches = self.find_all(vendor_id, device_id)
        return matches[0] if matches else None

    def find_all(self, vendor_id: int, device_id: int) -> List[int]:
        """Every slot matching the IDs, in slot order (cluster probing)."""
        return [
            slot
            for slot in sorted(self._functions)
            if self._functions[slot].vendor_id == vendor_id
            and self._functions[slot].device_id == device_id
        ]

    @staticmethod
    def _align_up(value: int, alignment: int) -> int:
        return -(-value // alignment) * alignment
