"""PCIe fabric: request/completion round trips over the channel pair.

The fabric owns the two directional channels and implements the PCIe
transaction protocol as the device and host see it:

* **device read** (DMA from host memory): a header-only memory-read request
  TLP travels up (device -> switch -> root complex), the host memory system
  services it, and completion TLPs carry the data back down.
* **device write** (DMA to host memory): posted write TLPs carry the
  payload up; the transaction completes when the host memory system accepts
  it (no completion TLP, per the spec).
* **host MMIO**: the CPU reaches device registers / device memory through
  the down channel, with the mirror-image round trip for reads.

The requester-side tag limit (``PCIeConfig.max_tags``) is enforced by the
DMA engine, which is what bounds outstanding round trips and produces the
bandwidth-delay behaviour discussed in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.interconnect.pcie.link import PCIeChannel, PCIeConfig
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction


def require_host_target(name: str, target: Optional[TargetPort]) -> TargetPort:
    """The wired host target of a fabric, or a diagnosable wiring error.

    Shared by every fabric flavour (flat, CXL, switched topology) so the
    wiring hint stays in one place.  Resolving *before* the channel delay
    is scheduled (and binding the result in completion closures) turns
    what used to be an ``AttributeError`` deep in the event loop -- a
    transaction arriving at a fabric whose target was never wired -- into
    an immediate error naming the component and the fix.
    """
    if target is None:
        raise RuntimeError(
            f"{name}: host_target is not wired -- a transaction reached "
            f"the fabric before set_host_target() was called; wire the "
            f"host bridge (AcceSysSystem does this right after fabric "
            f"construction) before submitting traffic"
        )
    return target


class PCIeFabric(SimObject):
    """The device's window onto host memory and the host's onto the device.

    Parameters
    ----------
    config:
        Link/TLP/latency configuration.
    host_target:
        Host-side memory system entry point (IOCache or MemBus) used to
        service device-originated DMA.  May be set after construction via
        :meth:`set_host_target` to break construction cycles.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: PCIeConfig,
        host_target: Optional[TargetPort] = None,
        hops=None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.up = PCIeChannel(sim, f"{name}.up", config, hops=hops)
        self.down = PCIeChannel(sim, f"{name}.down", config, hops=hops)
        self.host_target = host_target

        self._dev_reads = self.stats.scalar("device_reads", "device-initiated reads")
        self._dev_writes = self.stats.scalar("device_writes", "device-initiated writes")
        self._mmio_ops = self.stats.scalar("mmio_ops", "host-initiated accesses")

    def set_host_target(self, target: TargetPort) -> None:
        self.host_target = target

    def _resolved_host_target(self) -> TargetPort:
        return require_host_target(self.name, self.host_target)

    # ------------------------------------------------------------------
    # Device-initiated DMA
    # ------------------------------------------------------------------
    def device_read(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """DMA read from host memory (request up, data down)."""
        host = self._resolved_host_target()
        self._dev_reads.inc()

        def request_arrived(_txn: Transaction) -> None:
            host.send(txn, host_done)

        def host_done(_txn: Transaction) -> None:
            self.down.deliver(txn, txn.size, on_complete)

        # Memory-read request TLPs are header-only; one per packet-size
        # chunk of the requested range.
        packet = txn.packet_size or self.config.tlp.max_payload
        self.up.deliver(
            txn, 0, request_arrived, force_tlps=txn.num_packets(packet)
        )

    def device_write(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """Posted DMA write to host memory (payload up, no completion TLP)."""
        host = self._resolved_host_target()
        self._dev_writes.inc()

        def payload_arrived(_txn: Transaction) -> None:
            host.send(txn, on_complete)

        self.up.deliver(txn, txn.size, payload_arrived)

    def device_access(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """Dispatch a device-initiated transaction by command."""
        if txn.is_read:
            self.device_read(txn, on_complete)
        else:
            self.device_write(txn, on_complete)

    # ------------------------------------------------------------------
    # Host-initiated MMIO / device-memory access
    # ------------------------------------------------------------------
    def host_access(
        self, txn: Transaction, device_target: TargetPort, on_complete: CompletionFn
    ) -> None:
        """CPU access to a device BAR (register file or device memory)."""
        self._mmio_ops.inc()
        if txn.is_read:

            def request_arrived(_txn: Transaction) -> None:
                device_target.send(txn, device_done)

            def device_done(_txn: Transaction) -> None:
                self.up.deliver(txn, txn.size, on_complete)

            self.down.deliver(txn, 0, request_arrived)
        else:

            def payload_arrived(_txn: Transaction) -> None:
                device_target.send(txn, on_complete)

            self.down.deliver(txn, txn.size, payload_arrived)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return self.config.describe()
