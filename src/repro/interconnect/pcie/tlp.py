"""Transaction-layer packet (TLP) arithmetic.

A PCIe transfer is carried as a train of TLPs.  Each TLP pays a fixed
per-packet overhead -- the 3-4 DW transaction-layer header plus data-link
framing (sequence number, LCRC, STP/END symbols) -- and carries at most
``max_payload`` bytes.  Requests without data (memory reads) are
header-only TLPs.  These few numbers produce the left branch of the
paper's Fig. 4 (small packets waste wire on headers) and, combined with
store-and-forward forwarding, the right branch (large packets stall the
pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Transaction-layer header: 4 DW (64-bit addressing) = 16 bytes.
TL_HEADER_BYTES = 16
#: Data-link + physical framing: 2B sequence + 4B LCRC + 2B framing.
DL_FRAMING_BYTES = 8


@dataclass(frozen=True)
class TLPParams:
    """Packetization parameters for a PCIe hierarchy.

    ``max_payload`` is the familiar Max_Payload_Size knob swept by the
    paper's packet-size experiment (64..4096 bytes).
    """

    max_payload: int = 256
    header_bytes: int = TL_HEADER_BYTES + DL_FRAMING_BYTES

    def __post_init__(self) -> None:
        if self.max_payload <= 0:
            raise ValueError(f"max payload must be positive, got {self.max_payload}")
        if self.header_bytes <= 0:
            raise ValueError(f"header bytes must be positive, got {self.header_bytes}")

    def num_tlps(self, payload_bytes: int) -> int:
        """TLPs needed for ``payload_bytes`` (header-only request -> 1)."""
        if payload_bytes <= 0:
            return 1
        return -(-payload_bytes // self.max_payload)

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes on the wire including per-TLP overhead."""
        return max(0, payload_bytes) + self.num_tlps(payload_bytes) * self.header_bytes

    def tlp_wire_bytes(self, payload_bytes: int) -> int:
        """Wire size of a single (largest) TLP of this transfer."""
        per_tlp_payload = min(max(payload_bytes, 0), self.max_payload)
        return per_tlp_payload + self.header_bytes

    def efficiency(self, payload_bytes: int) -> float:
        """Fraction of wire bytes that are payload."""
        wire = self.wire_bytes(payload_bytes)
        return payload_bytes / wire if wire else 0.0
