"""PCIe link configuration and the directional channel pipeline.

A :class:`PCIeChannel` is one direction of the device<->host path of
Fig. 1: PHY serialization over the lanes, then the switch, then the root
complex (or the reverse).  Each hop is store-and-forward -- it must receive
a full TLP before forwarding it -- and has a fixed traversal latency
(Table II: 150 ns root complex, 50 ns switch) plus a per-TLP processing
occupancy that bounds its packet rate.

Timing per transaction (a train of ``n`` TLPs):

* the wire serializes ``payload + n * header`` bytes at the effective
  bandwidth (lanes x lane rate x encoding efficiency),
* each hop delays the train by its latency plus one TLP serialization
  (store-and-forward fill),
* hop processing occupancies bound the sustainable TLP rate, so a slow
  hop, not the wire, can be the bottleneck for small TLPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.interconnect.pcie.tlp import TLPParams
from repro.sim.eventq import Simulator
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns, serialization_ticks

#: Per-generation (line rate Gb/s per lane, encoding numerator/denominator).
PCIE_GENERATIONS: Dict[int, Tuple[float, Tuple[int, int]]] = {
    1: (2.5, (8, 10)),
    2: (5.0, (8, 10)),
    3: (8.0, (128, 130)),
    4: (16.0, (128, 130)),
    5: (32.0, (128, 130)),
    6: (64.0, (242, 256)),
}


@dataclass(frozen=True)
class PCIeConfig:
    """Full configuration of a PCIe hierarchy.

    Defaults reproduce Table II of the paper: a Gen-2-style link with four
    lanes and 4 Gb/s effective per-lane rate (5 GT/s line rate with 8b/10b
    encoding), a 150 ns root complex and a 50 ns switch.
    """

    lanes: int = 4
    lane_gbps: float = 5.0
    encoding: Tuple[int, int] = (8, 10)
    tlp: TLPParams = field(default_factory=TLPParams)
    rc_latency: int = ns(150)
    switch_latency: int = ns(50)
    #: Per-TLP processing occupancy (packet-rate bound) at each component.
    rc_tlp_occupancy: int = ns(4)
    switch_tlp_occupancy: int = ns(2)
    #: Receive buffer per store-and-forward hop.  A TLP larger than half
    #: the buffer cannot overlap reception with transmission, so oversized
    #: packets stall the pipeline at each component (the paper's Fig. 4
    #: right branch).
    hop_buffer_bytes: int = 5632
    #: Maximum outstanding non-posted (read) requests a device may keep
    #: in flight; enforced by the requester (DMA engine).
    max_tags: int = 32

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16, 32):
            raise ValueError(f"invalid lane count {self.lanes}")
        if self.lane_gbps <= 0:
            raise ValueError(f"lane rate must be positive, got {self.lane_gbps}")
        num, den = self.encoding
        if not 0 < num <= den:
            raise ValueError(f"invalid encoding {self.encoding}")

    @classmethod
    def from_generation(
        cls, gen: int, lanes: int = 4, **overrides
    ) -> "PCIeConfig":
        """Build a config from a PCIe generation preset."""
        try:
            lane_gbps, encoding = PCIE_GENERATIONS[gen]
        except KeyError:
            raise ValueError(
                f"unknown PCIe generation {gen}; known: {sorted(PCIE_GENERATIONS)}"
            ) from None
        return cls(lanes=lanes, lane_gbps=lane_gbps, encoding=encoding, **overrides)

    @property
    def raw_bytes_per_sec(self) -> int:
        """Line-rate bandwidth across all lanes, before encoding."""
        return round(self.lanes * self.lane_gbps * 10**9 / 8)

    @property
    def effective_bytes_per_sec(self) -> int:
        """Usable bandwidth after encoding overhead."""
        num, den = self.encoding
        return round(self.raw_bytes_per_sec * num / den)

    def describe(self) -> str:
        """One-line summary used by benchmark reports."""
        return (
            f"PCIe x{self.lanes} @ {self.lane_gbps} Gb/s/lane "
            f"({self.effective_bytes_per_sec / 1e9:.1f} GB/s effective, "
            f"MPS {self.tlp.max_payload} B)"
        )


def tlp_params_for(config: PCIeConfig, txn: Transaction) -> TLPParams:
    """Packetization for one transaction (honours ``txn.packet_size``)."""
    if (
        txn.packet_size is not None
        and txn.packet_size != config.tlp.max_payload
    ):
        return TLPParams(
            max_payload=txn.packet_size,
            header_bytes=config.tlp.header_bytes,
        )
    return config.tlp


def train_timing(
    config: PCIeConfig, tlp: TLPParams, payload_bytes: int, force_tlps: int
) -> Tuple[int, int, int, int]:
    """Shared TLP-train arithmetic for every channel/link model.

    Returns ``(n_tlps, wire_bytes, serialize_ticks, tlp_fill_ticks)``:
    the TLP count (``force_tlps`` overrides header-only trains), the
    on-wire byte total, the serialization time *including* the
    store-and-forward credit stall for TLPs larger than half a hop
    buffer, and one (largest) TLP's wire time -- the per-hop
    store-and-forward fill.  The flat :class:`PCIeChannel` and the
    topology fabric's ``SwitchLink`` both build their timing from this
    single definition, so the degenerate-case bit-identity cannot drift.
    """
    bandwidth = config.effective_bytes_per_sec
    n_tlps = max(tlp.num_tlps(payload_bytes), force_tlps)
    wire_bytes = max(0, payload_bytes) + n_tlps * tlp.header_bytes
    serialize = serialization_ticks(wire_bytes, bandwidth)
    per_tlp_payload = min(max(payload_bytes, 0), tlp.max_payload)
    buffer_bytes = config.hop_buffer_bytes
    if 2 * per_tlp_payload > buffer_bytes:
        serialize = serialize * 2 * per_tlp_payload // buffer_bytes
    tlp_fill = serialization_ticks(
        tlp.tlp_wire_bytes(payload_bytes), bandwidth
    )
    return n_tlps, wire_bytes, serialize, tlp_fill


class PCIeChannel(SimObject):
    """One direction of the PCIe hierarchy (a train of hops).

    ``hops`` is a list of ``(latency, per_tlp_occupancy)`` pairs in
    traversal order; the standard device->host path is switch then root
    complex.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: PCIeConfig,
        hops: List[Tuple[int, int]] | None = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        if hops is None:
            hops = [
                (config.switch_latency, config.switch_tlp_occupancy),
                (config.rc_latency, config.rc_tlp_occupancy),
            ]
        self.hops = hops
        self._total_hop_latency = sum(latency for latency, _ in hops)
        self._max_occupancy = max(
            (occupancy for _, occupancy in hops), default=0
        )
        self._wire_free_at = 0
        self._last_arrival = 0
        #: Fault-injection state (:class:`repro.faults.injector
        #: .LinkFaultState`); attached by the system's fault model, None
        #: on every fault-free run.
        self.faults = None
        #: Telemetry hook (:class:`repro.telemetry.tracer.LinkTrace`);
        #: attached by the telemetry runtime, None when tracing is off.
        self.trace = None

        self._tlps = self.stats.scalar("tlps", "TLPs carried")
        self._payload_bytes = self.stats.scalar("payload_bytes", "payload carried")
        self._wire_byte_stat = self.stats.scalar(
            "wire_bytes", "bytes on the wire incl. headers"
        )
        self._busy_ticks = self.stats.scalar("busy_ticks", "wire occupancy")

    def reset_state(self) -> None:
        super().reset_state()
        self._wire_free_at = 0
        self._last_arrival = 0
        if self.faults is not None:
            self.faults.reset()

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def deliver(
        self,
        txn: Transaction,
        payload_bytes: int,
        on_arrive,
        force_tlps: int = 0,
    ) -> None:
        """Carry ``payload_bytes`` of ``txn`` and fire ``on_arrive(txn)``.

        ``payload_bytes`` may be zero (header-only read request) or differ
        from ``txn.size`` (a fabric sends the request header up but the
        completion payload down).  ``force_tlps`` overrides the TLP count
        for header-only trains: a read of N bytes issues one request TLP
        per packet-size chunk, not a single request.
        """
        tlp = tlp_params_for(self.config, txn)
        n_tlps, wire_bytes, serialize, tlp_wire_ticks = train_timing(
            self.config, tlp, payload_bytes, force_tlps
        )
        # Wire occupancy: serialization (with the oversized-TLP credit
        # stall folded in by train_timing), or the packet-rate bound of
        # the slowest hop if that is slower than the wire.
        occupancy = max(serialize, n_tlps * self._max_occupancy)

        start = max(self.now, self._wire_free_at)
        if self.faults is not None:
            stall, occupancy = self.faults.adjust(
                start, occupancy, n_tlps, tlp_wire_ticks
            )
            start += stall
        self._wire_free_at = start + occupancy

        # Store-and-forward: each hop adds its latency plus one TLP
        # serialization before the head of the train moves on.  Arrivals
        # are FIFO: PCIe ordering rules forbid overtaking within a
        # virtual channel, so a short train never passes a long one.
        pipeline_fill = self._total_hop_latency + len(self.hops) * tlp_wire_ticks
        arrival = max(start + occupancy + pipeline_fill, self._last_arrival)
        self._last_arrival = arrival

        self._tlps.inc(n_tlps)
        self._payload_bytes.inc(max(0, payload_bytes))
        self._wire_byte_stat.inc(wire_bytes)
        self._busy_ticks.inc(occupancy)
        if self.trace is not None:
            self.trace.tlp_train(start, occupancy, n_tlps, payload_bytes)
        self.schedule_at(arrival, lambda: on_arrive(txn))

    @property
    def backlog_ticks(self) -> int:
        """How far in the future the wire is already committed."""
        return max(0, self._wire_free_at - self.now)

    @property
    def utilization_window(self) -> float:
        """Busy fraction so far (for reports)."""
        return self._busy_ticks.value / self.now if self.now else 0.0
