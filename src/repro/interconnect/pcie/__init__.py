"""PCIe interconnect model.

Implements the PCIe components of Fig. 1:

* :mod:`~repro.interconnect.pcie.tlp` -- transaction-layer packet math
  (header overhead, fragmentation at the max payload size),
* :mod:`~repro.interconnect.pcie.link` -- lane/speed/encoding config
  (:class:`PCIeConfig`), generation presets and the directional
  :class:`PCIeChannel` pipeline (PHY serialization -> switch -> root
  complex, each store-and-forward with Table II latencies),
* :mod:`~repro.interconnect.pcie.fabric` -- :class:`PCIeFabric`, the
  device's window onto host memory (DMA reads/writes as request/completion
  round trips) and the host's window onto the device (MMIO),
* :mod:`~repro.interconnect.pcie.config_space` -- configuration-space
  enumeration and BAR assignment used by the kernel-driver model.
"""

from repro.interconnect.pcie.tlp import TLPParams
from repro.interconnect.pcie.link import PCIE_GENERATIONS, PCIeChannel, PCIeConfig
from repro.interconnect.pcie.fabric import PCIeFabric
from repro.interconnect.pcie.config_space import (
    BAR,
    ConfigSpace,
    PCIeFunction,
)

__all__ = [
    "TLPParams",
    "PCIeConfig",
    "PCIeChannel",
    "PCIeFabric",
    "PCIE_GENERATIONS",
    "PCIeFunction",
    "ConfigSpace",
    "BAR",
]
