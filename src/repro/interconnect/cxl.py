"""CXL-style coherent interconnect (framework extension).

The paper's conclusion motivates exploring *standard interconnects* for
next-generation accelerators; CXL is the obvious successor to plain PCIe
for memory-semantic traffic.  This module models a CXL.mem-class link as
a configuration of the generic channel machinery:

* rides a PCIe Gen-5/6 PHY (same lanes/rates/encoding),
* **flit-based**: fixed 68-byte flits carrying a 64-byte payload slot --
  4 bytes of overhead per 64-byte line, with no large-packet
  store-and-forward penalty (flits are small and fixed),
* **no switch hop**: a device port directly attached to the host bridge
  with port latencies an order of magnitude below the PCIe root
  complex + switch path (~25 ns vs ~200 ns),
* requests are per-cacheline (M2S MemRd), so header-only request trains
  scale with the line count, not the packet-size knob.

What this buys, measurably (``benchmarks/bench_ext_cxl.py``): streaming
GEMM performance comparable to a fat PCIe link, but a several-fold
reduction of the Fig. 8 NUMA penalty -- the CPU's uncached line accesses
to device memory are latency-bound, and CXL's short pipeline is exactly
what shortens them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.interconnect.pcie.fabric import PCIeFabric
from repro.interconnect.pcie.link import PCIeConfig
from repro.interconnect.pcie.tlp import TLPParams
from repro.sim.eventq import Simulator
from repro.sim.ports import TargetPort
from repro.sim.ticks import ns

#: CXL flit geometry: 64-byte slot + 4 bytes of CRC/header amortized.
CXL_FLIT_PAYLOAD = 64
CXL_FLIT_OVERHEAD = 4

#: Port traversal latency per direction (device port or host bridge).
CXL_PORT_LATENCY = ns(25)
#: Per-flit processing occupancy at a port.
CXL_PORT_OCCUPANCY = ns(1)


def cxl_link_config(
    lanes: int = 8,
    lane_gbps: float = 32.0,
    encoding: Tuple[int, int] = (242, 256),
    max_tags: int = 64,
) -> PCIeConfig:
    """Link configuration for a CXL-style port on a Gen-5/6 PHY."""
    return PCIeConfig(
        lanes=lanes,
        lane_gbps=lane_gbps,
        encoding=encoding,
        tlp=TLPParams(
            max_payload=CXL_FLIT_PAYLOAD, header_bytes=CXL_FLIT_OVERHEAD
        ),
        rc_latency=CXL_PORT_LATENCY,
        switch_latency=0,
        rc_tlp_occupancy=CXL_PORT_OCCUPANCY,
        switch_tlp_occupancy=0,
        # Flits never exceed the hop buffer: no store-and-forward stall.
        hop_buffer_bytes=1 << 20,
        max_tags=max_tags,
    )


def cxl_hops(config: PCIeConfig) -> List[Tuple[int, int]]:
    """The single port hop of a directly-attached CXL device."""
    return [(config.rc_latency, config.rc_tlp_occupancy)]


class CXLFabric(PCIeFabric):
    """A device<->host fabric with CXL link characteristics.

    Drop-in replacement for :class:`PCIeFabric`: same ``device_read`` /
    ``device_write`` / ``host_access`` protocol, different physics.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[PCIeConfig] = None,
        host_target: Optional[TargetPort] = None,
    ) -> None:
        config = config or cxl_link_config()
        super().__init__(
            sim, name, config, host_target, hops=cxl_hops(config)
        )

    def describe(self) -> str:
        return (
            f"CXL x{self.config.lanes} @ {self.config.lane_gbps} Gb/s/lane "
            f"({self.config.effective_bytes_per_sec / 1e9:.1f} GB/s, "
            f"68B flits, {self.config.rc_latency / 1000:.0f} ns port)"
        )
