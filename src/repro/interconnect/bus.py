"""Coherent memory bus (MemBus).

The MemBus connects the CPU cluster, the memory controller and the PCIe
root complex (Fig. 1 of the paper).  It provides:

* address-ranged routing to downstream targets,
* bounded bandwidth (``width`` bytes per cycle at the bus clock) plus a
  fixed forward latency, modelled as a pipelined shared medium,
* a snoop path: registered snoopers (caches) are invalidated when a write
  from a *different* source crosses the bus, the lightweight coherency
  model the paper adds between the accelerator cache and the CPU cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.simobject import ClockedObject
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


class MemBus(ClockedObject, TargetPort):
    """Address-routed, bandwidth-limited coherent crossbar.

    Parameters
    ----------
    freq_hz:
        Bus clock.
    width:
        Bytes moved per bus cycle (the crossbar width).
    latency:
        Fixed forward latency in ticks (arbitration + crossbar traversal).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        freq_hz: float = 1e9,
        width: int = 64,
        latency: int = ns(10),
    ) -> None:
        ClockedObject.__init__(self, sim, name, freq_hz)
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        self.width = width
        self.latency = latency
        self._targets: List[Tuple[AddrRange, TargetPort]] = []
        self._snoopers: List[Tuple[str, object]] = []
        self._wire_free_at = 0

        self._txns = self.stats.scalar("transactions", "transactions routed")
        self._bytes = self.stats.scalar("bytes", "bytes moved")
        self._snoop_invalidations = self.stats.scalar(
            "snoop_invalidations", "snoop-triggered line invalidations"
        )
        self._unrouted = self.stats.scalar("unrouted", "transactions with no target")

    def reset_state(self) -> None:
        super().reset_state()
        self._wire_free_at = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, range_: AddrRange, target: TargetPort) -> None:
        """Route ``range_`` to ``target``.  Ranges must not overlap."""
        for existing, _ in self._targets:
            if existing.overlaps(range_):
                raise ValueError(
                    f"range {range_} overlaps existing route {existing}"
                )
        self._targets.append((range_, target))

    def add_snooper(self, source_name: str, cache) -> None:
        """Register a cache to be invalidated by other masters' writes.

        ``source_name`` is matched (by prefix) against ``txn.source`` so a
        cache never snoops its own traffic.
        """
        self._snoopers.append((source_name, cache))

    def route(self, addr: int) -> Optional[TargetPort]:
        """Target serving ``addr``, or None."""
        for range_, target in self._targets:
            if range_.contains(addr):
                return target
        return None

    # ------------------------------------------------------------------
    # TargetPort interface
    # ------------------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        target = self.route(txn.addr)
        if target is None:
            self._unrouted.inc()
            raise ValueError(
                f"{self.name}: no route for address {txn.addr:#x} "
                f"({len(self._targets)} ranges attached)"
            )
        self._txns.inc()
        self._bytes.inc(txn.size)

        # Writes and read-for-ownership fetches invalidate sharers.
        if txn.is_write or txn.for_ownership:
            self._snoop_write(txn)

        cycles_needed = -(-txn.size // self.width)
        occupancy = cycles_needed * self.clock_period
        start = max(self.now, self._wire_free_at)
        self._wire_free_at = start + occupancy
        arrival = start + occupancy + self.latency
        self.schedule_at(arrival, lambda: target.send(txn, on_complete))

    def _snoop_write(self, txn: Transaction) -> None:
        """Invalidate other masters' cached copies of a written range."""
        for source_name, cache in self._snoopers:
            if txn.source.startswith(source_name):
                continue
            dropped = cache.invalidate_range(txn.addr, txn.size)
            if dropped:
                self._snoop_invalidations.inc(dropped)

    @property
    def backlog_ticks(self) -> int:
        """How far in the future the crossbar is already committed."""
        return max(0, self._wire_free_at - self.now)
