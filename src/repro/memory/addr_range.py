"""Address range algebra.

:class:`AddrRange` is a half-open interval ``[start, end)`` used for routing
decisions on the memory bus and for carving the physical address map
(host DRAM, device memory, MMIO windows).  :class:`InterleavedRange` maps a
flat range across multiple channels at a fixed granularity, as the DRAM
controllers do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class AddrRange:
    """Half-open address interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start must be non-negative, got {self.start}")
        if self.end < self.start:
            raise ValueError(
                f"range end {self.end:#x} precedes start {self.start:#x}"
            )

    @classmethod
    def from_size(cls, start: int, size: int) -> "AddrRange":
        """Build a range from a start address and a byte size."""
        return cls(start, start + size)

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside the range."""
        return self.start <= addr < self.end

    def contains_range(self, other: "AddrRange") -> bool:
        """True if ``other`` lies fully inside this range."""
        if other.size == 0:
            return self.contains(other.start) or other.start == self.end
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddrRange") -> bool:
        """True if the two ranges share at least one byte."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddrRange") -> Optional["AddrRange"]:
        """The overlapping sub-range, or None if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return AddrRange(start, end)

    def offset(self, addr: int) -> int:
        """Byte offset of ``addr`` from the start of the range."""
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside range {self}")
        return addr - self.start

    def __str__(self) -> str:
        return f"[{self.start:#x}, {self.end:#x})"


class InterleavedRange:
    """A flat range striped across ``num_channels`` at ``granularity`` bytes.

    Channel selection uses the classic modulo scheme::

        channel = (addr // granularity) % num_channels

    which is what multi-channel DRAM controllers (and the HBM2/DDR5 presets
    of Table III) use.
    """

    def __init__(self, base: AddrRange, num_channels: int, granularity: int) -> None:
        if num_channels <= 0:
            raise ValueError(f"need at least one channel, got {num_channels}")
        if granularity <= 0 or granularity & (granularity - 1):
            raise ValueError(f"granularity must be a power of two, got {granularity}")
        self.base = base
        self.num_channels = num_channels
        self.granularity = granularity

    def channel_of(self, addr: int) -> int:
        """Channel index serving ``addr``."""
        offset = self.base.offset(addr)
        return (offset // self.granularity) % self.num_channels

    def split(self, start: int, size: int) -> List[tuple[int, int, int]]:
        """Split ``[start, start+size)`` into per-channel contiguous pieces.

        Returns a list of ``(channel, addr, size)`` tuples in address order.
        """
        pieces: List[tuple[int, int, int]] = []
        addr = start
        end = start + size
        gran = self.granularity
        while addr < end:
            chunk_end = min(end, (addr // gran + 1) * gran)
            pieces.append((self.channel_of(addr), addr, chunk_end - addr))
            addr = chunk_end
        return pieces


def disjoint(ranges: Iterable[AddrRange]) -> bool:
    """True if no two ranges in the iterable overlap."""
    ordered = sorted(ranges, key=lambda r: r.start)
    for left, right in zip(ordered, ordered[1:]):
        if left.overlaps(right):
            return False
    return True
