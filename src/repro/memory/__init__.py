"""Memory subsystem: address ranges, backing store, and timing models.

Three memory models are provided, mirroring what Gem5-AcceSys uses:

* :class:`~repro.memory.simple.SimpleMemory` -- fixed latency + bandwidth
  (gem5's ``SimpleMemory``); used for the bandwidth/latency sweeps of
  Fig. 6.
* :class:`~repro.memory.dram.DRAMController` -- a bank-state timing model
  in the style of Ramulator2 / DRAMsim3, with per-technology presets
  (:mod:`repro.memory.dram.devices`) for every row of Table III; used for
  the memory-technology comparison of Fig. 5.
* :class:`~repro.memory.physmem.PhysicalMemory` -- the functional backing
  store (sparse, numpy-backed) shared by all timing models.
"""

from repro.memory.addr_range import AddrRange, InterleavedRange
from repro.memory.physmem import PhysicalMemory
from repro.memory.simple import SimpleMemory
from repro.memory.dram import DRAMController, DRAMTimings
from repro.memory.dram.devices import (
    DDR3_1600,
    DDR4_2400,
    DDR5_3200,
    GDDR5,
    GDDR6,
    HBM2,
    LPDDR5,
    MEMORY_PRESETS,
)

__all__ = [
    "AddrRange",
    "InterleavedRange",
    "PhysicalMemory",
    "SimpleMemory",
    "DRAMController",
    "DRAMTimings",
    "DDR3_1600",
    "DDR4_2400",
    "DDR5_3200",
    "GDDR5",
    "GDDR6",
    "HBM2",
    "LPDDR5",
    "MEMORY_PRESETS",
]
