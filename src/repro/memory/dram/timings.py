"""DRAM device timing and geometry parameters.

All time parameters are expressed in nanoseconds (converted to ticks by the
controller); geometry follows the usual channel / rank / bank / row / column
hierarchy.  The parameter set is the subset of a full DDR datasheet that
first-order bank-state models (Ramulator's ``DDR*`` presets, gem5's
``DRAMInterface``) actually exercise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """Timing and geometry for one DRAM technology.

    Parameters mirror datasheet names:

    * ``data_rate_mts`` -- transfers per second per pin (MT/s).
    * ``data_width_bits`` -- channel data bus width.
    * ``burst_length`` -- transfers per column command (BL).
    * ``t_cl/t_rcd/t_rp/t_ras/t_rfc/t_refi`` -- classic core timings (ns).
    * ``row_buffer_bytes`` -- page size per bank.
    """

    name: str
    data_rate_mts: int
    channels: int
    data_width_bits: int
    burst_length: int
    banks: int
    ranks: int = 1
    row_buffer_bytes: int = 8192
    t_cl: float = 14.0
    t_rcd: float = 14.0
    t_rp: float = 14.0
    t_ras: float = 33.0
    t_rfc: float = 350.0
    t_refi: float = 7800.0
    #: Static controller pipeline latency (queueing/decode), ns.
    t_ctrl: float = 20.0

    def __post_init__(self) -> None:
        if self.data_rate_mts <= 0:
            raise ValueError("data rate must be positive")
        if self.channels <= 0:
            raise ValueError("need at least one channel")
        if self.data_width_bits % 8:
            raise ValueError("data width must be a whole number of bytes")
        if self.burst_length <= 0 or self.banks <= 0:
            raise ValueError("burst length and banks must be positive")
        if self.row_buffer_bytes <= 0 or self.row_buffer_bytes & (self.row_buffer_bytes - 1):
            raise ValueError("row buffer size must be a power of two")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def t_ck_ns(self) -> float:
        """Clock period in ns (DDR: two transfers per clock)."""
        return 2000.0 / self.data_rate_mts

    @property
    def burst_bytes(self) -> int:
        """Bytes moved by one burst (column command) on one channel."""
        return self.data_width_bits // 8 * self.burst_length

    @property
    def t_burst_ns(self) -> float:
        """Data-bus occupancy of one burst in ns."""
        return self.burst_length / 2 * self.t_ck_ns

    @property
    def channel_bandwidth(self) -> int:
        """Peak bandwidth of one channel in bytes per second."""
        return self.data_rate_mts * 10**6 * (self.data_width_bits // 8)

    @property
    def total_bandwidth(self) -> int:
        """Peak bandwidth across all channels in bytes per second."""
        return self.channel_bandwidth * self.channels

    @property
    def t_rc_ns(self) -> float:
        """Row cycle time (activate-to-activate, same bank)."""
        return self.t_ras + self.t_rp

    def describe(self) -> str:
        """One-line summary used by benchmark reports."""
        return (
            f"{self.name}: {self.channels}ch x {self.data_width_bits}b "
            f"@ {self.data_rate_mts} MT/s = "
            f"{self.total_bandwidth / 1e9:.1f} GB/s"
        )
