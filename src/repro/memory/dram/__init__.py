"""Bank-state DRAM timing model (Ramulator2 / DRAMsim3 style).

The controller models, per channel: a shared data bus, per-bank row-buffer
state with activate/precharge/CAS timing (tRCD / tRP / tCL / tRAS / tCCD),
and periodic refresh (tREFI / tRFC).  Technology presets corresponding to
Table III of the paper (plus the Fig. 5 extras) live in
:mod:`repro.memory.dram.devices`.
"""

from repro.memory.dram.timings import DRAMTimings
from repro.memory.dram.controller import DRAMController

__all__ = ["DRAMTimings", "DRAMController"]
