"""DRAM technology presets.

The five rows of Table III in the paper, plus the GDDR5 and LPDDR5 devices
used by the Fig. 5 memory-location study.  Bandwidths reproduce the table
exactly:

=========  ========  ===========  ===========  ==========
Device     Channels  Data width   Bandwidth    Data rate
=========  ========  ===========  ===========  ==========
DDR3       1         64           12.8 GB/s    1600 MT/s
DDR4       1         64           19.2 GB/s    2400 MT/s
DDR5       2         32           25.6 GB/s    3200 MT/s
HBM2       2         128          64 GB/s      2000 MT/s
GDDR6      2         64           32 GB/s      2000 MT/s
=========  ========  ===========  ===========  ==========

Core timings are representative datasheet values; the experiments depend on
the bandwidth ordering and the latency class, not on vendor-exact nanosecond
figures.
"""

from __future__ import annotations

from typing import Dict

from repro.memory.dram.timings import DRAMTimings

DDR3_1600 = DRAMTimings(
    name="DDR3-1600",
    data_rate_mts=1600,
    channels=1,
    data_width_bits=64,
    burst_length=8,
    banks=8,
    row_buffer_bytes=8192,
    t_cl=13.75,
    t_rcd=13.75,
    t_rp=13.75,
    t_ras=35.0,
    t_rfc=260.0,
    t_refi=7800.0,
)

DDR4_2400 = DRAMTimings(
    name="DDR4-2400",
    data_rate_mts=2400,
    channels=1,
    data_width_bits=64,
    burst_length=8,
    banks=16,
    row_buffer_bytes=8192,
    t_cl=14.16,
    t_rcd=14.16,
    t_rp=14.16,
    t_ras=32.0,
    t_rfc=350.0,
    t_refi=7800.0,
)

DDR5_3200 = DRAMTimings(
    name="DDR5-3200",
    data_rate_mts=3200,
    channels=2,
    data_width_bits=32,
    burst_length=16,
    banks=32,
    row_buffer_bytes=8192,
    t_cl=15.0,
    t_rcd=15.0,
    t_rp=15.0,
    t_ras=32.0,
    t_rfc=295.0,
    t_refi=3900.0,
)

HBM2 = DRAMTimings(
    name="HBM2",
    data_rate_mts=2000,
    channels=2,
    data_width_bits=128,
    burst_length=4,
    banks=16,
    row_buffer_bytes=2048,
    t_cl=14.0,
    t_rcd=14.0,
    t_rp=14.0,
    t_ras=33.0,
    t_rfc=260.0,
    t_refi=3900.0,
)

GDDR6 = DRAMTimings(
    name="GDDR6",
    data_rate_mts=2000,
    channels=2,
    data_width_bits=64,
    burst_length=16,
    banks=16,
    row_buffer_bytes=2048,
    t_cl=15.0,
    t_rcd=15.0,
    t_rp=15.0,
    t_ras=32.0,
    t_rfc=260.0,
    t_refi=3900.0,
)

GDDR5 = DRAMTimings(
    name="GDDR5",
    data_rate_mts=1750,
    channels=2,
    data_width_bits=64,
    burst_length=8,
    banks=16,
    row_buffer_bytes=2048,
    t_cl=15.0,
    t_rcd=15.0,
    t_rp=15.0,
    t_ras=32.0,
    t_rfc=260.0,
    t_refi=3900.0,
)

LPDDR5 = DRAMTimings(
    name="LPDDR5",
    data_rate_mts=3200,
    channels=2,
    data_width_bits=32,
    burst_length=16,
    banks=16,
    row_buffer_bytes=4096,
    t_cl=18.0,
    t_rcd=18.0,
    t_rp=21.0,
    t_ras=42.0,
    t_rfc=280.0,
    t_refi=3900.0,
)

#: Name -> preset registry used by configs and the CLI examples.
MEMORY_PRESETS: Dict[str, DRAMTimings] = {
    preset.name: preset
    for preset in (DDR3_1600, DDR4_2400, DDR5_3200, HBM2, GDDR6, GDDR5, LPDDR5)
}


def preset_by_name(name: str) -> DRAMTimings:
    """Look up a preset by its Table III name (case-insensitive)."""
    for key, preset in MEMORY_PRESETS.items():
        if key.lower() == name.lower():
            return preset
    raise KeyError(
        f"unknown memory preset {name!r}; available: {sorted(MEMORY_PRESETS)}"
    )
