"""DRAM energy accounting.

The paper's memory backends (DRAMsim3, Ramulator) report power as well as
timing; this module provides the equivalent: an event-energy model in the
style of Micron's DDR power calculator.  Energy is integrated from the
controller's event counters:

* one activate/precharge pair per row miss (``e_act_pj``),
* read/write burst energy per byte moved (``e_rd_pj_per_byte`` /
  ``e_wr_pj_per_byte``),
* refresh energy per REF command (``e_ref_pj``),
* background power per channel for the whole elapsed window
  (``p_background_mw``).

Per-technology coefficients are representative datasheet-derived values;
as with the timing presets, the experiments depend on relative ordering
(HBM spends less energy per bit than DDR at the same traffic), not on
vendor-exact picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.ticks import TICKS_PER_SEC


@dataclass(frozen=True)
class DRAMEnergyParams:
    """Event-energy coefficients for one technology."""

    e_act_pj: float = 900.0
    e_rd_pj_per_byte: float = 15.0
    e_wr_pj_per_byte: float = 16.0
    e_ref_pj: float = 25000.0
    p_background_mw: float = 100.0

    def __post_init__(self) -> None:
        if min(self.e_act_pj, self.e_rd_pj_per_byte,
               self.e_wr_pj_per_byte, self.e_ref_pj,
               self.p_background_mw) < 0:
            raise ValueError("energy coefficients must be non-negative")


#: Representative coefficients by technology family name prefix.
ENERGY_PRESETS: Dict[str, DRAMEnergyParams] = {
    "DDR3": DRAMEnergyParams(e_act_pj=1200.0, e_rd_pj_per_byte=22.0,
                             e_wr_pj_per_byte=24.0, p_background_mw=120.0),
    "DDR4": DRAMEnergyParams(e_act_pj=1000.0, e_rd_pj_per_byte=16.0,
                             e_wr_pj_per_byte=18.0, p_background_mw=100.0),
    "DDR5": DRAMEnergyParams(e_act_pj=900.0, e_rd_pj_per_byte=12.0,
                             e_wr_pj_per_byte=14.0, p_background_mw=110.0),
    "HBM2": DRAMEnergyParams(e_act_pj=700.0, e_rd_pj_per_byte=6.0,
                             e_wr_pj_per_byte=7.0, p_background_mw=180.0),
    "GDDR": DRAMEnergyParams(e_act_pj=850.0, e_rd_pj_per_byte=11.0,
                             e_wr_pj_per_byte=12.0, p_background_mw=150.0),
    "LPDDR": DRAMEnergyParams(e_act_pj=800.0, e_rd_pj_per_byte=8.0,
                              e_wr_pj_per_byte=9.0, p_background_mw=40.0),
}


def energy_params_for(device_name: str) -> DRAMEnergyParams:
    """Coefficients for a device by Table III name (prefix match)."""
    for prefix, params in ENERGY_PRESETS.items():
        if device_name.upper().startswith(prefix):
            return params
    return DRAMEnergyParams()


@dataclass
class EnergyReport:
    """Integrated energy for one run window."""

    activate_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    def average_power_mw(self, elapsed_ticks: int) -> float:
        """Average power over the window in milliwatts."""
        if elapsed_ticks <= 0:
            return 0.0
        seconds = elapsed_ticks / TICKS_PER_SEC
        return self.total_nj * 1e-9 / seconds * 1e3

    def energy_per_bit_pj(self, bytes_moved: int) -> float:
        """Total energy per transferred bit in picojoules."""
        if bytes_moved <= 0:
            return 0.0
        return self.total_nj * 1000.0 / (bytes_moved * 8)


def integrate_energy(
    params: DRAMEnergyParams,
    activates: float,
    bytes_read: float,
    bytes_written: float,
    refreshes: float,
    channels: int,
    elapsed_ticks: int,
) -> EnergyReport:
    """Fold event counters into an :class:`EnergyReport` (nanojoules)."""
    seconds = elapsed_ticks / TICKS_PER_SEC
    background_nj = params.p_background_mw * 1e-3 * channels * seconds * 1e9
    return EnergyReport(
        activate_nj=activates * params.e_act_pj * 1e-3,
        read_nj=bytes_read * params.e_rd_pj_per_byte * 1e-3,
        write_nj=bytes_written * params.e_wr_pj_per_byte * 1e-3,
        refresh_nj=refreshes * params.e_ref_pj * 1e-3,
        background_nj=background_nj,
    )
