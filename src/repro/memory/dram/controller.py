"""Bank-state DRAM controller.

Models, per channel:

* a shared data bus (one burst at a time, ``tBURST`` occupancy),
* per-bank row-buffer state -- a column access to the open row proceeds
  immediately (row hit), otherwise the bank precharges (``tRP``, honouring
  ``tRAS``) and activates (``tRCD``, honouring ``tRC``) first,
* periodic refresh: every ``tREFI`` the channel is dead for ``tRFC``.

Transactions are contiguous, so the controller walks them one *row segment*
at a time (a run of bursts hitting the same bank row): one activate decision
followed by pipelined bursts.  This keeps the Python cost per transaction at
a handful of iterations while charging exactly the same bus occupancy and
activate penalties a per-burst walk would.

Address mapping (channel-local): column bits, then bank, then row --
consecutive row-buffer-sized blocks land on consecutive banks, giving
streaming workloads bank-level parallelism, the standard mapping for
bandwidth-optimized controllers.  Channels interleave at burst granularity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.addr_range import AddrRange
from repro.memory.dram.timings import DRAMTimings
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


class _Bank:
    """Row-buffer state for one bank."""

    __slots__ = ("open_row", "ready_at", "act_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0
        self.act_at = -(10**15)


class _Channel:
    """Per-channel bus, bank array and refresh state."""

    __slots__ = ("banks", "bus_free_at", "next_refresh_at")

    def __init__(self, num_banks: int, t_refi: int) -> None:
        self.banks = [_Bank() for _ in range(num_banks)]
        self.bus_free_at = 0
        self.next_refresh_at = t_refi


class DRAMController(TargetPort):
    """Multi-channel DRAM with bank-state timing.

    Parameters
    ----------
    timings:
        Technology preset (see :mod:`repro.memory.dram.devices`).
    range_:
        Physical address range served.
    backing:
        Optional functional store.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timings: DRAMTimings,
        range_: AddrRange,
        backing: Optional[PhysicalMemory] = None,
    ) -> None:
        super().__init__(sim, name)
        self.timings = timings
        self.range = range_
        self.backing = backing

        t = timings
        self._t_burst = ns(t.t_burst_ns)
        self._t_cl = ns(t.t_cl)
        self._t_rcd = ns(t.t_rcd)
        self._t_rp = ns(t.t_rp)
        self._t_ras = ns(t.t_ras)
        self._t_rc = ns(t.t_rc_ns)
        self._t_rfc = ns(t.t_rfc)
        self._t_refi = ns(t.t_refi)
        self._t_ctrl = ns(t.t_ctrl)
        self._burst_bytes = t.burst_bytes
        self._row_bytes = t.row_buffer_bytes
        self._num_banks = t.banks * t.ranks
        #: Channel interleave granularity: one burst, at least a cache line.
        self._interleave = max(64, t.burst_bytes)

        self._channels = [
            _Channel(self._num_banks, self._t_refi) for _ in range(t.channels)
        ]

        self._reads = self.stats.scalar("reads", "read transactions")
        self._writes = self.stats.scalar("writes", "write transactions")
        self._bytes = self.stats.scalar("bytes", "bytes transferred")
        self._bytes_read = self.stats.scalar("bytes_read", "bytes read")
        self._bytes_written = self.stats.scalar("bytes_written", "bytes written")
        self._bursts = self.stats.scalar("bursts", "column commands issued")
        self._row_hits = self.stats.scalar("row_hits", "row-buffer hits")
        self._row_misses = self.stats.scalar("row_misses", "row-buffer misses")
        self._refreshes = self.stats.scalar("refresh_stalls", "bursts delayed by refresh")

    def reset_state(self) -> None:
        super().reset_state()
        self._channels = [
            _Channel(self._num_banks, self._t_refi)
            for _ in range(self.timings.channels)
        ]

    # ------------------------------------------------------------------
    # TargetPort interface
    # ------------------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        if not self.range.contains(txn.addr):
            raise ValueError(
                f"{self.name}: address {txn.addr:#x} outside {self.range}"
            )
        if txn.is_read:
            self._reads.inc()
            self._bytes_read.inc(txn.size)
        else:
            self._writes.inc()
            self._bytes_written.inc(txn.size)
        self._bytes.inc(txn.size)

        offset = txn.addr - self.range.start
        arrive = self.now + self._t_ctrl
        finish = arrive
        num_ch = len(self._channels)
        if num_ch == 1:
            finish = self._access_channel(0, offset, txn.size, arrive)
        else:
            for ch_idx, local_addr, local_size in self._split_channels(
                offset, txn.size
            ):
                done = self._access_channel(ch_idx, local_addr, local_size, arrive)
                finish = max(finish, done)

        if self.backing is not None:
            self._functional_access(txn)
        self.schedule_at(finish, lambda: on_complete(txn))

    # ------------------------------------------------------------------
    # Channel striping
    # ------------------------------------------------------------------
    def _split_channels(self, offset: int, size: int) -> List[tuple[int, int, int]]:
        """Stripe a contiguous access across channels.

        Returns ``(channel, channel_local_addr, bytes)`` per channel.  The
        channel-local address is the global offset compressed by the channel
        count, which preserves the stride/locality structure that the bank
        and row mapping depend on.  Byte counts are exact: partial head and
        tail blocks are charged only for the bytes actually touched.
        """
        gran = self._interleave
        num_ch = len(self._channels)
        first_block = offset // gran
        last_block = (offset + size - 1) // gran
        head_missing = offset - first_block * gran
        tail_missing = (last_block + 1) * gran - (offset + size)
        pieces: List[tuple[int, int, int]] = []
        for ch in range(num_ch):
            first_for_ch = first_block + (ch - first_block) % num_ch
            if first_for_ch > last_block:
                continue
            nblocks = (last_block - first_for_ch) // num_ch + 1
            last_for_ch = first_for_ch + (nblocks - 1) * num_ch
            nbytes = nblocks * gran
            local_addr = (first_for_ch // num_ch) * gran
            if first_for_ch == first_block:
                nbytes -= head_missing
                local_addr += head_missing
            if last_for_ch == last_block:
                nbytes -= tail_missing
            pieces.append((ch, local_addr, nbytes))
        return pieces

    # ------------------------------------------------------------------
    # Bank-state walk
    # ------------------------------------------------------------------
    def _access_channel(self, ch_idx: int, addr: int, size: int, start: int) -> int:
        """Walk ``[addr, addr+size)`` on one channel; return finish tick."""
        channel = self._channels[ch_idx]
        row_bytes = self._row_bytes
        burst_bytes = self._burst_bytes
        finish = start
        pos = addr
        end = addr + size
        while pos < end:
            block = pos // row_bytes
            seg_end = min(end, (block + 1) * row_bytes)
            nbursts = -(-(seg_end - pos) // burst_bytes)
            bank = channel.banks[block % self._num_banks]
            row = block // self._num_banks

            ready = max(bank.ready_at, start)
            if bank.open_row != row:
                if bank.open_row is not None:
                    pre_at = max(ready, bank.act_at + self._t_ras)
                    ready = pre_at + self._t_rp
                act_at = max(ready, bank.act_at + self._t_rc)
                bank.act_at = act_at
                bank.open_row = row
                ready = act_at + self._t_rcd
                self._row_misses.inc()
                self._row_hits.inc(nbursts - 1)
            else:
                self._row_hits.inc(nbursts)

            data_at = max(ready, channel.bus_free_at)
            # Refresh blackout: catch up past any elapsed refresh windows.
            while data_at >= channel.next_refresh_at:
                blocked = max(data_at, channel.next_refresh_at + self._t_rfc)
                if blocked > data_at:
                    self._refreshes.inc()
                data_at = blocked
                channel.next_refresh_at += self._t_refi

            done = data_at + nbursts * self._t_burst
            channel.bus_free_at = done
            bank.ready_at = done
            self._bursts.inc(nbursts)
            finish = max(finish, done + self._t_cl)
            pos = seg_end
        return finish

    def _functional_access(self, txn: Transaction) -> None:
        if txn.is_read:
            txn.data = self.backing.read(txn.addr, txn.size)
        elif txn.data is not None:
            self.backing.write(txn.addr, txn.data)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        """Fraction of bursts that hit an open row."""
        hits = self._row_hits.value
        total = hits + self._row_misses.value
        return hits / total if total else 0.0

    def energy_report(self, elapsed_ticks: int | None = None):
        """Integrated energy over the run (DRAMsim3-style power stats).

        ``elapsed_ticks`` defaults to the current simulation time.
        Activates are counted from row misses; refreshes from elapsed
        tREFI windows per channel.
        """
        from repro.memory.dram.energy import energy_params_for, integrate_energy

        elapsed = self.sim.now if elapsed_ticks is None else elapsed_ticks
        refreshes = (elapsed // self._t_refi) * len(self._channels)
        return integrate_energy(
            energy_params_for(self.timings.name),
            activates=self._row_misses.value,
            bytes_read=self._bytes_read.value,
            bytes_written=self._bytes_written.value,
            refreshes=refreshes,
            channels=len(self._channels),
            elapsed_ticks=elapsed,
        )
