"""Bank-state DRAM controller.

Models, per channel:

* a shared data bus (one burst at a time, ``tBURST`` occupancy),
* per-bank row-buffer state -- a column access to the open row proceeds
  immediately (row hit), otherwise the bank precharges (``tRP``, honouring
  ``tRAS``) and activates (``tRCD``, honouring ``tRC``) first,
* periodic refresh: every ``tREFI`` the channel is dead for ``tRFC``.

Transactions are contiguous, so the controller walks them one *row segment*
at a time (a run of bursts hitting the same bank row): one activate decision
followed by pipelined bursts.  This keeps the Python cost per transaction at
a handful of iterations while charging exactly the same bus occupancy and
activate penalties a per-burst walk would.

Address mapping (channel-local): column bits, then bank, then row --
consecutive row-buffer-sized blocks land on consecutive banks, giving
streaming workloads bank-level parallelism, the standard mapping for
bandwidth-optimized controllers.  Channels interleave at burst granularity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.addr_range import AddrRange
from repro.memory.dram.timings import DRAMTimings
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import MemCmd, Transaction
from repro.sim.ticks import ns


class _Bank:
    """Row-buffer state for one bank."""

    __slots__ = ("open_row", "ready_at", "act_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0
        self.act_at = -(10**15)


class _Channel:
    """Per-channel bus, bank array and refresh state."""

    __slots__ = ("banks", "bus_free_at", "next_refresh_at")

    def __init__(self, num_banks: int, t_refi: int) -> None:
        self.banks = [_Bank() for _ in range(num_banks)]
        self.bus_free_at = 0
        self.next_refresh_at = t_refi


class DRAMController(TargetPort):
    """Multi-channel DRAM with bank-state timing.

    Parameters
    ----------
    timings:
        Technology preset (see :mod:`repro.memory.dram.devices`).
    range_:
        Physical address range served.
    backing:
        Optional functional store.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timings: DRAMTimings,
        range_: AddrRange,
        backing: Optional[PhysicalMemory] = None,
    ) -> None:
        super().__init__(sim, name)
        self.timings = timings
        self.range = range_
        self.backing = backing

        t = timings
        self._t_burst = ns(t.t_burst_ns)
        self._t_cl = ns(t.t_cl)
        self._t_rcd = ns(t.t_rcd)
        self._t_rp = ns(t.t_rp)
        self._t_ras = ns(t.t_ras)
        self._t_rc = ns(t.t_rc_ns)
        self._t_rfc = ns(t.t_rfc)
        self._t_refi = ns(t.t_refi)
        self._t_ctrl = ns(t.t_ctrl)
        self._burst_bytes = t.burst_bytes
        self._row_bytes = t.row_buffer_bytes
        self._num_banks = t.banks * t.ranks
        #: Channel interleave granularity: one burst, at least a cache line.
        self._interleave = max(64, t.burst_bytes)
        #: Hot-loop timing bundle: one attribute load + unpack in
        #: _access_channel instead of eight attribute loads.
        self._timing = (
            self._t_burst, self._t_cl, self._t_rcd, self._t_rp,
            self._t_ras, self._t_rc, self._t_rfc, self._t_refi,
        )

        self._channels = [
            _Channel(self._num_banks, self._t_refi) for _ in range(t.channels)
        ]
        #: Striping memo: (offset % (interleave * channels), size) ->
        #: relative channel pieces.  DMA traffic repeats a handful of
        #: aligned segment shapes, so the division-heavy split loop runs
        #: once per shape instead of once per transaction (the striping
        #: arithmetic is a pure function of the phase and size).
        self._split_memo: dict = {}
        self._split_period = self._interleave * t.channels

        self._reads = self.stats.scalar("reads", "read transactions")
        self._writes = self.stats.scalar("writes", "write transactions")
        self._bytes = self.stats.scalar("bytes", "bytes transferred")
        self._bytes_read = self.stats.scalar("bytes_read", "bytes read")
        self._bytes_written = self.stats.scalar("bytes_written", "bytes written")
        self._bursts = self.stats.scalar("bursts", "column commands issued")
        self._row_hits = self.stats.scalar("row_hits", "row-buffer hits")
        self._row_misses = self.stats.scalar("row_misses", "row-buffer misses")
        self._refreshes = self.stats.scalar("refresh_stalls", "bursts delayed by refresh")

    def reset_state(self) -> None:
        super().reset_state()
        self._channels = [
            _Channel(self._num_banks, self._t_refi)
            for _ in range(self.timings.channels)
        ]

    # ------------------------------------------------------------------
    # TargetPort interface
    # ------------------------------------------------------------------
    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        addr = txn.addr
        if not self.range.contains(addr):
            raise ValueError(
                f"{self.name}: address {addr:#x} outside {self.range}"
            )
        # Batched stat update: bump the counters directly and mark the
        # group dirty once (equivalent to inc() per counter, fewer calls).
        size = txn.size
        if txn.cmd is MemCmd.READ:
            self._reads.value += 1
            self._bytes_read.value += size
        else:
            self._writes.value += 1
            self._bytes_written.value += size
        self._bytes.value += size
        self.stats.dirty = True

        offset = addr - self.range.start
        arrive = self.sim.now + self._t_ctrl
        finish = arrive
        if len(self._channels) == 1:
            finish = self._access_channel(0, offset, size, arrive)
        else:
            access = self._access_channel
            pieces, shift = self._split_rebased(offset, size)
            for ch_idx, local_addr, local_size in pieces:
                done = access(ch_idx, local_addr + shift, local_size, arrive)
                if done > finish:
                    finish = done

        if self.backing is not None:
            self._functional_access(txn)
        self.sim.schedule_at(
            finish, lambda: on_complete(txn), name=self.name
        )

    # ------------------------------------------------------------------
    # Channel striping
    # ------------------------------------------------------------------
    def _split_channels(self, offset: int, size: int) -> List[tuple[int, int, int]]:
        """Stripe a contiguous access across channels.

        Returns ``(channel, channel_local_addr, bytes)`` per channel.  The
        channel-local address is the global offset compressed by the channel
        count, which preserves the stride/locality structure that the bank
        and row mapping depend on.  Byte counts are exact: partial head and
        tail blocks are charged only for the bytes actually touched.

        The split depends on the offset only through its phase within one
        interleave period (``interleave * channels`` bytes): shifting the
        offset by a whole period shifts every channel-local address by one
        interleave block and changes nothing else.  ``_split_pieces``
        memoizes the per-phase result; ``_split_rebased`` computes the
        phase and shift (``send`` consumes that form directly so the hot
        loop skips this wrapper's list rebuild).
        """
        pieces, shift = self._split_rebased(offset, size)
        return [
            (ch, local_addr + shift, nbytes)
            for ch, local_addr, nbytes in pieces
        ]

    def _split_rebased(self, offset: int, size: int):
        """(memoized relative pieces, channel-local shift) for ``offset``."""
        period = self._split_period
        base = offset // period
        return (
            self._split_pieces(offset - base * period, size),
            base * self._interleave,
        )

    def _split_pieces(self, phase: int, size: int) -> List[tuple[int, int, int]]:
        """Memoized striping for one (phase, size) shape (see above)."""
        key = (phase, size)
        pieces = self._split_memo.get(key)
        if pieces is not None:
            return pieces
        gran = self._interleave
        num_ch = len(self._channels)
        pieces = []
        first_block = phase // gran
        last_block = (phase + size - 1) // gran
        head_missing = phase - first_block * gran
        tail_missing = (last_block + 1) * gran - (phase + size)
        for ch in range(num_ch):
            first_for_ch = first_block + (ch - first_block) % num_ch
            if first_for_ch > last_block:
                continue
            nblocks = (last_block - first_for_ch) // num_ch + 1
            last_for_ch = first_for_ch + (nblocks - 1) * num_ch
            nbytes = nblocks * gran
            local_addr = (first_for_ch // num_ch) * gran
            if first_for_ch == first_block:
                nbytes -= head_missing
                local_addr += head_missing
            if last_for_ch == last_block:
                nbytes -= tail_missing
            pieces.append((ch, local_addr, nbytes))
        if len(self._split_memo) < 4096:
            # Real workloads cycle through a handful of aligned shapes;
            # the cap only guards pathological random-offset streams.
            self._split_memo[key] = pieces
        return pieces

    # ------------------------------------------------------------------
    # Bank-state walk
    # ------------------------------------------------------------------
    def _access_channel(self, ch_idx: int, addr: int, size: int, start: int) -> int:
        """Walk ``[addr, addr+size)`` on one channel; return finish tick.

        The timing constants and per-segment stat counts are bound to /
        accumulated in locals: this method runs once per channel piece of
        every memory transaction, which makes it the hottest pure-Python
        loop in DRAM-bound sweeps.
        """
        channel = self._channels[ch_idx]
        banks = channel.banks
        row_bytes = self._row_bytes
        burst_bytes = self._burst_bytes
        num_banks = self._num_banks
        t_burst, t_cl, t_rcd, t_rp, t_ras, t_rc, t_rfc, t_refi = self._timing
        bus_free_at = channel.bus_free_at
        next_refresh_at = channel.next_refresh_at
        row_hits = row_misses = bursts = refreshes = 0
        finish = start
        pos = addr
        end = addr + size
        while pos < end:
            block = pos // row_bytes
            seg_end = (block + 1) * row_bytes
            if seg_end > end:
                seg_end = end
            nbursts = -(-(seg_end - pos) // burst_bytes)
            bank = banks[block % num_banks]
            row = block // num_banks

            ready = bank.ready_at
            if ready < start:
                ready = start
            if bank.open_row != row:
                act_at = bank.act_at
                if bank.open_row is not None:
                    pre_at = act_at + t_ras
                    if pre_at < ready:
                        pre_at = ready
                    ready = pre_at + t_rp
                if act_at + t_rc > ready:
                    act_at += t_rc
                else:
                    act_at = ready
                bank.act_at = act_at
                bank.open_row = row
                ready = act_at + t_rcd
                row_misses += 1
                row_hits += nbursts - 1
            else:
                row_hits += nbursts

            data_at = ready if ready > bus_free_at else bus_free_at
            # Refresh blackout: catch up past any elapsed refresh windows.
            while data_at >= next_refresh_at:
                blocked = next_refresh_at + t_rfc
                if blocked > data_at:
                    refreshes += 1
                else:
                    blocked = data_at
                data_at = blocked
                next_refresh_at += t_refi

            done = data_at + nbursts * t_burst
            bus_free_at = done
            bank.ready_at = done
            bursts += nbursts
            if done + t_cl > finish:
                finish = done + t_cl
            pos = seg_end
        channel.bus_free_at = bus_free_at
        channel.next_refresh_at = next_refresh_at
        self._row_hits.value += row_hits
        self._row_misses.value += row_misses
        self._bursts.value += bursts
        self._refreshes.value += refreshes
        self.stats.dirty = True
        return finish

    def _functional_access(self, txn: Transaction) -> None:
        if txn.is_read:
            txn.data = self.backing.read(txn.addr, txn.size)
        elif txn.data is not None:
            self.backing.write(txn.addr, txn.data)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        """Fraction of bursts that hit an open row."""
        hits = self._row_hits.value
        total = hits + self._row_misses.value
        return hits / total if total else 0.0

    def energy_report(self, elapsed_ticks: int | None = None):
        """Integrated energy over the run (DRAMsim3-style power stats).

        ``elapsed_ticks`` defaults to the current simulation time.
        Activates are counted from row misses; refreshes from elapsed
        tREFI windows per channel.
        """
        from repro.memory.dram.energy import energy_params_for, integrate_energy

        elapsed = self.sim.now if elapsed_ticks is None else elapsed_ticks
        refreshes = (elapsed // self._t_refi) * len(self._channels)
        return integrate_energy(
            energy_params_for(self.timings.name),
            activates=self._row_misses.value,
            bytes_read=self._bytes_read.value,
            bytes_written=self._bytes_written.value,
            refreshes=refreshes,
            channels=len(self._channels),
            elapsed_ticks=elapsed,
        )
