"""Functional backing store.

:class:`PhysicalMemory` holds the actual bytes behind a physical address
range.  It is *sparse*: storage is allocated in fixed-size frames on first
touch, so a simulated 4 GB DRAM costs only as much host memory as the
workload actually writes.  All timing models share one backing store per
memory device; timing-only runs never touch it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.memory.addr_range import AddrRange

#: Default sparse-allocation frame (2 MiB, like a huge page).
DEFAULT_FRAME_SIZE = 2 * 1024 * 1024


class PhysicalMemory:
    """Sparse byte-addressable backing store for an address range."""

    def __init__(self, range_: AddrRange, frame_size: int = DEFAULT_FRAME_SIZE) -> None:
        if frame_size <= 0 or frame_size & (frame_size - 1):
            raise ValueError(f"frame size must be a power of two, got {frame_size}")
        self.range = range_
        self.frame_size = frame_size
        self._frames: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _frame_for(self, addr: int, allocate: bool) -> np.ndarray | None:
        index = addr // self.frame_size
        frame = self._frames.get(index)
        if frame is None and allocate:
            frame = np.zeros(self.frame_size, dtype=np.uint8)
            self._frames[index] = frame
        return frame

    def _check(self, addr: int, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        span = AddrRange.from_size(addr, size)
        if not self.range.contains_range(span):
            raise ValueError(f"access {span} outside backing range {self.range}")

    # ------------------------------------------------------------------
    # Byte-level access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> np.ndarray:
        """Read ``size`` bytes starting at ``addr`` (unwritten bytes are 0)."""
        self._check(addr, size)
        out = np.empty(size, dtype=np.uint8)
        done = 0
        while done < size:
            cur = addr + done
            frame = self._frame_for(cur, allocate=False)
            offset = cur % self.frame_size
            chunk = min(size - done, self.frame_size - offset)
            if frame is None:
                out[done : done + chunk] = 0
            else:
                out[done : done + chunk] = frame[offset : offset + chunk]
            done += chunk
        return out

    def write(self, addr: int, data: np.ndarray) -> None:
        """Write ``data`` (uint8 array) starting at ``addr``."""
        flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._check(addr, flat.nbytes)
        done = 0
        size = flat.nbytes
        while done < size:
            cur = addr + done
            frame = self._frame_for(cur, allocate=True)
            offset = cur % self.frame_size
            chunk = min(size - done, self.frame_size - offset)
            frame[offset : offset + chunk] = flat[done : done + chunk]
            done += chunk

    # ------------------------------------------------------------------
    # Typed convenience accessors
    # ------------------------------------------------------------------
    def read_array(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        """Read a typed array of the given shape starting at ``addr``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        raw = self.read(addr, nbytes)
        return raw.view(dtype).reshape(shape).copy()

    def write_array(self, addr: int, array: np.ndarray) -> None:
        """Write a typed array starting at ``addr``."""
        self.write(addr, np.ascontiguousarray(array))

    def clear(self) -> None:
        """Drop every frame; all bytes read as zero again (fresh store)."""
        self._frames.clear()

    @property
    def allocated_bytes(self) -> int:
        """Host bytes actually allocated so far."""
        return len(self._frames) * self.frame_size
