"""Fixed latency/bandwidth memory (gem5 ``SimpleMemory`` equivalent).

Used where the experiments sweep latency and bandwidth as free parameters
(Fig. 6) and as the default device-side memory model when a bank-level DRAM
model is not required.  Timing: each transaction serializes on the device's
data port at the configured bandwidth and completes one access latency after
its serialization finishes; back-to-back transactions pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.addr_range import AddrRange
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.sim.ticks import serialization_ticks


class SimpleMemory(TargetPort):
    """Memory with a fixed access latency and a bandwidth-limited port.

    Parameters
    ----------
    latency:
        Ticks from end of serialization to data availability.
    bandwidth:
        Port bandwidth in bytes per second.
    range_:
        Physical address range served.
    backing:
        Optional functional store; when present, reads fill ``txn.data`` and
        writes commit it.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        range_: AddrRange,
        latency: int,
        bandwidth: int,
        backing: Optional[PhysicalMemory] = None,
    ) -> None:
        super().__init__(sim, name)
        self.range = range_
        self.latency = latency
        self.bandwidth = bandwidth
        self.backing = backing
        self._port_free_at = 0
        self._reads = self.stats.scalar("reads", "read transactions")
        self._writes = self.stats.scalar("writes", "write transactions")
        self._bytes_read = self.stats.scalar("bytes_read", "bytes read")
        self._bytes_written = self.stats.scalar("bytes_written", "bytes written")
        self._busy_ticks = self.stats.scalar("busy_ticks", "port occupancy")

    def reset_state(self) -> None:
        super().reset_state()
        self._port_free_at = 0

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        if not self.range.contains(txn.addr):
            raise ValueError(
                f"{self.name}: address {txn.addr:#x} outside {self.range}"
            )
        if txn.is_read:
            self._reads.inc()
            self._bytes_read.inc(txn.size)
        else:
            self._writes.inc()
            self._bytes_written.inc(txn.size)

        serialize = serialization_ticks(txn.size, self.bandwidth)
        start = max(self.now, self._port_free_at)
        self._port_free_at = start + serialize
        self._busy_ticks.inc(serialize)
        done = start + serialize + self.latency

        if self.backing is not None:
            self._functional_access(txn)
        self.schedule_at(done, lambda: on_complete(txn))

    def _functional_access(self, txn: Transaction) -> None:
        """Move payload bytes to/from the backing store."""
        if txn.is_read:
            txn.data = self.backing.read(txn.addr, txn.size)
        elif txn.data is not None:
            self.backing.write(txn.addr, txn.data)

    @property
    def backlog_ticks(self) -> int:
        """How far in the future the data port is already committed."""
        return max(0, self._port_free_at - self.now)
