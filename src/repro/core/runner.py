"""Experiment drivers: the WorkloadRunner protocol, GEMM and ViT runs.

Every workload follows the same three-step shape, captured by
:class:`WorkloadRunner`: *acquire* a system for a configuration, *drive*
the workload through it (real MMIO launches, DMA traffic, CPU kernels),
and *snapshot* the statistics the harnesses report.  ``run_gemm`` and
``run_vit`` are thin wrappers over the two concrete runners, kept as
module-level functions for the public API.

System acquisition goes through :func:`system_for`, a per-process
memoized factory keyed on ``SystemConfig.stable_hash()``: re-running a
configuration reuses the already-wired :class:`AcceSysSystem` after an
explicit :meth:`~repro.core.system.AcceSysSystem.reset`, which restores
bit-identical pristine state.  This removes the system-construction cost
that dominates small-GEMM sweep grids (tag stores alone are tens of
thousands of objects).  Set ``REPRO_SYSTEM_MEMO=0`` to always build
fresh systems.

``run_vit`` walks a ViT op graph op by op: GEMMs dispatch to the
accelerator, non-GEMM operators to the CPU, with tensors placed in host
or device memory according to the configuration -- reproducing the
Section V-C/V-D experiments.  Repeated shapes are *memoized*: the first
instance of each (shape, packet, DMA-segment) tuple is simulated in full
and later instances replay its measured latency.  Transformer layers are
identical, so this cuts simulation cost by the layer count without
changing totals (micro-architectural state differences across layers are
second-order; DESIGN.md discusses the approximation).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.system import AcceSysSystem
from repro.cpu.nongemm import kernel_for_op
from repro.sim.ticks import ticks_to_seconds
from repro.workloads.gemm import GemmWorkload, pack_a_panels, pack_b_panels
from repro.workloads.ops import GemmOp, NonGemmOp, OpGraph
from repro.workloads.vit import VIT_VARIANTS, ViTConfig, build_vit_graph


@dataclass
class GemmResult:
    """Outcome of one GEMM launch."""

    config_name: str
    m: int
    k: int
    n: int
    ticks: int
    job_ticks: int
    traffic_bytes: int
    c_matrix: Optional[np.ndarray] = None
    table4: Optional[Dict[str, float]] = None
    component_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return ticks_to_seconds(self.ticks)

    @property
    def delivered_bytes_per_sec(self) -> float:
        """Sustained operand bandwidth over the job."""
        if self.job_ticks == 0:
            return 0.0
        return self.traffic_bytes / ticks_to_seconds(self.job_ticks)


@dataclass
class MultiGemmResult:
    """Outcome of concurrent GEMMs across an accelerator cluster."""

    config_name: str
    m: int
    k: int
    n: int
    num_devices: int
    #: Number of devices that actually launched work (contention knob).
    active_devices: int
    #: Completion tick per active device (launch order).
    device_ticks: list = field(default_factory=list)
    ticks: int = 0
    total_traffic_bytes: int = 0
    #: Busy fraction of the shared root-complex link pair (the max of the
    #: two directions) -- the endpoint-scaling saturation indicator.
    uplink_busy_frac: float = 0.0
    component_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return ticks_to_seconds(self.ticks)

    @property
    def aggregate_bytes_per_sec(self) -> float:
        """Cluster-wide sustained operand bandwidth over the run."""
        if self.ticks == 0:
            return 0.0
        return self.total_traffic_bytes / ticks_to_seconds(self.ticks)


@dataclass
class PeerTransferResult:
    """Outcome of one device-to-device transfer (P2P or host bounce)."""

    config_name: str
    mode: str
    size_bytes: int
    ticks: int
    #: Payload bytes that crossed the root-complex links (0 for pure P2P).
    root_complex_bytes: int = 0

    @property
    def seconds(self) -> float:
        return ticks_to_seconds(self.ticks)

    @property
    def bytes_per_sec(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.size_bytes / ticks_to_seconds(self.ticks)


@dataclass
class ViTResult:
    """Outcome of one ViT inference run."""

    config_name: str
    model_name: str
    total_ticks: int
    gemm_ticks: int
    nongemm_ticks: int
    op_ticks: Dict[str, int] = field(default_factory=dict)
    memo_hits: int = 0

    @property
    def seconds(self) -> float:
        return ticks_to_seconds(self.total_ticks)

    @property
    def nongemm_fraction(self) -> float:
        if self.total_ticks == 0:
            return 0.0
        return self.nongemm_ticks / self.total_ticks


# ----------------------------------------------------------------------
# Memoized system factory
# ----------------------------------------------------------------------
#: Environment kill switch: ``REPRO_SYSTEM_MEMO=0`` builds fresh systems.
SYSTEM_MEMO_ENV = "REPRO_SYSTEM_MEMO"
#: Retained systems per process (LRU).  Grids usually cycle through a
#: handful of configurations; unbounded retention would pin every tag
#: store of a many-config sweep in memory.
SYSTEM_MEMO_CAPACITY = 8

_system_memo: "OrderedDict[str, AcceSysSystem]" = OrderedDict()


def system_memo_enabled() -> bool:
    return os.environ.get(SYSTEM_MEMO_ENV, "1") != "0"


def clear_system_memo() -> None:
    """Drop every retained system (tests; frees their event state)."""
    _system_memo.clear()


def system_for(config: SystemConfig) -> AcceSysSystem:
    """A pristine system for ``config``: memoized per process.

    A cache hit returns the previously built system after an explicit
    :meth:`~repro.core.system.AcceSysSystem.reset`, which restores
    construction-time state exactly -- results are bit-identical to a
    fresh build (asserted by ``tests/test_system_reset.py``).  Keyed on
    the canonical config hash, so any field change builds a new system.

    Every acquisition passes through the telemetry layer: when a
    session is active (:func:`repro.telemetry.state.active`) the system
    gets its observation hooks attached here -- the single chokepoint
    that covers fresh builds and memoized reuse alike.  ``activate`` /
    ``deactivate`` clear the memo, so a session never inherits a
    hookless (or stale-hooked) system.
    """
    from repro.telemetry.state import on_system_acquired

    if not system_memo_enabled():
        system = AcceSysSystem(config)
        on_system_acquired(system)
        return system
    key = config.stable_hash()
    system = _system_memo.get(key)
    if system is not None:
        _system_memo.move_to_end(key)
        system.reset()
        on_system_acquired(system)
        return system
    system = AcceSysSystem(config)
    _system_memo[key] = system
    while len(_system_memo) > SYSTEM_MEMO_CAPACITY:
        _system_memo.popitem(last=False)
    on_system_acquired(system)
    return system


# ----------------------------------------------------------------------
# The runner protocol
# ----------------------------------------------------------------------
class WorkloadRunner:
    """The common shape of every experiment driver.

    ``run`` acquires a (memoized) system for the configuration and hands
    it to ``drive``, which launches the workload, drains the event queue
    and builds the result -- typically ending with a ``snapshot`` of the
    per-component statistics.  Sweep runners registered with
    :func:`repro.sweep.spec.register_runner` wrap concrete subclasses.
    """

    def acquire_system(self, config: SystemConfig) -> AcceSysSystem:
        return system_for(config)

    def drive(self, system: AcceSysSystem, **params):
        """Execute one workload on ``system`` and return its result."""
        raise NotImplementedError

    def snapshot(self, system: AcceSysSystem) -> Dict[str, float]:
        return _snapshot(system)

    def run(self, config: SystemConfig, **params):
        return self.drive(self.acquire_system(config), **params)


class GemmRunner(WorkloadRunner):
    """One C = A x B launch through the kernel driver."""

    def drive(
        self,
        system: AcceSysSystem,
        m: int,
        k: int,
        n: int,
        packet_size: Optional[int] = None,
        functional: bool = False,
        seed: int = 1234,
    ) -> GemmResult:
        config = system.config
        workload = GemmWorkload(m, k, n, seed=seed)

        a_addr = system.alloc_buffer("A", workload.a_bytes)
        b_addr = system.alloc_buffer("B", workload.b_bytes)
        c_addr = system.alloc_buffer("C", workload.c_bytes)

        a_data = b_data = None
        if functional:
            a_data, b_data = workload.generate()
            _write_operands(system, a_addr, b_addr, a_data, b_data)

        done: Dict[str, object] = {}

        def complete(job, stats) -> None:
            done["job"] = job
            done["stats"] = stats
            done["at"] = system.now

        system.driver.launch_gemm(
            m, k, n, a_addr, b_addr, c_addr, complete,
            packet_size=packet_size or config.packet_size,
            a_data=a_data, b_data=b_data,
        )
        system.run()
        if "stats" not in done:
            raise RuntimeError("GEMM job never completed (deadlock in wiring?)")

        job_stats = done["stats"]
        table4 = None
        if system.smmu is not None and not config.uses_device_memory:
            table4 = system.smmu.table4_metrics(done["at"])
        return GemmResult(
            config_name=config.name,
            m=m, k=k, n=n,
            ticks=done["at"],
            job_ticks=int(job_stats["ticks"]),
            traffic_bytes=int(
                job_stats["bytes_read"] + job_stats["bytes_written"]
            ),
            c_matrix=done["job"].c_result,
            table4=table4,
            component_stats=self.snapshot(system),
        )


def run_gemm(
    config: SystemConfig,
    m: int,
    k: int,
    n: int,
    packet_size: Optional[int] = None,
    functional: bool = False,
    seed: int = 1234,
) -> GemmResult:
    """Build (or reuse) a system, run one C = A x B job, and report."""
    if functional and not config.functional:
        config = config.with_(functional=True)
    return GemmRunner().run(
        config, m=m, k=k, n=n, packet_size=packet_size,
        functional=functional, seed=seed,
    )


def _write_operands(
    system: AcceSysSystem, a_addr: int, b_addr: int,
    a_data: np.ndarray, b_data: np.ndarray,
) -> None:
    """Place packed operands into the functional backing store."""
    packed_a = pack_a_panels(a_data)
    packed_b = pack_b_panels(b_data)
    if system.config.uses_device_memory:
        # DevMem addresses are physical already.
        system.devmem_backing.write(a_addr, packed_a)
        system.devmem_backing.write(b_addr, packed_b)
    else:
        backing = system.host_backing
        backing.write(system.driver.buffer_paddr("A"), packed_a)
        backing.write(system.driver.buffer_paddr("B"), packed_b)


def _snapshot(system: AcceSysSystem) -> Dict[str, float]:
    """A compact stat snapshot for reports.

    Cost is O(components touched since the last reset), not O(all
    stats): each ``StatGroup.flatten`` is memoized behind a dirty flag,
    and a freshly reset (memoized) system serves pristine rows computed
    once per process -- see :mod:`repro.sim.statistics`.  The returned
    dict is a fresh copy either way; values are bit-identical to a full
    walk.
    """
    out: Dict[str, float] = {}
    for component in (
        system.wrapper.systolic,
        system.wrapper.dma,
        system.fabric.up,
        system.fabric.down,
        system.llc,
        system.iocache,
        system.mem_ctrl,
        system.membus,
    ):
        for key, value in component.stats.flatten():
            out[key] = value
    if system.smmu is not None:
        for key, value in system.smmu.stats.flatten():
            out[key] = value
    return out


# ----------------------------------------------------------------------
# Multi-device runners (topology experiments)
# ----------------------------------------------------------------------
class MultiGemmRunner(WorkloadRunner):
    """Concurrent C = A x B launches, one per cluster device.

    Each active device pins its own operand buffers and receives its own
    doorbell; the jobs then contend for whatever the topology shares --
    the switch's upstream link, the root complex, the host memory
    system.  ``devices`` limits how many of the cluster's accelerators
    launch (the contention knob of the ``topo-contention`` sweep).
    """

    def drive(
        self,
        system: AcceSysSystem,
        m: int,
        k: int,
        n: int,
        devices: Optional[int] = None,
        packet_size: Optional[int] = None,
    ) -> MultiGemmResult:
        config = system.config
        total = len(system.drivers)
        active = total if devices is None else devices
        if not 1 <= active <= total:
            raise ValueError(
                f"devices={active} out of range 1..{total} "
                f"(cluster has {total} accelerator(s))"
            )
        workload = GemmWorkload(m, k, n)
        done: Dict[int, Dict[str, object]] = {}

        for index in range(active):
            driver = system.drivers[index]
            a = system.alloc_buffer(f"{driver.name}.A", workload.a_bytes,
                                    driver=driver)
            b = system.alloc_buffer(f"{driver.name}.B", workload.b_bytes,
                                    driver=driver)
            c = system.alloc_buffer(f"{driver.name}.C", workload.c_bytes,
                                    driver=driver)

            def complete(job, stats, i=index) -> None:
                done[i] = {"stats": stats, "at": system.now}

            driver.launch_gemm(
                m, k, n, a, b, c, complete,
                packet_size=packet_size or config.packet_size,
            )
        system.run()
        if len(done) != active:
            raise RuntimeError(
                f"only {len(done)}/{active} cluster jobs completed "
                f"(deadlock in topology wiring?)"
            )

        device_ticks = [done[i]["at"] for i in range(active)]
        ticks = max(device_ticks)
        traffic = sum(
            int(done[i]["stats"]["bytes_read"]
                + done[i]["stats"]["bytes_written"])
            for i in range(active)
        )
        return MultiGemmResult(
            config_name=config.name,
            m=m, k=k, n=n,
            num_devices=total,
            active_devices=active,
            device_ticks=device_ticks,
            ticks=ticks,
            total_traffic_bytes=traffic,
            # Busier direction of the shared root-complex pair; both the
            # switched fabric's SwitchLink and the classic PCIeChannel
            # expose the same saturation property.
            uplink_busy_frac=max(
                system.fabric.up.utilization_window,
                system.fabric.down.utilization_window,
            ),
            component_stats=self.snapshot(system),
        )

    def snapshot(self, system: AcceSysSystem) -> Dict[str, float]:
        out = _snapshot(system)
        for wrapper in system.wrappers[1:]:
            for component in (wrapper.systolic, wrapper.dma):
                for key, value in component.stats.flatten():
                    out[key] = value
        return out


def run_multi_gemm(
    config: SystemConfig,
    m: int,
    k: int,
    n: int,
    devices: Optional[int] = None,
    packet_size: Optional[int] = None,
) -> MultiGemmResult:
    """Run concurrent GEMMs across the configured accelerator cluster."""
    return MultiGemmRunner().run(
        config, m=m, k=k, n=n, devices=devices, packet_size=packet_size
    )


class PeerTransferRunner(WorkloadRunner):
    """One device-to-device transfer, peer-to-peer or host-bounced.

    ``mode="p2p"`` DMAs straight into the destination endpoint's scratch
    aperture (BAR1): the switch routes it below the root complex.
    ``mode="bounce"`` is the software path P2P replaces: the source
    device writes a pinned host buffer, then the destination device
    reads it back -- two full root-complex crossings plus host memory.
    """

    MODES = ("p2p", "bounce")

    def drive(
        self,
        system: AcceSysSystem,
        size_bytes: int,
        mode: str = "p2p",
    ) -> PeerTransferResult:
        from repro.dma import DMADescriptor, DMADirection

        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if len(system.wrappers) < 2:
            raise ValueError(
                "peer transfer needs a cluster of at least two accelerators "
                "(num_accelerators >= 2)"
            )
        done: Dict[str, int] = {}
        if mode == "p2p":
            if not system.endpoint_scratch:
                raise ValueError(
                    "p2p mode needs a switched PCIe topology (the classic "
                    "point-to-point fabric has no peer windows)"
                )
            window = system.endpoint_scratch[1].range
            if size_bytes > window.size:
                raise ValueError(
                    f"transfer of {size_bytes} bytes exceeds the destination "
                    f"scratch window ({window.size} bytes; sized by "
                    f"local_buffer_bytes)"
                )
            descriptor = DMADescriptor(
                addr=window.start, size=size_bytes,
                direction=DMADirection.DEVICE_TO_HOST, stream="P",
            )
            system.wrappers[0].dma.submit(
                descriptor, lambda _d: done.setdefault("at", system.now)
            )
        else:
            buffer_addr = system.drivers[0].pin_buffer(
                "peer.bounce", size_bytes
            )

            def read_back(_descriptor) -> None:
                fetch = DMADescriptor(
                    addr=buffer_addr, size=size_bytes,
                    direction=DMADirection.HOST_TO_DEVICE, stream="P",
                )
                system.wrappers[1].dma.submit(
                    fetch, lambda _d: done.setdefault("at", system.now)
                )

            push = DMADescriptor(
                addr=buffer_addr, size=size_bytes,
                direction=DMADirection.DEVICE_TO_HOST, stream="P",
            )
            system.wrappers[0].dma.submit(push, read_back)
        system.run()
        if "at" not in done:
            raise RuntimeError(f"{mode} transfer never completed")
        rc_bytes = int(
            system.fabric.up.stats["payload_bytes"].value
            + system.fabric.down.stats["payload_bytes"].value
        )
        return PeerTransferResult(
            config_name=system.config.name,
            mode=mode,
            size_bytes=size_bytes,
            ticks=done["at"],
            root_complex_bytes=rc_bytes,
        )


def run_peer_transfer(
    config: SystemConfig, size_bytes: int, mode: str = "p2p"
) -> PeerTransferResult:
    """Time one device-to-device transfer under ``config``."""
    return PeerTransferRunner().run(config, size_bytes=size_bytes, mode=mode)


# ----------------------------------------------------------------------
# ViT
# ----------------------------------------------------------------------
class ViTRunner(WorkloadRunner):
    """Full ViT inference: GEMMs on the accelerator, the rest on the CPU."""

    def drive(
        self,
        system: AcceSysSystem,
        model: str | ViTConfig = "base",
        memoize: bool = True,
        dim_scale: float = 1.0,
    ) -> ViTResult:
        config = system.config
        vit_config = _resolve_model(model, dim_scale)
        graph = build_vit_graph(vit_config)
        placement = _place_tensors(system, graph)

        gemm_memo: Dict[Tuple, int] = {}
        nongemm_memo: Dict[Tuple, int] = {}
        result = ViTResult(
            config_name=config.name,
            model_name=vit_config.name,
            total_ticks=0, gemm_ticks=0, nongemm_ticks=0,
        )
        state = {"index": 0, "op_start": 0}
        ops = graph.ops

        def next_op() -> None:
            if state["index"] >= len(ops):
                return
            op = ops[state["index"]]
            state["index"] += 1
            state["op_start"] = system.now
            if isinstance(op, GemmOp):
                run_gemm_op(op)
            else:
                run_nongemm_op(op)

        def account(op, elapsed: int) -> None:
            # Ops may share a name (e.g. graphs built outside
            # build_vit_graph); accumulate rather than overwrite so totals
            # stay consistent.
            result.op_ticks[op.name] = (
                result.op_ticks.get(op.name, 0) + elapsed
            )
            if isinstance(op, GemmOp):
                result.gemm_ticks += elapsed
            else:
                result.nongemm_ticks += elapsed

        def run_gemm_op(op: GemmOp) -> None:
            # The replayed latency depends on every knob that shapes a
            # launch: the shape, the on-wire packet size, and the DMA
            # read-request granularity (Fig. 7 overrides the segment size
            # per point, so it must key the memo).
            key = (
                "gemm", op.m, op.k, op.n,
                config.packet_size, config.dma_segment_bytes,
            )
            if memoize and key in gemm_memo:
                result.memo_hits += 1
                elapsed = gemm_memo[key] * op.batch
                account(op, elapsed)
                system.sim.schedule(elapsed, next_op)
                return

            a_ref = op.inputs[0]
            b_ref = op.inputs[1] if len(op.inputs) > 1 else op.inputs[0]
            c_ref = op.outputs[0]

            def complete(_job, _stats) -> None:
                elapsed = system.now - state["op_start"]
                gemm_memo[key] = elapsed
                remaining = (op.batch - 1) * elapsed
                account(op, elapsed * op.batch)
                system.sim.schedule(remaining, next_op)

            system.driver.launch_gemm(
                op.m, op.k, op.n,
                placement[a_ref]["dev"],
                placement[b_ref]["dev"],
                placement[c_ref]["dev"],
                complete,
                packet_size=config.packet_size,
            )

        def run_nongemm_op(op: NonGemmOp) -> None:
            # Shape key only: same operator over same element count
            # behaves identically regardless of which layer's tensors it
            # touches.
            key = (
                "nongemm", op.op_type, op.elements,
                len(op.inputs), len(op.outputs),
            )
            if memoize and key in nongemm_memo:
                result.memo_hits += 1
                elapsed = nongemm_memo[key]
                account(op, elapsed)
                system.sim.schedule(elapsed, next_op)
                return
            kernel = kernel_for_op(
                op.op_type,
                op.elements,
                [
                    (placement[ref]["cpu"], graph.tensors[ref])
                    for ref in op.inputs
                ],
                [
                    (placement[ref]["cpu"], graph.tensors[ref])
                    for ref in op.outputs
                ],
            )

            def complete(elapsed: int) -> None:
                nongemm_memo[key] = elapsed
                account(op, elapsed)
                system.sim.schedule(0, next_op)

            system.cpu.run_kernel(
                kernel.streams, kernel.compute_cycles, complete
            )

        next_op()
        system.run()
        if state["index"] < len(ops):
            raise RuntimeError(
                f"ViT run stalled at op {state['index']}/{len(ops)}"
            )
        result.total_ticks = system.now
        assert sum(result.op_ticks.values()) == (
            result.gemm_ticks + result.nongemm_ticks
        ), "per-op tick accounting drifted from the GEMM/non-GEMM totals"
        return result


def run_vit(
    config: SystemConfig,
    model: str | ViTConfig = "base",
    memoize: bool = True,
    dim_scale: float = 1.0,
) -> ViTResult:
    """Run one ViT inference through the full system.

    ``dim_scale`` scales hidden dimensions (benchmark harnesses use 0.5
    by default to keep run times reasonable; REPRO_FULL=1 restores 1.0).
    """
    return ViTRunner().run(
        config, model=model, memoize=memoize, dim_scale=dim_scale
    )


def _resolve_model(model: str | ViTConfig, dim_scale: float) -> ViTConfig:
    if isinstance(model, ViTConfig):
        config = model
    else:
        try:
            config = VIT_VARIANTS[model]
        except KeyError:
            raise ValueError(
                f"unknown ViT variant {model!r}; known: {sorted(VIT_VARIANTS)}"
            ) from None
    if dim_scale != 1.0:
        scaled_hidden = max(config.heads, int(config.hidden * dim_scale))
        scaled_hidden -= scaled_hidden % config.heads
        config = ViTConfig(
            name=f"{config.name}(x{dim_scale:g})",
            hidden=scaled_hidden,
            layers=config.layers,
            heads=config.heads,
            mlp_ratio=config.mlp_ratio,
            image_size=config.image_size,
            patch_size=config.patch_size,
        )
    return config


def _place_tensors(system: AcceSysSystem, graph: OpGraph) -> Dict[str, dict]:
    """Allocate every tensor; record CPU- and device-visible addresses.

    Tensors consumed by GEMMs are sized for the MatrixFlow *padded*
    layouts (panels are full 16-row/column blocks), so the accelerator's
    streaming reads never run past the pinned region.
    """
    required = dict(graph.tensors)
    for op in graph.ops:
        if not isinstance(op, GemmOp):
            continue
        eb = 4
        tiles_m = -(-op.m // 16)
        tiles_n = -(-op.n // 16)
        a_ref = op.inputs[0]
        b_ref = op.inputs[1] if len(op.inputs) > 1 else op.inputs[0]
        c_ref = op.outputs[0]
        needs = {
            a_ref: tiles_m * 16 * op.k * eb,
            b_ref: tiles_n * op.k * 16 * eb,
            c_ref: tiles_m * tiles_n * 256 * eb,
        }
        for ref, need in needs.items():
            required[ref] = max(required[ref], need)

    placement: Dict[str, dict] = {}
    uses_devmem = system.config.uses_device_memory
    for name, size in required.items():
        padded = max(size, 4096)
        if uses_devmem:
            addr = system.devmem_alloc.alloc(padded)
            placement[name] = {"cpu": addr, "dev": addr}
        else:
            dev_addr = system.driver.pin_buffer(name, padded)
            placement[name] = {
                "cpu": system.driver.buffer_paddr(name),
                "dev": dev_addr,
            }
    return placement
