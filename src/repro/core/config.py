"""System configuration and the paper's named configurations.

:class:`SystemConfig` aggregates every knob of the framework.  The
defaults reproduce Table II:

========================  =======================================
CPU                       ARM-class, 1 GHz
Data / instruction cache  64 kB / 32 kB
Last-level cache          2 MB
IOCache                   32 kB
Memory                    DDR3-1600, 4 GB
PCIe                      Gen-2-style, 4 lanes (2 GB/s effective)
PCIe root complex         150 ns
PCIe switch               50 ns
========================  =======================================

The classmethod presets build the four Section V-C systems (PCIe-2GB,
PCIe-8GB, PCIe-64GB, DevMem) with the memory types and packet sizes the
paper assigns to each.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.accel.systolic import SystolicParams
from repro.cache.cache import CacheParams
from repro.core.access_modes import AccessMode
from repro.faults.spec import FaultSpec
from repro.interconnect.pcie.link import PCIeConfig
from repro.memory.dram.devices import DDR3_1600, DDR4_2400, HBM2
from repro.memory.dram.timings import DRAMTimings
from repro.sim.ticks import ns
from repro.smmu.smmu import SMMUConfig
from repro.topology.description import TopologyDesc, flat_topology

GB = 10**9
GiB = 1 << 30


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build an :class:`AcceSysSystem`."""

    name: str = "table2-baseline"
    # CPU cluster -------------------------------------------------------
    cpu_freq_hz: float = 1e9
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(
            size=64 * 1024, assoc=4, hit_latency=ns(2), mshrs=8
        )
    )
    l1i_size: int = 32 * 1024
    llc: CacheParams = field(
        default_factory=lambda: CacheParams(
            size=2 * 1024 * 1024, assoc=16, hit_latency=ns(20), mshrs=32
        )
    )
    iocache: CacheParams = field(
        default_factory=lambda: CacheParams(
            size=32 * 1024, assoc=4, hit_latency=ns(4), mshrs=16
        )
    )
    # Host memory -------------------------------------------------------
    host_mem_bytes: int = 4 * GiB
    host_mem: DRAMTimings = DDR3_1600
    # Device memory -----------------------------------------------------
    devmem_bytes: int = 2 * GiB
    devmem: Optional[DRAMTimings] = None
    #: (latency_ticks, bytes_per_sec) for a SimpleMemory device memory;
    #: used when ``devmem`` is None and device memory is needed.
    devmem_simple: Tuple[int, int] = (ns(40), 64 * GB)
    # PCIe --------------------------------------------------------------
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    # SMMU (None disables accelerator-side translation) -----------------
    smmu: Optional[SMMUConfig] = field(default_factory=SMMUConfig)
    # Accelerator -------------------------------------------------------
    systolic: SystolicParams = field(default_factory=SystolicParams)
    local_buffer_bytes: int = 512 * 1024
    dma_channels: int = 4
    dma_tags: int = 32
    dma_segment_bytes: int = 4096
    prefetch_depth: int = 2
    reuse_a_panels: bool = False
    compute_ticks_override: Optional[int] = None
    # Access method and default packet size ------------------------------
    access_mode: AccessMode = AccessMode.DIRECT_CACHE
    packet_size: Optional[int] = None
    #: Allocate functional backing stores (needed for data verification).
    functional: bool = False
    #: Accelerator-cluster size: endpoints sharing the PCIe hierarchy.
    num_accelerators: int = 1
    #: Interconnect family: "pcie" (root complex + switch) or "cxl"
    #: (directly-attached flit-based port; see repro.interconnect.cxl).
    interconnect: str = "pcie"
    #: Interconnect tree (see repro.topology).  ``None`` with one
    #: accelerator keeps the classic point-to-point fabric (bit-identical
    #: to the flat model); ``None`` with a cluster compiles the default
    #: flat switch (every endpoint behind one shared upstream link).  An
    #: explicit description must have ``num_accelerators`` endpoints.
    topology: Optional[TopologyDesc] = None
    #: Requested event-domain count for intra-point PDES (see
    #: docs/PARALLEL.md).  1 runs the classic single-queue simulator;
    #: N > 1 partitions a switched topology into a host domain plus
    #: endpoint domains advanced in lockstep quantum rounds.  Rides
    #: ``to_canonical()`` like every field, so cache keys stay honest.
    domains: int = 1
    #: Deterministic fault-injection model (see repro.faults and
    #: docs/FAULTS.md).  ``None`` -- the default everywhere -- keeps the
    #: fault-free fast path bit-identical to a tree without the fault
    #: subsystem; a spec rides ``to_canonical()``/``stable_hash()`` so a
    #: faulty run can never alias a fault-free cache entry.
    faults: Optional[FaultSpec] = None

    # ------------------------------------------------------------------
    # Derived
    # ------------------------------------------------------------------
    @property
    def uses_device_memory(self) -> bool:
        return self.access_mode is AccessMode.DEVICE_MEMORY

    def with_(self, **overrides) -> "SystemConfig":
        """A copy with fields replaced (dataclasses.replace shorthand)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Paper presets
    # ------------------------------------------------------------------
    @classmethod
    def table2_baseline(cls, **overrides) -> "SystemConfig":
        """The default system of Table II."""
        return cls(**overrides)

    @classmethod
    def pcie_2gb(cls, **overrides) -> "SystemConfig":
        """Section V-C system 1: host memory, 2 GB/s PCIe, DDR4."""
        defaults = dict(
            name="PCIe-2GB",
            pcie=PCIeConfig(lanes=4, lane_gbps=5.0, encoding=(8, 10)),
            host_mem=DDR4_2400,
            packet_size=256,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def pcie_8gb(cls, **overrides) -> "SystemConfig":
        """Section V-C system 2: host memory, 8 GB/s PCIe, DDR4."""
        defaults = dict(
            name="PCIe-8GB",
            pcie=PCIeConfig(lanes=8, lane_gbps=8.0, encoding=(128, 130)),
            host_mem=DDR4_2400,
            packet_size=256,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def pcie_64gb(cls, **overrides) -> "SystemConfig":
        """Section V-C system 3: host memory, 64 GB/s PCIe, HBM2."""
        defaults = dict(
            name="PCIe-64GB",
            pcie=PCIeConfig(lanes=16, lane_gbps=32.0, encoding=(242, 256)),
            host_mem=HBM2,
            packet_size=256,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def devmem_system(cls, **overrides) -> "SystemConfig":
        """Section V-C system 4: device-side HBM2, 64 B bursts."""
        defaults = dict(
            name="DevMem",
            access_mode=AccessMode.DEVICE_MEMORY,
            devmem=HBM2,
            packet_size=64,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def cxl_host(cls, lanes: int = 8, lane_gbps: float = 32.0, **overrides):
        """Extension: host memory behind a CXL-style port (not in the
        paper; see repro.interconnect.cxl)."""
        from repro.interconnect.cxl import cxl_link_config

        defaults = dict(
            name="CXL-host",
            interconnect="cxl",
            pcie=cxl_link_config(lanes=lanes, lane_gbps=lane_gbps),
            host_mem=HBM2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def devmem_cxl(cls, lanes: int = 8, lane_gbps: float = 32.0, **overrides):
        """Extension: device-side memory with CPU access over CXL."""
        from repro.interconnect.cxl import cxl_link_config

        defaults = dict(
            name="DevMem-CXL",
            interconnect="cxl",
            access_mode=AccessMode.DEVICE_MEMORY,
            devmem=HBM2,
            pcie=cxl_link_config(lanes=lanes, lane_gbps=lane_gbps),
            packet_size=64,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_systems(cls) -> dict:
        """The four Section V-C configurations, keyed by paper name."""
        return {
            "PCIe-2GB": cls.pcie_2gb(),
            "PCIe-8GB": cls.pcie_8gb(),
            "PCIe-64GB": cls.pcie_64gb(),
            "DevMem": cls.devmem_system(),
        }

    @classmethod
    def named_systems(cls) -> dict:
        """Every named configuration: paper systems, the Table II
        baseline, and the CXL presets.  One registry shared by the CLI
        and the orchestrator, so a system name in a run manifest means
        the same hardware on every machine."""
        systems = cls.paper_systems()
        systems["Table2"] = cls.table2_baseline()
        systems["CXL-host"] = cls.cxl_host()
        systems["DevMem-CXL"] = cls.devmem_cxl()
        return systems

    @classmethod
    def by_name(cls, name: str) -> "SystemConfig":
        """Case-insensitive lookup in :meth:`named_systems`."""
        systems = cls.named_systems()
        for key, config in systems.items():
            if key.lower() == name.lower():
                return config
        raise KeyError(
            f"unknown system {name!r}; choose from {sorted(systems)}"
        )

    def with_pcie_bandwidth(
        self, lanes: int, lane_gbps: float, encoding: Tuple[int, int] = (128, 130)
    ) -> "SystemConfig":
        """Copy with a different PCIe link (Fig. 3 sweeps).

        Uses :func:`dataclasses.replace` so every field not named here --
        including ones added to :class:`PCIeConfig` later -- carries over.
        """
        return self.with_(
            pcie=replace(
                self.pcie, lanes=lanes, lane_gbps=lane_gbps, encoding=encoding
            )
        )

    def with_topology(self, topology: TopologyDesc) -> "SystemConfig":
        """Copy with an explicit interconnect tree.

        ``num_accelerators`` is synced to the topology's endpoint count,
        so ``base.with_topology(balanced_tree(8))`` is a complete
        8-device system description.
        """
        return self.with_(
            topology=topology, num_accelerators=topology.num_endpoints
        )

    def effective_topology(self) -> Optional[TopologyDesc]:
        """The tree the system will compile, or ``None`` for the classic
        point-to-point fabric (single device, no explicit topology)."""
        if self.topology is not None:
            return self.topology
        if self.num_accelerators > 1 and self.interconnect == "pcie":
            return flat_topology(self.num_accelerators)
        return None

    def with_domains(self, domains: int) -> "SystemConfig":
        """Copy requesting ``domains`` synchronized event domains.

        The request is a *ceiling*: :meth:`effective_domains` clamps it
        to what the topology can support, so one sweep-wide knob works
        across points of different endpoint counts.
        """
        if domains < 1:
            raise ValueError(f"need at least one domain, got {domains}")
        return self.with_(domains=domains)

    def effective_domains(self) -> int:
        """The domain count the system will actually run with.

        A partition needs structure to cut along: no switched topology
        (or a non-PCIe interconnect) means one domain -- the classic,
        golden-pinned single-queue engine.  Otherwise the request clamps
        to one host domain plus at most one domain per endpoint.
        """
        if self.domains <= 1:
            return 1
        topo = self.effective_topology()
        if topo is None or self.interconnect != "pcie":
            return 1
        return min(self.domains, 1 + topo.num_endpoints)

    def with_faults(self, faults: Optional[FaultSpec]) -> "SystemConfig":
        """Copy with a fault-injection model (``None`` removes it)."""
        return self.with_(faults=faults)

    def with_packet_size(self, packet_size: int) -> "SystemConfig":
        """Copy with a different request packet size (Fig. 4 sweeps)."""
        new_pcie = replace(
            self.pcie, tlp=replace(self.pcie.tlp, max_payload=packet_size)
        )
        return self.with_(pcie=new_pcie, packet_size=packet_size)

    # ------------------------------------------------------------------
    # Canonical serialization and hashing (sweep cache keys)
    # ------------------------------------------------------------------
    def to_canonical(self) -> dict:
        """A JSON-safe nested dict capturing every configuration field.

        Nested dataclasses (cache/PCIe/DRAM/SMMU/systolic parameters) are
        expanded recursively and enums collapse to their values, so two
        configs are equal iff their canonical forms are equal.
        """
        return canonical_value(self)

    def stable_hash(self) -> str:
        """A hex digest stable across processes and interpreter runs.

        Unlike ``hash()``, this does not depend on ``PYTHONHASHSEED``;
        the sweep result cache uses it to key results on disk.
        """
        payload = json.dumps(
            self.to_canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_value(obj):
    """Recursively convert ``obj`` into JSON-serializable primitives.

    Dataclasses become ``{"__type__": name, **fields}``, enums their
    ``.value``, tuples lists; scalars pass through.  Raises ``TypeError``
    for anything else so un-hashable configuration never silently
    aliases a cache entry.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical_value(getattr(obj, f.name))
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): canonical_value(val) for key, val in sorted(obj.items())}
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")
