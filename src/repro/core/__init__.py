"""Gem5-AcceSys core: configuration, system assembly and experiments.

This package is the paper's contribution proper -- the framework that
wires PCIe, SMMU, DMA, device memory and the accelerator into a full
system and runs the evaluation:

* :mod:`~repro.core.config` -- :class:`SystemConfig` and the paper's
  named configurations (Table II baseline, PCIe-2GB/8GB/64GB, DevMem),
* :mod:`~repro.core.access_modes` -- the DC / DM / DevMem access methods,
* :mod:`~repro.core.system` -- :class:`AcceSysSystem`, the full-system
  builder (Fig. 1),
* :mod:`~repro.core.runner` -- GEMM and ViT experiment drivers,
* :mod:`~repro.core.roofline` -- the Fig. 2 roofline sweep,
* :mod:`~repro.core.analytical` -- the Section V-D.2 GEMM/non-GEMM
  trade-off model (Fig. 9),
* :mod:`~repro.core.stats` -- stat collection and report formatting.
"""

from repro.core.access_modes import AccessMode
from repro.core.config import SystemConfig
from repro.core.system import AcceSysSystem
from repro.core.runner import (
    GemmResult,
    GemmRunner,
    MultiGemmResult,
    MultiGemmRunner,
    PeerTransferResult,
    PeerTransferRunner,
    ViTResult,
    ViTRunner,
    WorkloadRunner,
    run_gemm,
    run_multi_gemm,
    run_peer_transfer,
    run_vit,
    system_for,
)
from repro.core.roofline import RooflinePoint, roofline_sweep, find_crossover
from repro.core.analytical import (
    TradeoffModel,
    devmem_threshold,
    nongemm_time_threshold,
    relative_time_curve,
)
from repro.core.stats import collect_stats, format_table

__all__ = [
    "AccessMode",
    "SystemConfig",
    "AcceSysSystem",
    "run_gemm",
    "run_vit",
    "GemmResult",
    "ViTResult",
    "roofline_sweep",
    "find_crossover",
    "RooflinePoint",
    "TradeoffModel",
    "devmem_threshold",
    "nongemm_time_threshold",
    "relative_time_curve",
    "collect_stats",
    "format_table",
]
