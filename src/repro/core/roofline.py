"""Roofline analysis of the accelerator system (Fig. 2).

The paper fixes the PCIe bandwidth (8 GB/s) and sweeps the systolic
array's computation time, observing two regimes: above the crossover the
system is *compute-bound* (execution time scales with compute time),
below it *memory-bound* (execution time is flat, pinned by the data-path
bandwidth).  ``roofline_sweep`` reproduces the experiment by sweeping the
array's per-tile compute-time override; ``find_crossover`` locates the
boundary between the regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.runner import run_gemm


@dataclass(frozen=True)
class RooflinePoint:
    """One sweep sample."""

    compute_ticks: int
    exec_ticks: int
    normalized: float


def roofline_sweep(
    config: SystemConfig,
    matrix_size: int,
    compute_ticks_values: Sequence[int],
) -> List[RooflinePoint]:
    """Run the GEMM at each per-tile compute time; normalize to the max."""
    if not compute_ticks_values:
        raise ValueError("need at least one compute-time sample")
    raw: List[tuple] = []
    for compute_ticks in compute_ticks_values:
        swept = config.with_(compute_ticks_override=int(compute_ticks))
        result = run_gemm(swept, matrix_size, matrix_size, matrix_size)
        raw.append((int(compute_ticks), result.ticks))
    slowest = max(ticks for _, ticks in raw)
    return [
        RooflinePoint(compute, ticks, ticks / slowest)
        for compute, ticks in raw
    ]


def find_crossover(
    points: Sequence[RooflinePoint], tolerance: float = 0.05
) -> Optional[int]:
    """Compute time at the memory-bound/compute-bound boundary.

    Points are sorted by compute time; the memory-bound plateau is the
    region where execution time stays within ``tolerance`` of the minimum.
    Returns the largest compute time still on the plateau (the paper's
    red line), or None if the sweep never leaves one regime.
    """
    ordered = sorted(points, key=lambda p: p.compute_ticks)
    floor = min(p.exec_ticks for p in ordered)
    plateau = [p for p in ordered if p.exec_ticks <= floor * (1 + tolerance)]
    if not plateau or len(plateau) == len(ordered):
        return None
    return plateau[-1].compute_ticks
