"""Roofline analysis of the accelerator system (Fig. 2).

The paper fixes the PCIe bandwidth (8 GB/s) and sweeps the systolic
array's computation time, observing two regimes: above the crossover the
system is *compute-bound* (execution time scales with compute time),
below it *memory-bound* (execution time is flat, pinned by the data-path
bandwidth).  ``roofline_sweep`` reproduces the experiment by sweeping the
array's per-tile compute-time override; ``find_crossover`` locates the
boundary between the regimes.

The sweep itself runs on the sweep engine (the registered ``roofline``
sweep), so it shares the result cache, parallel workers, and ``--shard``
slicing with every other experiment; :func:`roofline_sweep` remains the
thin public wrapper over that path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.analytical import EPSILON
from repro.core.config import SystemConfig
from repro.sim.ticks import ns, us

#: Default per-tile compute-time samples: spans both regimes on the
#: paper's 8 GB/s reference system at small matrix sizes.
DEFAULT_COMPUTE_TICKS = (ns(100), ns(500), us(1), us(4), us(16), us(64))


@dataclass(frozen=True)
class RooflinePoint:
    """One sweep sample."""

    compute_ticks: int
    exec_ticks: int
    normalized: float


def roofline_points(
    config: SystemConfig,
    matrix_size: int,
    compute_ticks_values: Sequence[int],
):
    """The sweep points behind :func:`roofline_sweep`.

    Keys are the per-tile compute-tick overrides, so cached results are
    shared between the wrapper and the registered ``roofline`` sweep.
    """
    from repro.sweep.spec import SweepPoint

    if not compute_ticks_values:
        raise ValueError("need at least one compute-time sample")
    return [
        SweepPoint(
            key=int(compute_ticks),
            config=config.with_(compute_ticks_override=int(compute_ticks)),
            params={"m": matrix_size, "k": matrix_size, "n": matrix_size},
        )
        for compute_ticks in compute_ticks_values
    ]


def roofline_sweep(
    config: SystemConfig,
    matrix_size: int,
    compute_ticks_values: Sequence[int],
    workers: Optional[int] = None,
    cache: bool = False,
    cache_dir=None,
    shard=None,
) -> List[RooflinePoint]:
    """Run the GEMM at each per-tile compute time; normalize to the max.

    A thin wrapper over the sweep engine: pass ``cache=True`` (or a
    ``cache_dir``) to reuse the content-addressed result cache, and
    ``workers``/``shard`` exactly as for :func:`repro.sweep.run_sweep`.
    Caching is off by default so direct calls stay side-effect free.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import SweepSpec

    points = roofline_points(config, matrix_size, compute_ticks_values)
    spec = SweepSpec(name="roofline", points=points, runner="gemm")
    if cache_dir is not None:
        cache = True
    report = run_sweep(
        spec, workers=workers, cache=cache, cache_dir=cache_dir, shard=shard
    )
    results = report.results()
    raw = [
        (point.key, results[point.key].ticks)
        for point in spec.points
        if point.key in results  # a shard runs a slice of the grid
    ]
    slowest = max(ticks for _, ticks in raw)
    return [
        RooflinePoint(compute, ticks, ticks / slowest)
        for compute, ticks in raw
    ]


def find_crossover(
    points: Sequence[RooflinePoint], tolerance: float = 0.05
) -> Optional[int]:
    """Compute time at the memory-bound/compute-bound boundary.

    Points are sorted by compute time; the memory-bound plateau is the
    region where execution time stays within ``tolerance`` of the minimum.
    Returns the largest compute time still on the plateau (the paper's
    red line), or None if the sweep never leaves one regime.
    """
    ordered = sorted(points, key=lambda p: p.compute_ticks)
    floor = min(p.exec_ticks for p in ordered)
    plateau = [
        p for p in ordered
        if p.exec_ticks <= floor * (1 + tolerance + EPSILON)
    ]
    if not plateau or len(plateau) == len(ordered):
        return None
    return plateau[-1].compute_ticks
