"""GEMM / non-GEMM trade-off model (Section V-D.2, Fig. 9).

The paper models total transformer time as::

    Time_overall = T_other + W_GEMM / P_GEMM + W_NonGEMM / P_NonGEMM

where the W's are workload fractions and the P's per-class performance of
a configuration.  Feeding the model with *measured* per-class times from
:func:`~repro.core.runner.run_vit` lets us sweep the non-GEMM fraction
from 0 to 100% and find the thresholds where DevMem stops paying off --
the paper reports W_GEMM > 34.31% (2 GB/s), 10.16% (8 GB/s) and 4.27%
(64 GB/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Shared tolerance for the crossover/threshold helpers.  The models are
#: linear, so ratios that differ only by floating-point noise must not
#: flip a threshold between "exists" and "dominates everywhere" -- every
#: comparison against 1.0 (or between the two curves) uses this epsilon.
EPSILON = 1e-9


@dataclass(frozen=True)
class TradeoffModel:
    """Per-configuration unit costs calibrated from a measured run.

    ``gemm_unit_time`` / ``nongemm_unit_time`` are the times the
    configuration needs for the *whole* reference workload's GEMM and
    non-GEMM portions; ``t_other`` is the fixed remainder.
    """

    name: str
    gemm_unit_time: float
    nongemm_unit_time: float
    t_other: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("gemm_unit_time", self.gemm_unit_time),
            ("nongemm_unit_time", self.nongemm_unit_time),
            ("t_other", self.t_other),
        ):
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ValueError(f"{label} must be a finite number, got {value!r}")
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")

    @classmethod
    def from_measured(
        cls, name: str, gemm_ticks: float, nongemm_ticks: float,
        other_ticks: float = 0.0,
    ) -> "TradeoffModel":
        """Calibrate from a measured run's per-class times.

        Inputs are validated exactly like direct construction (finite,
        non-negative); tick counts are coerced to float so integer
        measurements and analytical estimates feed one code path.
        """
        return cls(
            name,
            float(gemm_ticks),
            float(nongemm_ticks),
            float(other_ticks),
        )

    def overall_time(self, nongemm_fraction: float) -> float:
        """Total time for a workload with the given non-GEMM share.

        The reference workload is rescaled so that ``nongemm_fraction``
        of its *work* is non-GEMM: fractions weight each class's unit
        time, exactly the paper's formula with W_G + W_NG = 1.
        """
        if not 0.0 <= nongemm_fraction <= 1.0:
            raise ValueError(
                f"fraction must be within [0, 1], got {nongemm_fraction}"
            )
        w_gemm = 1.0 - nongemm_fraction
        return (
            self.t_other
            + w_gemm * self.gemm_unit_time
            + nongemm_fraction * self.nongemm_unit_time
        )

    def sweep(self, steps: int = 101) -> List[Tuple[float, float]]:
        """(fraction, time) samples across the whole range."""
        return [
            (i / (steps - 1), self.overall_time(i / (steps - 1)))
            for i in range(steps)
        ]


def devmem_threshold(
    devmem: TradeoffModel,
    pcie: TradeoffModel,
    resolution: int = 100_000,
) -> Optional[float]:
    """Minimum GEMM fraction at which DevMem beats the PCIe system.

    Solves ``devmem.overall_time(w) <= pcie.overall_time(w)`` for the
    non-GEMM fraction ``w`` and returns the *GEMM* fraction threshold
    ``1 - w`` (the form the paper reports).  Returns None when one system
    dominates everywhere.

    Both models are linear in ``w``, so the crossing is exact:
    ``delta(w) = (devmem - pcie)(w)`` changes sign at most once.
    """
    t_d0, t_p0 = devmem.overall_time(0.0), pcie.overall_time(0.0)
    t_d1, t_p1 = devmem.overall_time(1.0), pcie.overall_time(1.0)
    # Ties within floating-point noise count as "DevMem wins": the
    # tolerance is relative to the magnitudes being compared.
    tol = EPSILON * max(t_d0, t_p0, t_d1, t_p1, 1.0)
    delta0 = t_d0 - t_p0
    delta1 = t_d1 - t_p1
    if delta0 <= tol and delta1 <= tol:
        return 0.0  # DevMem always wins
    if delta0 > tol and delta1 > tol:
        return None  # PCIe always wins
    # Linear interpolation for the root of delta(w) = 0.
    w_cross = delta0 / (delta0 - delta1)
    w_cross = max(0.0, min(1.0, w_cross))
    if delta0 <= 0:
        # DevMem wins at low non-GEMM fractions (the paper's regime):
        # it keeps winning up to w_cross.
        return 1.0 - w_cross
    return 1.0 - w_cross


def threshold_table(
    devmem: TradeoffModel, pcie_models: Sequence[TradeoffModel]
) -> List[Tuple[str, Optional[float]]]:
    """GEMM-fraction thresholds of DevMem against each PCIe system."""
    return [
        (pcie.name, devmem_threshold(devmem, pcie)) for pcie in pcie_models
    ]


def relative_time_curve(
    devmem: TradeoffModel, pcie: TradeoffModel, steps: int = 11
) -> List[Tuple[float, float]]:
    """DevMem time normalized to the PCIe system, vs non-GEMM time share.

    This is the exact parameterization of the paper's Fig. 9: the x-axis
    is the fraction of total time the workload spends in non-GEMM *when
    executed on the PCIe system*; the PCIe curve is the constant 1.  With
    ``r_g = G_dev / G_pcie`` and ``r_ng = NG_dev / NG_pcie``::

        T_dev(w) = (1 - w) * r_g + w * r_ng
    """
    if pcie.gemm_unit_time <= 0 or pcie.nongemm_unit_time <= 0:
        raise ValueError("PCIe reference times must be positive")
    r_g = devmem.gemm_unit_time / pcie.gemm_unit_time
    r_ng = devmem.nongemm_unit_time / pcie.nongemm_unit_time
    return [
        (w, (1 - w) * r_g + w * r_ng)
        for w in (i / (steps - 1) for i in range(steps))
    ]


def nongemm_time_threshold(
    devmem: TradeoffModel, pcie: TradeoffModel
) -> Optional[float]:
    """Largest non-GEMM time share at which DevMem still wins (Fig. 9).

    The paper reports these thresholds falling with PCIe bandwidth:
    34.31% at 2 GB/s, 10.16% at 8 GB/s, 4.27% at 64 GB/s (DevMem is
    preferred when the non-GEMM fraction stays below the threshold).
    Returns None when DevMem never wins, 1.0 when it always wins.
    """
    if pcie.gemm_unit_time <= 0 or pcie.nongemm_unit_time <= 0:
        raise ValueError("PCIe reference times must be positive")
    r_g = devmem.gemm_unit_time / pcie.gemm_unit_time
    r_ng = devmem.nongemm_unit_time / pcie.nongemm_unit_time
    if r_g >= 1.0 - EPSILON:
        return None if r_ng >= 1.0 - EPSILON else 1.0
    if r_ng <= 1.0 + EPSILON:
        return 1.0
    # Solve (1 - w) r_g + w r_ng = 1.
    return (1.0 - r_g) / (r_ng - r_g)
