"""Statistics collection and benchmark report formatting.

``collect_stats`` flattens every component's stat group into one dict
(the moral equivalent of gem5's ``stats.txt``); ``format_table`` renders
the aligned text tables the benchmark harness prints next to the paper's
numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def collect_stats(system) -> Dict[str, float]:
    """Flatten the stats of every SimObject reachable from the system."""
    components = [
        system.membus,
        system.mem_ctrl,
        system.llc,
        system.l1d,
        system.iocache,
        system.cpu,
        system.cpu_port,
        system.fabric,
        system.fabric.up,
        system.fabric.down,
        system.host_bridge,
        system.wrapper.systolic,
        system.wrapper.local_buffer,
        system.wrapper.dma,
        system.wrapper.controller,
        system.wrapper.regs,
        system.driver,
    ]
    if system.smmu is not None:
        components += [system.smmu, system.smmu.walker]
    if system.devmem is not None:
        components.append(system.devmem)

    flat: Dict[str, float] = {}
    for component in components:
        for key, value in component.stats.flatten():
            flat[key] = value
    if system.smmu is not None:
        flat.update(system.smmu.utlb.stat_dict())
        flat.update(system.smmu.tlb.stat_dict())
    return flat


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    cells: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
    """Write a result table as CSV (benchmark artifact export)."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def stats_to_csv(path: str, flat_stats: Dict[str, float]) -> None:
    """Dump a flattened stat snapshot (``collect_stats``) as CSV."""
    write_csv(
        path, ["stat", "value"],
        [(key, flat_stats[key]) for key in sorted(flat_stats)],
    )
