"""Memory access methods: direct-cache, direct-memory, device memory.

Section III-C of the paper defines three ways accelerator traffic reaches
data:

* **DC (direct cache)** -- requests enter the host cache hierarchy
  (IOCache, then the coherent MemBus, then the LLC); hits are fast,
  misses pay the full path.  Coherency with CPU caches is maintained by
  the MemBus snoop path.
* **DM (direct memory)** -- requests bypass the caches and go straight
  to the memory controller; software manages coherency.
* **DEVMEM** -- requests go to device-side memory next to the
  accelerator, bypassing the whole PCIe hierarchy (arrow 6 in Fig. 1).

:class:`HostBridge` implements the host-side policy (translation through
the SMMU, then DC or DM routing); DevMem is wired at the system level by
pointing the accelerator's DMA at the device memory controller.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.smmu.smmu import SMMU


class AccessMode(enum.Enum):
    """How accelerator traffic reaches its data."""

    DIRECT_CACHE = "dc"
    DIRECT_MEMORY = "dm"
    DEVICE_MEMORY = "devmem"

    @classmethod
    def parse(cls, value: "AccessMode | str") -> "AccessMode":
        if isinstance(value, AccessMode):
            return value
        for mode in cls:
            if mode.value == value.lower():
                return mode
        raise ValueError(
            f"unknown access mode {value!r}; choose from "
            f"{[m.value for m in cls]}"
        )


class HostBridge(TargetPort):
    """Host-side entry for device DMA: SMMU translation plus DC/DM routing.

    Sits logically at the root complex: device transactions arrive here
    after crossing the PCIe up-channel, are translated if an SMMU is
    configured, and continue into the cache hierarchy (DC) or directly to
    the memory controller (DM).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mode: AccessMode,
        cached_path: TargetPort,
        direct_path: TargetPort,
        smmu: Optional[SMMU] = None,
    ) -> None:
        super().__init__(sim, name)
        if mode is AccessMode.DEVICE_MEMORY:
            raise ValueError("HostBridge handles host-side modes only")
        self.mode = mode
        self.cached_path = cached_path
        self.direct_path = direct_path
        self.smmu = smmu
        self._txns = self.stats.scalar("transactions", "device transactions bridged")

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self._txns.inc()
        target = (
            self.cached_path
            if self.mode is AccessMode.DIRECT_CACHE
            else self.direct_path
        )
        if self.smmu is None or txn.is_translated:
            target.send(txn, on_complete)
            return
        self.smmu.translate(txn, lambda t: target.send(t, on_complete))
