"""Full-system assembly (the block diagram of Fig. 1).

:class:`AcceSysSystem` instantiates and wires every component:

* CPU cluster: timing CPU with L1 data cache, coherent MemBus, LLC, host
  DRAM controller,
* PCIe hierarchy: fabric (switch + root complex channels), config space
  with enumeration, IOCache in front of the MemBus for device traffic,
* SMMU with page table and walker (walks go through the MemBus so they
  share the LLC),
* the accelerator wrapper (systolic array, local buffer, multi-channel
  DMA, register file) behind the PCIe endpoint,
* optional device-side memory,
* the kernel driver bound to it all.

The physical address map::

    0x0000_0000_0000 .. host_mem_bytes   host DRAM
      (top 64 MiB reserved for SMMU page tables)
    0x40_0000_0000 .. +256 MiB           PCIe MMIO window (BARs)
    0x80_0000_0000 .. +devmem_bytes      device-side memory
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.accel.devmem import DeviceMemory
from repro.accel.driver import AccelDriver, BumpAllocator
from repro.accel.wrapper import AcceleratorWrapper
from repro.cache.cache import Cache
from repro.core.access_modes import AccessMode, HostBridge
from repro.core.config import SystemConfig
from repro.cpu.cpu import TimingCPU
from repro.interconnect.bus import MemBus
from repro.interconnect.pcie.config_space import ConfigSpace
from repro.interconnect.pcie.fabric import PCIeFabric
from repro.memory.addr_range import AddrRange
from repro.memory.dram.controller import DRAMController
from repro.memory.physmem import PhysicalMemory
from repro.memory.simple import SimpleMemory
from repro.sim.eventq import ParallelSimulator, Simulator
from repro.sim.ports import CompletionFn, TargetPort
from repro.sim.transaction import Transaction
from repro.smmu.page_table import PageTable
from repro.smmu.smmu import SMMU
from repro.topology.fabric import SwitchedPCIeFabric, plan_for_config

#: Page-table arena at the top of host DRAM.
PAGE_TABLE_RESERVE = 64 * 1024 * 1024
MMIO_BASE = 0x40_0000_0000
MMIO_SIZE = 256 * 1024 * 1024
DEVMEM_BASE = 0x80_0000_0000


class _DevicePCIePort(TargetPort):
    """Adapter: device-initiated DMA transactions onto the PCIe fabric."""

    def __init__(self, sim: Simulator, name: str, fabric: PCIeFabric) -> None:
        super().__init__(sim, name)
        self.fabric = fabric

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self.fabric.device_access(txn, on_complete)


class _CpuDataPort(TargetPort):
    """CPU load/store routing: local hierarchy vs remote device memory.

    Accesses to the device-memory window cross the PCIe hierarchy -- and
    they do so as *uncached*, serialized cache-line transactions, the way
    a CPU actually touches a device BAR (dependent loads, no prefetch
    across the interconnect).  This is the NUMA penalty of the paper's
    Fig. 8.  Everything else goes through the L1.
    """

    #: Remote accesses are line-granular.
    REMOTE_LINE = 64
    #: Outstanding uncached lines (a CPU has a couple of line-fill /
    #: write-combining buffers even for device space).
    REMOTE_MLP = 2

    def __init__(
        self,
        sim: Simulator,
        name: str,
        l1: Cache,
        devmem_range: Optional[AddrRange],
        fabric: Optional[PCIeFabric],
        devmem: Optional[DeviceMemory],
    ) -> None:
        super().__init__(sim, name)
        self.l1 = l1
        self.devmem_range = devmem_range
        self.fabric = fabric
        self.devmem = devmem
        self._remote = self.stats.scalar("remote_accesses", "line accesses over PCIe")
        self._local = self.stats.scalar("local_accesses", "accesses via L1")
        # Uncached accesses are nearly serialized: a tiny number of lines
        # in flight across all pending transactions.
        self._remote_lines: deque = deque()
        self._remote_inflight = 0

    def reset_state(self) -> None:
        super().reset_state()
        self._remote_lines.clear()
        self._remote_inflight = 0

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        if (
            self.devmem_range is not None
            and self.devmem_range.contains(txn.addr)
        ):
            self._send_remote(txn, on_complete)
        else:
            self._local.inc()
            self.l1.send(txn, on_complete)

    def _send_remote(self, txn: Transaction, on_complete: CompletionFn) -> None:
        """Line-by-line walk across the PCIe hierarchy (near-serialized)."""
        line = self.REMOTE_LINE
        addrs = range(txn.addr - txn.addr % line, txn.end_addr, line)
        state = {"left": len(addrs)}

        def line_done() -> None:
            state["left"] -= 1
            if state["left"] == 0:
                on_complete(txn)

        for addr in addrs:
            piece = Transaction(txn.cmd, addr, line, source=txn.source)
            self._remote_lines.append((piece, line_done))
        self._pump_remote()

    def _pump_remote(self) -> None:
        while self._remote_inflight < self.REMOTE_MLP and self._remote_lines:
            piece, line_done = self._remote_lines.popleft()
            self._remote_inflight += 1
            self._remote.inc()

            def finished(_t, cb=line_done) -> None:
                self._remote_inflight -= 1
                cb()
                self._pump_remote()

            self.fabric.host_access(piece, self.devmem, finished)


class AcceSysSystem:
    """A fully wired simulated machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        # Intra-point PDES: a config requesting (and supporting) more
        # than one event domain runs on the partitioned simulator; the
        # domain plan is applied to the fabric and wrappers below, once
        # they exist.  Everything else keeps the classic single-queue
        # engine, whose behaviour is pinned by the golden tests.
        self.domain_plan = plan_for_config(config)
        if self.domain_plan is not None:
            self.sim = ParallelSimulator(
                self.domain_plan.domains, quantum=self.domain_plan.quantum
            )
        else:
            self.sim = Simulator()
        sim = self.sim

        # ------------------------------------------------------------
        # Address map
        # ------------------------------------------------------------
        self.host_range = AddrRange(0, config.host_mem_bytes)
        table_base = config.host_mem_bytes - PAGE_TABLE_RESERVE
        self.alloc_range = AddrRange(0, table_base)
        self.mmio_range = AddrRange(MMIO_BASE, MMIO_BASE + MMIO_SIZE)
        self.devmem_range = AddrRange(
            DEVMEM_BASE, DEVMEM_BASE + config.devmem_bytes
        )

        # ------------------------------------------------------------
        # Host memory and cache hierarchy
        # ------------------------------------------------------------
        self.host_backing = (
            PhysicalMemory(self.host_range) if config.functional else None
        )
        self.mem_ctrl = DRAMController(
            sim, "system.mem_ctrl", config.host_mem, self.host_range,
            self.host_backing,
        )
        self.llc = Cache(
            sim, "system.llc", config.llc, self.mem_ctrl, self.host_backing
        )
        self.membus = MemBus(sim, "system.membus", freq_hz=config.cpu_freq_hz)
        self.membus.attach(self.host_range, self.llc)

        self.l1d = Cache(
            sim, "system.cpu.l1d", config.l1d, self.membus, self.host_backing
        )
        self.iocache = Cache(
            sim, "system.iocache", config.iocache, self.membus,
            self.host_backing,
        )
        # Coherency: accelerator writes invalidate CPU-side copies and
        # vice versa (the paper's accelerator/CPU coherency model).
        self.membus.add_snooper("system.cpu", self.l1d)
        self.membus.add_snooper("system.iocache", self.iocache)

        # ------------------------------------------------------------
        # SMMU
        # ------------------------------------------------------------
        if config.smmu is not None:
            self.page_table: Optional[PageTable] = PageTable(table_base)
            self.smmu: Optional[SMMU] = SMMU(
                sim, "system.smmu", config.smmu, self.page_table, self.membus
            )
        else:
            self.page_table = None
            self.smmu = None

        # ------------------------------------------------------------
        # Interconnect fabric and host bridge
        # ------------------------------------------------------------
        topology = config.effective_topology()
        if config.interconnect == "cxl":
            from repro.interconnect.cxl import CXLFabric

            if config.topology is not None:
                raise ValueError(
                    "switched topologies are a PCIe feature; the CXL "
                    "extension models a directly-attached port"
                )
            self.fabric = CXLFabric(sim, "system.cxl", config.pcie)
        elif config.interconnect == "pcie":
            if topology is None:
                # Single endpoint, no explicit tree: the classic
                # point-to-point fabric (bit-identical to the flat model).
                self.fabric = PCIeFabric(sim, "system.pcie", config.pcie)
            else:
                if topology.num_endpoints != config.num_accelerators:
                    raise ValueError(
                        f"topology has {topology.num_endpoints} endpoint(s) "
                        f"but num_accelerators={config.num_accelerators}; "
                        f"use with_topology() to keep them in sync"
                    )
                self.fabric = SwitchedPCIeFabric(
                    sim, "system.pcie", config.pcie, topology
                )
        else:
            raise ValueError(
                f"unknown interconnect {config.interconnect!r}; "
                "choose 'pcie' or 'cxl'"
            )
        self.topology = topology
        if config.access_mode is AccessMode.DEVICE_MEMORY:
            # GEMM traffic never crosses PCIe; host accesses to device
            # memory still do.  The host bridge handles stray host-memory
            # DMA (e.g. descriptor fetches) through the cached path.
            bridge_mode = AccessMode.DIRECT_CACHE
        else:
            bridge_mode = config.access_mode
        self.host_bridge = HostBridge(
            sim,
            "system.host_bridge",
            bridge_mode,
            cached_path=self.iocache,
            direct_path=self.mem_ctrl,
            smmu=self.smmu,
        )
        self.fabric.set_host_target(self.host_bridge)

        # ------------------------------------------------------------
        # Device memory
        # ------------------------------------------------------------
        needs_devmem = (
            config.uses_device_memory or config.devmem is not None
        )
        if needs_devmem:
            self.devmem_backing = (
                PhysicalMemory(self.devmem_range) if config.functional else None
            )
            simple_latency, simple_bw = config.devmem_simple
            self.devmem: Optional[DeviceMemory] = DeviceMemory(
                sim,
                "system.devmem",
                self.devmem_range,
                timings=config.devmem,
                simple_latency=simple_latency,
                simple_bandwidth=simple_bw,
                backing=self.devmem_backing,
            )
        else:
            self.devmem_backing = None
            self.devmem = None

        # ------------------------------------------------------------
        # Accelerators (one or a cluster sharing the PCIe hierarchy)
        # ------------------------------------------------------------
        if config.num_accelerators < 1:
            raise ValueError("need at least one accelerator")
        switched = isinstance(self.fabric, SwitchedPCIeFabric)
        if config.uses_device_memory:
            dma_target: TargetPort = self.devmem
        elif not switched:
            dma_target = _DevicePCIePort(sim, "system.accel.pcie_port", self.fabric)
        self.wrappers = []
        for index in range(config.num_accelerators):
            suffix = "" if config.num_accelerators == 1 else str(index)
            if switched and not config.uses_device_memory:
                # Each endpoint owns its entry port, so the fabric can
                # route (and arbitrate) per device.
                dma_target = self.fabric.endpoint_port(index)
            self.wrappers.append(
                AcceleratorWrapper(
                    sim,
                    f"system.accel{suffix}",
                    dma_target,
                    systolic_params=config.systolic,
                    local_buffer_bytes=config.local_buffer_bytes,
                    dma_channels=config.dma_channels,
                    dma_tags=config.dma_tags,
                    dma_segment_bytes=config.dma_segment_bytes,
                    prefetch_depth=config.prefetch_depth,
                    reuse_a_panels=config.reuse_a_panels,
                    compute_ticks_override=config.compute_ticks_override,
                )
            )
        self.wrapper = self.wrappers[0]

        # ------------------------------------------------------------
        # Enumeration and drivers
        # ------------------------------------------------------------
        self.config_space = ConfigSpace(self.mmio_range)
        for wrapper in self.wrappers:
            self.config_space.register(wrapper.pcie_function)
        self.config_space.enumerate()

        # Endpoint address windows (switched fabric only): BAR0 routes to
        # the register file, BAR1 to a device-local scratch aperture --
        # the landing zone for peer-to-peer DMA.  The routing table is
        # what lets the fabric steer host MMIO per endpoint and peer
        # traffic below the root complex.
        self.endpoint_scratch: list = []
        self._scratch_backings: list = []
        if switched:
            simple_latency, simple_bw = config.devmem_simple
            for index, wrapper in enumerate(self.wrappers):
                suffix = "" if config.num_accelerators == 1 else str(index)
                bar0 = wrapper.pcie_function.bars[0].range
                bar1 = wrapper.pcie_function.bars[1].range
                backing = PhysicalMemory(bar1) if config.functional else None
                scratch = SimpleMemory(
                    sim, f"system.accel{suffix}.scratch", bar1,
                    simple_latency, simple_bw, backing,
                )
                self.endpoint_scratch.append(scratch)
                self._scratch_backings.append(backing)
                self.fabric.register_endpoint_window(index, bar0, wrapper.regs)
                self.fabric.register_endpoint_window(index, bar1, scratch)
            if needs_devmem:
                # Device memory hangs off endpoint 0: host accesses to the
                # devmem aperture route down that endpoint's wires.
                self.fabric.register_endpoint_window(
                    0, self.devmem_range, self.devmem
                )
        self.host_alloc = BumpAllocator(self.alloc_range)
        self.devmem_alloc = BumpAllocator(self.devmem_range)
        self.drivers = []
        for index, wrapper in enumerate(self.wrappers):
            suffix = "" if config.num_accelerators == 1 else str(index)
            driver = AccelDriver(
                sim,
                f"system.driver{suffix}",
                self.config_space,
                self.fabric,
                wrapper,
                self.host_alloc,
                self.page_table if not config.uses_device_memory else None,
                device_index=index,
            )
            if not driver.probe():
                raise RuntimeError(
                    f"driver {index} failed to probe its accelerator"
                )
            self.drivers.append(driver)
        self.driver = self.drivers[0]

        # ------------------------------------------------------------
        # CPU
        # ------------------------------------------------------------
        self.cpu_port = _CpuDataPort(
            sim,
            "system.cpu.port",
            self.l1d,
            self.devmem_range if needs_devmem else None,
            self.fabric,
            self.devmem,
        )
        self.cpu = TimingCPU(
            sim, "system.cpu", self.cpu_port, freq_hz=config.cpu_freq_hz
        )

        # ------------------------------------------------------------
        # Fault injection (repro.faults): attach the compiled fault
        # model to links, DMA engines and drivers.  Fault-free configs
        # never touch this path -- every hook stays a None check.
        # ------------------------------------------------------------
        self.fault_model = None
        if config.faults is not None:
            from repro.faults.injector import FaultModel

            self.fault_model = FaultModel(config.faults)
            self.fault_model.attach(self)

        # ------------------------------------------------------------
        # Domain partition (intra-point PDES)
        # ------------------------------------------------------------
        if self.domain_plan is not None:
            self._apply_domain_plan()

    def _apply_domain_plan(self) -> None:
        """Pin each endpoint subtree to its event domain.

        The fabric pins the endpoint link pairs and entry ports; here
        the accelerator subtree behind each endpoint (wrapper, DMA,
        systolic array, register file, scratch -- everything named
        ``system.accel<i>.*``) follows by name prefix.  Switch tiers,
        root complex, host memory system, drivers and CPU stay in
        domain 0.
        """
        plan = self.domain_plan
        self.fabric.apply_domain_plan(plan)
        prefixes = []
        for index in range(self.config.num_accelerators):
            suffix = "" if self.config.num_accelerators == 1 else str(index)
            prefixes.append(
                (f"system.accel{suffix}", plan.endpoint_domain[index])
            )
        for obj in self.sim.objects:
            name = obj.name
            for prefix, domain in prefixes:
                if name == prefix or name.startswith(prefix + "."):
                    self.sim.assign_domain(obj, domain)
                    break

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def alloc_buffer(self, tag: str, size: int, driver=None) -> int:
        """Allocate a data buffer in the mode's natural memory.

        Host modes pin through the driver (SMMU mapping included); DevMem
        mode allocates device memory directly.  ``driver`` selects which
        cluster member pins (IOVA space, buffer table); default is the
        first device.
        """
        if self.config.uses_device_memory:
            return self.devmem_alloc.alloc(size)
        return (driver or self.driver).pin_buffer(tag, size)

    def reset(self) -> None:
        """Restore the fully wired system to its just-constructed state.

        Rewinds simulated time to tick 0, empties the event queue, and
        walks every registered component's ``reset_state`` so tag stores,
        TLBs, bank state, busy-until timestamps and statistics all return
        to their construction values.  System-level allocators, the SMMU
        page table, and any functional backing stores are reset here
        because they are not SimObjects.  A reset system produces
        bit-identical results to a freshly constructed one -- this is what
        lets the sweep engine memoize system construction across points
        (see :func:`repro.core.runner.system_for`).
        """
        self.sim.reset()
        for obj in self.sim.objects:
            obj.reset_state()
        self.host_alloc.reset()
        self.devmem_alloc.reset()
        if self.page_table is not None:
            self.page_table.reset()
        if self.host_backing is not None:
            self.host_backing.clear()
        if self.devmem_backing is not None:
            self.devmem_backing.clear()
        for backing in self._scratch_backings:
            if backing is not None:
                backing.clear()

    def run(self, **kw) -> int:
        """Drain the event queue; returns the final tick."""
        return self.sim.run(**kw)

    @property
    def now(self) -> int:
        return self.sim.now
