"""GEMM workload generation and MatrixFlow operand packing.

MatrixFlow stores operands pre-tiled so every panel the accelerator
streams is one contiguous region (the "optimized data structure" of the
paper):

* A is *row-panel-major*: panel ``i`` holds rows ``16i..16i+15``
  contiguously, row-major inside the panel,
* B is *column-panel-major*: panel ``j`` holds columns ``16j..16j+15``
  contiguously, column-of-panel-major inside,
* C is *tile-major*: tile (i, j) is a contiguous 16x16 block.

Ragged edges are zero-padded to full panels, matching how the hardware
streams fixed-geometry tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _pad_to(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


@dataclass(frozen=True)
class GemmWorkload:
    """A reproducible random GEMM problem."""

    m: int
    k: int
    n: int
    element_bytes: int = 4
    seed: int = 1234

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive: {self.m}x{self.k}x{self.n}")

    def generate(self) -> Tuple[np.ndarray, np.ndarray]:
        """Random int32 operands in a small range (no accumulator overflow)."""
        rng = np.random.default_rng(self.seed)
        a = rng.integers(-64, 64, size=(self.m, self.k), dtype=np.int32)
        b = rng.integers(-64, 64, size=(self.k, self.n), dtype=np.int32)
        return a, b

    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32)

    @property
    def a_bytes(self) -> int:
        return _pad_to(self.m, 16) * self.k * self.element_bytes

    @property
    def b_bytes(self) -> int:
        return self.k * _pad_to(self.n, 16) * self.element_bytes

    @property
    def c_bytes(self) -> int:
        return _pad_to(self.m, 16) * _pad_to(self.n, 16) * self.element_bytes


def pack_a_panels(a: np.ndarray, tile: int = 16) -> np.ndarray:
    """Pack A into row-panel-major layout (flat uint8)."""
    m, k = a.shape
    padded_m = _pad_to(m, tile)
    padded = np.zeros((padded_m, k), dtype=a.dtype)
    padded[:m] = a
    # Panels are already contiguous row blocks in row-major storage.
    return np.ascontiguousarray(padded).view(np.uint8).reshape(-1)


def pack_b_panels(b: np.ndarray, tile: int = 16) -> np.ndarray:
    """Pack B into column-panel-major layout (flat uint8)."""
    k, n = b.shape
    padded_n = _pad_to(n, tile)
    padded = np.zeros((k, padded_n), dtype=b.dtype)
    padded[:, :n] = b
    panels = [
        np.ascontiguousarray(padded[:, j : j + tile])
        for j in range(0, padded_n, tile)
    ]
    return np.concatenate([p.view(np.uint8).reshape(-1) for p in panels])


def unpack_c_tiles(
    raw: np.ndarray, m: int, n: int, tile: int = 16, dtype=np.int32
) -> np.ndarray:
    """Reassemble a tile-major C buffer into an (m, n) matrix."""
    padded_m = _pad_to(m, tile)
    padded_n = _pad_to(n, tile)
    tiles_m = padded_m // tile
    tiles_n = padded_n // tile
    flat = raw.view(dtype)
    expected = tiles_m * tiles_n * tile * tile
    if flat.size != expected:
        raise ValueError(f"C buffer has {flat.size} elements, expected {expected}")
    out = np.empty((padded_m, padded_n), dtype=dtype)
    index = 0
    for i in range(tiles_m):
        for j in range(tiles_n):
            block = flat[index : index + tile * tile].reshape(tile, tile)
            out[i * tile : (i + 1) * tile, j * tile : (j + 1) * tile] = block
            index += tile * tile
    return out[:m, :n]
