"""Workloads: GEMM kernels and Vision Transformer operator graphs.

:mod:`~repro.workloads.ops` defines the operator taxonomy (GEMM vs
non-GEMM, the split Section V-D of the paper profiles).
:mod:`~repro.workloads.gemm` packs operands into the MatrixFlow layout
and generates reference inputs.  :mod:`~repro.workloads.vit` builds the
exact op graphs of ViT-Base/Large/Huge (hidden 768/1024/1280) used by the
transformer experiments (Figs. 7-9).
"""

from repro.workloads.ops import GemmOp, NonGemmOp, Op, OpGraph, OpKind
from repro.workloads.gemm import (
    GemmWorkload,
    pack_a_panels,
    pack_b_panels,
    unpack_c_tiles,
)
from repro.workloads.vit import VIT_VARIANTS, ViTConfig, build_vit_graph

__all__ = [
    "Op",
    "OpKind",
    "OpGraph",
    "GemmOp",
    "NonGemmOp",
    "GemmWorkload",
    "pack_a_panels",
    "pack_b_panels",
    "unpack_c_tiles",
    "ViTConfig",
    "VIT_VARIANTS",
    "build_vit_graph",
]
