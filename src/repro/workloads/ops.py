"""Operator taxonomy: GEMM vs non-GEMM.

The paper's transformer analysis (Section V-D) splits every workload into
GEMM operations (offloaded to the systolic accelerator) and non-GEMM
operations (run on the host CPU).  These dataclasses are the nodes of the
workload graphs; the runner walks a graph and dispatches each node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class OpKind(enum.Enum):
    GEMM = "gemm"
    NONGEMM = "nongemm"


@dataclass(frozen=True)
class Op:
    """Base operator: a name and the tensors it consumes/produces.

    Tensor references are symbolic names resolved to addresses by the
    runner according to the memory placement of the configuration
    (host-side vs device-side).
    """

    name: str
    inputs: tuple
    outputs: tuple

    @property
    def kind(self) -> OpKind:
        raise NotImplementedError


@dataclass(frozen=True)
class GemmOp(Op):
    """C[m,n] = A[m,k] x B[k,n], offloaded to the accelerator.

    ``batch`` repeats the same shape (multi-head attention issues one
    GEMM per head).
    """

    m: int = 0
    k: int = 0
    n: int = 0
    batch: int = 1

    @property
    def kind(self) -> OpKind:
        return OpKind.GEMM

    @property
    def flops(self) -> int:
        return 2 * self.m * self.k * self.n * self.batch

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"{self.name}: GEMM dims must be positive")
        if self.batch <= 0:
            raise ValueError(f"{self.name}: batch must be positive")


@dataclass(frozen=True)
class NonGemmOp(Op):
    """A CPU-side operator over ``elements`` values."""

    op_type: str = "add"
    elements: int = 0

    @property
    def kind(self) -> OpKind:
        return OpKind.NONGEMM

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ValueError(f"{self.name}: element count must be positive")


@dataclass
class OpGraph:
    """A sequential operator list with named tensors.

    ``tensors`` maps tensor name -> byte size; ops execute in order (the
    transformer graph is a chain; parallelism inside an op is the
    accelerator's/CPU's business).
    """

    name: str
    tensors: dict = field(default_factory=dict)
    ops: List[Op] = field(default_factory=list)

    def add_tensor(self, name: str, nbytes: int) -> str:
        if nbytes <= 0:
            raise ValueError(f"tensor {name!r} must have positive size")
        existing = self.tensors.get(name)
        if existing is not None and existing != nbytes:
            raise ValueError(
                f"tensor {name!r} re-declared with different size "
                f"({existing} vs {nbytes})"
            )
        self.tensors[name] = nbytes
        return name

    def add(self, op: Op) -> None:
        for ref in op.inputs + op.outputs:
            if ref not in self.tensors:
                raise ValueError(f"op {op.name!r} references unknown tensor {ref!r}")
        self.ops.append(op)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def gemm_ops(self) -> List[GemmOp]:
        return [op for op in self.ops if isinstance(op, GemmOp)]

    def nongemm_ops(self) -> List[NonGemmOp]:
        return [op for op in self.ops if isinstance(op, NonGemmOp)]

    @property
    def total_gemm_flops(self) -> int:
        return sum(op.flops for op in self.gemm_ops())

    @property
    def total_nongemm_elements(self) -> int:
        return sum(op.elements for op in self.nongemm_ops())

    @property
    def total_tensor_bytes(self) -> int:
        return sum(self.tensors.values())
