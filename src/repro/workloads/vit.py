"""Vision Transformer operator graphs.

Builds the exact encoder structure of ViT-Base/Large/Huge (the paper's
Section IV-B workloads: hidden dimensions 768/1024/1280 with 12 or 16
attention heads) as an :class:`~repro.workloads.ops.OpGraph`:

per encoder layer::

    LayerNorm -> QKV projection (GEMM) -> QK^T per head (GEMM)
    -> Softmax -> AV per head (GEMM) -> output projection (GEMM)
    -> residual add -> LayerNorm -> MLP fc1 (GEMM) -> GELU
    -> MLP fc2 (GEMM) -> residual add

plus patch embedding in front and the classifier head behind.  GEMMs run
on the accelerator, everything else on the CPU -- the split the paper's
GEMM/non-GEMM analysis (Figs. 8 and 9) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.ops import GemmOp, NonGemmOp, OpGraph


@dataclass(frozen=True)
class ViTConfig:
    """Architecture hyper-parameters of one ViT variant."""

    name: str
    hidden: int
    layers: int
    heads: int
    mlp_ratio: int = 4
    image_size: int = 224
    patch_size: int = 16
    in_channels: int = 3
    num_classes: int = 1000
    element_bytes: int = 4

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(
                f"{self.name}: hidden {self.hidden} not divisible by "
                f"heads {self.heads}"
            )
        if self.image_size % self.patch_size:
            raise ValueError(
                f"{self.name}: image {self.image_size} not divisible by "
                f"patch {self.patch_size}"
            )

    @property
    def seq_len(self) -> int:
        """Patches plus the class token."""
        patches = (self.image_size // self.patch_size) ** 2
        return patches + 1

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def mlp_hidden(self) -> int:
        return self.hidden * self.mlp_ratio


#: The paper's three evaluation models (Section IV-B).
VIT_VARIANTS: Dict[str, ViTConfig] = {
    "base": ViTConfig("ViT-Base", hidden=768, layers=12, heads=12),
    "large": ViTConfig("ViT-Large", hidden=1024, layers=24, heads=16),
    "huge": ViTConfig("ViT-Huge", hidden=1280, layers=32, heads=16),
}


def build_vit_graph(config: ViTConfig) -> OpGraph:
    """Construct the full inference op graph for one image."""
    graph = OpGraph(config.name)
    s = config.seq_len
    h = config.hidden
    eb = config.element_bytes
    dh = config.head_dim
    heads = config.heads
    mlp = config.mlp_hidden
    patch_dim = config.patch_size**2 * config.in_channels

    def tensor(name: str, elements: int) -> str:
        return graph.add_tensor(name, elements * eb)

    # ------------------------------------------------------------------
    # Patch embedding
    # ------------------------------------------------------------------
    image = tensor("image", config.image_size**2 * config.in_channels)
    patches = tensor("patches", s * patch_dim)
    w_embed = tensor("w_embed", patch_dim * h)
    x = tensor("x0", s * h)
    graph.add(
        NonGemmOp(
            "patchify", (image,), (patches,),
            op_type="patchify", elements=s * patch_dim,
        )
    )
    graph.add(
        GemmOp("embed", (patches, w_embed), (x,), m=s, k=patch_dim, n=h)
    )

    # ------------------------------------------------------------------
    # Encoder layers
    # ------------------------------------------------------------------
    for layer in range(config.layers):
        p = f"l{layer}."
        xn1 = tensor(p + "ln1_out", s * h)
        graph.add(
            NonGemmOp(p + "ln1", (x,), (xn1,), op_type="layernorm", elements=s * h)
        )

        w_qkv = tensor(p + "w_qkv", h * 3 * h)
        qkv = tensor(p + "qkv", s * 3 * h)
        graph.add(GemmOp(p + "qkv", (xn1, w_qkv), (qkv,), m=s, k=h, n=3 * h))

        scores = tensor(p + "scores", heads * s * s)
        graph.add(
            GemmOp(p + "qk", (qkv,), (scores,), m=s, k=dh, n=s, batch=heads)
        )
        probs = tensor(p + "probs", heads * s * s)
        graph.add(
            NonGemmOp(
                p + "softmax", (scores,), (probs,),
                op_type="softmax", elements=heads * s * s,
            )
        )
        ctx = tensor(p + "ctx", s * h)
        graph.add(
            GemmOp(p + "av", (probs, qkv), (ctx,), m=s, k=s, n=dh, batch=heads)
        )

        w_proj = tensor(p + "w_proj", h * h)
        proj = tensor(p + "proj", s * h)
        graph.add(GemmOp(p + "proj", (ctx, w_proj), (proj,), m=s, k=h, n=h))

        x_res1 = tensor(p + "res1", s * h)
        graph.add(
            NonGemmOp(
                p + "add1", (x, proj), (x_res1,), op_type="add", elements=s * h
            )
        )

        xn2 = tensor(p + "ln2_out", s * h)
        graph.add(
            NonGemmOp(
                p + "ln2", (x_res1,), (xn2,), op_type="layernorm", elements=s * h
            )
        )
        w_fc1 = tensor(p + "w_fc1", h * mlp)
        fc1 = tensor(p + "fc1", s * mlp)
        graph.add(GemmOp(p + "fc1", (xn2, w_fc1), (fc1,), m=s, k=h, n=mlp))
        act = tensor(p + "gelu", s * mlp)
        graph.add(
            NonGemmOp(
                p + "gelu", (fc1,), (act,), op_type="gelu", elements=s * mlp
            )
        )
        w_fc2 = tensor(p + "w_fc2", mlp * h)
        fc2 = tensor(p + "fc2", s * h)
        graph.add(GemmOp(p + "fc2", (act, w_fc2), (fc2,), m=s, k=mlp, n=h))

        x_next = tensor(f"x{layer + 1}", s * h)
        graph.add(
            NonGemmOp(
                p + "add2", (x_res1, fc2), (x_next,), op_type="add", elements=s * h
            )
        )
        x = x_next

    # ------------------------------------------------------------------
    # Classifier head
    # ------------------------------------------------------------------
    xf = tensor("ln_f_out", s * h)
    graph.add(NonGemmOp("ln_f", (x,), (xf,), op_type="layernorm", elements=s * h))
    pooled = tensor("pooled", h)
    graph.add(NonGemmOp("pool", (xf,), (pooled,), op_type="pool", elements=s * h))
    w_head = tensor("w_head", h * config.num_classes)
    logits = tensor("logits", config.num_classes)
    graph.add(
        GemmOp("head", (pooled, w_head), (logits,), m=1, k=h, n=config.num_classes)
    )
    return graph
