"""The sweep service: query path, single-flight fills, pinned identity.

:class:`SweepService` is the HTTP-agnostic core of ``python -m repro
serve`` (docs/SERVING.md).  It answers point-result queries straight
from the content-addressed :class:`~repro.sweep.cache.ResultCache` --
a warm query is an in-memory index lookup plus one small-file read,
microseconds end to end -- and turns cold misses into simulations
through three layers:

1. **Single-flight coalescing** (:mod:`repro.serve.singleflight`):
   concurrent identical misses share one flight keyed on the same
   sha256 ``point_key`` the cache uses, so N clients asking for one
   cold point cost exactly one simulation.
2. **Miss batching**: distinct cold misses accumulate for a short
   ``batch_window`` and fill as *one*
   :func:`~repro.sweep.engine.run_points` batch on a worker pool --
   one pool invocation per burst, not per query.
3. **Bit-identity**: fills run through the unmodified sweep engine
   against the same cache directory, so served records are the very
   records a direct ``run_sweep`` produces (the golden-identity rig
   from the sweep/orchestrate layers gates this in CI).

A long-running server must not let its identity drift under it, so the
service *pins* at construction what batch runs re-derive per process:
the resolved cache directory (``$REPRO_SWEEP_CACHE_DIR`` is read once,
a mid-flight env change cannot split the cache) and the
:func:`~repro.sweep.cache.code_version` digest.  Both are exposed in
``/healthz``; before every fill batch the digest is recomputed from
disk (:func:`~repro.sweep.cache.fresh_code_version`) and a mismatch --
someone edited the source tree under a running server -- refuses the
fill with :class:`StaleCodeError` rather than serving records that are
no longer reproducible by this tree.  Cached entries keep serving:
they are still bit-identical to what the pinned tree computed.

Threading model: all service state is touched only from the event
loop.  Fill batches run in a worker thread (``asyncio.to_thread``)
that reports back exclusively through ``call_soon_threadsafe``; the
shared :class:`ResultCache` instance is the one object both threads
drive, which its lock-protected counters make safe.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sweep import SWEEPS
from repro.sweep.cache import (
    ResultCache,
    code_version,
    default_cache_dir,
    fresh_code_version,
    point_key,
)
from repro.sweep.engine import point_params, run_points
from repro.sweep.spec import SweepPoint, SweepSpec, apply_domains, resolve_runner
from repro.telemetry.metrics import render_prometheus

from repro.serve.singleflight import SingleFlight

__all__ = [
    "BadRequestError",
    "FillError",
    "ServeSettings",
    "StaleCodeError",
    "SweepService",
    "UnknownPointError",
    "UnknownSweepError",
]


class UnknownSweepError(LookupError):
    """No registered sweep under the queried name (HTTP 404)."""


class UnknownPointError(LookupError):
    """The sweep exists but has no point with that key (HTTP 404)."""


class BadRequestError(ValueError):
    """Malformed query arguments (HTTP 400)."""


class StaleCodeError(RuntimeError):
    """The source tree no longer matches the pinned digest (HTTP 503)."""


class FillError(RuntimeError):
    """A fill run failed; the waiting queries surface it (HTTP 500)."""


@dataclass(frozen=True)
class ServeSettings:
    """Startup configuration of the result server."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: Process-pool width of each fill batch (1 = simulate in the fill
    #: thread itself).
    workers: int = 1
    #: Cache directory; None resolves ``$REPRO_SWEEP_CACHE_DIR`` or the
    #: default location *once*, at service construction.
    cache_dir: Optional[str] = None
    #: Event domains per point (intra-point PDES) applied to every
    #: served sweep, unless a query's ``args`` set their own.
    domains: Optional[int] = None
    #: Seconds a first miss waits for concurrent distinct misses to
    #: pile onto the same fill batch.
    batch_window: float = 0.01
    #: Retained per-query latency samples for the /metrics quantiles.
    latency_window: int = 4096


@dataclass
class _FillJob:
    """One cold point awaiting the next fill batch."""

    spec: SweepSpec
    point: SweepPoint
    key_hash: str


@dataclass
class _PointEntry:
    """Pre-resolved identity of one queryable point."""

    point: SweepPoint
    params: dict
    key_hash: str


class SweepService:
    """Query/fill core shared by the HTTP front end, tests and benches."""

    def __init__(self, settings: Optional[ServeSettings] = None) -> None:
        self.settings = settings or ServeSettings()
        #: Pinned at startup: the env var is consulted exactly once.
        self.cache_dir = str(
            (self.settings.cache_dir and os.path.abspath(
                os.path.expanduser(self.settings.cache_dir)))
            or default_cache_dir().expanduser().resolve()
        )
        #: Pinned at startup: fills are refused once the tree drifts.
        self.code = code_version()
        self.cache = ResultCache(self.cache_dir)
        self.started = time.time()
        self.singleflight = SingleFlight()
        #: key_hash -> job waiting for the next fill batch.
        self._pending: Dict[str, _FillJob] = {}
        #: key_hash -> sweep name, for labelling landed outcomes.
        self._flight_sweep: Dict[str, str] = {}
        #: (name, canonical args JSON) -> (spec, {repr(key): entry}).
        self._indices: Dict[Tuple[str, str],
                            Tuple[SweepSpec, Dict[str, _PointEntry]]] = {}
        self._subscribers: List[asyncio.Queue] = []
        self._wake: Optional[asyncio.Event] = None
        self._fill_task: Optional[asyncio.Task] = None
        # Counters (event-loop thread only).
        self.queries_total = 0
        self.query_hits = 0
        self.query_misses = 0
        self.fill_runs = 0
        self.fill_points = 0
        self.fill_refused = 0
        self.events_dropped = 0
        self._latency_us: deque = deque(
            maxlen=self.settings.latency_window)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Arm the fill loop on the running event loop."""
        self._wake = asyncio.Event()
        self._fill_task = asyncio.get_running_loop().create_task(
            self._fill_loop(), name="repro.serve.fill"
        )

    async def stop(self) -> None:
        """Cancel the fill loop and fail every in-flight query."""
        if self._fill_task is not None:
            self._fill_task.cancel()
            try:
                await self._fill_task
            except asyncio.CancelledError:
                pass
            self._fill_task = None
        self._pending.clear()
        self._flight_sweep.clear()
        self.singleflight.fail_all(FillError("server shutting down"))

    # ------------------------------------------------------------------
    # Point resolution
    # ------------------------------------------------------------------
    def _spec_index(
        self, sweep: str, args: Optional[dict]
    ) -> Tuple[SweepSpec, Dict[str, _PointEntry]]:
        """The (spec, key-index) pair for one (sweep, args) identity.

        Built once per identity and cached: every later query is pure
        dict lookups.  ``args`` uses the orchestration manifests'
        JSON-safe override vocabulary (``base`` is a system *name*).
        """
        if args is not None and not isinstance(args, dict):
            raise BadRequestError(
                f"args must be a JSON object of sweep-factory overrides, "
                f"got {type(args).__name__}"
            )
        args = args or {}
        try:
            cache_key = (sweep, json.dumps(args, sort_keys=True))
        except TypeError as exc:
            raise BadRequestError(f"args are not JSON-safe: {exc}") from None
        cached = self._indices.get(cache_key)
        if cached is not None:
            return cached
        if sweep not in SWEEPS:
            raise UnknownSweepError(
                f"unknown sweep {sweep!r}; GET /sweeps lists the "
                f"{len(SWEEPS)} registered names"
            )
        from repro.orchestrate.manifest import apply_overrides

        try:
            spec = apply_overrides(sweep, args)
            if (self.settings.domains and self.settings.domains != 1
                    and "domains" not in args):
                spec = apply_domains(spec, self.settings.domains)
        except (TypeError, ValueError, KeyError) as exc:
            raise BadRequestError(
                f"cannot build sweep {sweep!r} with args {args!r}: {exc}"
            ) from None
        runner = resolve_runner(spec.runner)
        index: Dict[str, _PointEntry] = {}
        for point in spec.points:
            params = point_params(spec, point)
            index[repr(point.key)] = _PointEntry(
                point=point,
                params=params,
                key_hash=point_key(point, runner, params),
            )
        self._indices[cache_key] = (spec, index)
        return spec, index

    def _lookup(
        self, sweep: str, key: str, args: Optional[dict]
    ) -> Tuple[SweepSpec, _PointEntry]:
        spec, index = self._spec_index(sweep, args)
        entry = index.get(key)
        if entry is None:
            sample = next(iter(index), None)
            raise UnknownPointError(
                f"sweep {sweep!r} has no point keyed {key!r}; keys are "
                f"Python reprs of the point labels ({len(index)} points, "
                f"e.g. {sample!r})"
            )
        return spec, entry

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def query(
        self, sweep: str, key: str, args: Optional[dict] = None
    ) -> dict:
        """One point result: cache hit, coalesced wait, or fresh fill.

        The in-flight registry is checked *before* the cache: a
        coalesced follower costs a dict lookup, never disk I/O, and the
        engine's own lookup inside the fill batch remains the single
        authoritative miss per flight.
        """
        t0 = time.perf_counter()
        self.queries_total += 1
        spec, entry = self._lookup(sweep, key, args)
        coalesced = False
        if entry.key_hash in self.singleflight:
            flight, _leader = self.singleflight.claim(entry.key_hash)
            coalesced = True
        else:
            record = self.cache.get(entry.key_hash)
            if record is not None:
                self.query_hits += 1
                self._note_latency(t0)
                return self._payload(sweep, key, entry, record,
                                     cached=True, coalesced=False)
            flight, leader = self.singleflight.claim(entry.key_hash)
            if leader:
                self._enqueue(spec, entry)
        self.query_misses += 1
        record = await self.singleflight.wait(flight)
        self._note_latency(t0)
        return self._payload(sweep, key, entry, record,
                             cached=False, coalesced=coalesced)

    @staticmethod
    def _payload(sweep, key, entry, record, *, cached, coalesced) -> dict:
        return {
            "sweep": sweep,
            "key": key,
            "key_hash": entry.key_hash,
            "cached": cached,
            "coalesced": coalesced,
            "record": record,
        }

    def enqueue_sweep(self, sweep: str, args: Optional[dict] = None) -> dict:
        """Prefetch: enqueue every cold point of a sweep for filling.

        Returns the disposition per point (already cached / already in
        flight / newly enqueued); progress streams to ``/events``
        subscribers as each fill lands.
        """
        spec, index = self._spec_index(sweep, args)
        cached = in_flight = enqueued = 0
        for entry in index.values():
            if entry.key_hash in self.singleflight:
                in_flight += 1
                continue
            if self.cache.get(entry.key_hash) is not None:
                cached += 1
                continue
            _flight, leader = self.singleflight.claim(entry.key_hash)
            if leader:
                self._enqueue(spec, entry)
                enqueued += 1
        return {
            "sweep": sweep,
            "points": len(index),
            "cached": cached,
            "in_flight": in_flight,
            "enqueued": enqueued,
        }

    def _enqueue(self, spec: SweepSpec, entry: _PointEntry) -> None:
        self._pending[entry.key_hash] = _FillJob(
            spec=spec, point=entry.point, key_hash=entry.key_hash
        )
        self._flight_sweep[entry.key_hash] = spec.name
        if self._wake is None:
            raise FillError("service not started: no fill loop to wake")
        self._wake.set()

    def _note_latency(self, t0: float) -> None:
        self._latency_us.append((time.perf_counter() - t0) * 1e6)

    # ------------------------------------------------------------------
    # Fill loop
    # ------------------------------------------------------------------
    async def _fill_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.settings.batch_window > 0:
                # Let a burst of concurrent distinct misses pile onto
                # this batch instead of paying one fill run each.
                await asyncio.sleep(self.settings.batch_window)
            jobs = list(self._pending.values())
            self._pending.clear()
            if jobs:
                await self._run_fill(jobs)

    async def _run_fill(self, jobs: List[_FillJob]) -> None:
        digest = await asyncio.to_thread(fresh_code_version)
        if digest != self.code:
            self.fill_refused += len(jobs)
            error = StaleCodeError(
                f"source tree changed under the running server: pinned "
                f"code digest {self.code[:12]}..., tree is now "
                f"{digest[:12]}... -- refusing to fill; restart the "
                f"server to serve the edited tree"
            )
            for job in jobs:
                self._flight_sweep.pop(job.key_hash, None)
                self.singleflight.fail(job.key_hash, error)
            self._broadcast({"type": "fill-refused", "points": len(jobs),
                             "error": str(error)})
            return
        self.fill_runs += 1
        self._broadcast({"type": "fill-start", "points": len(jobs)})
        loop = asyncio.get_running_loop()

        def from_fill_thread(outcome) -> None:
            loop.call_soon_threadsafe(self._land, outcome)

        try:
            await asyncio.to_thread(
                run_points,
                [(job.spec, job.point) for job in jobs],
                workers=self.settings.workers,
                cache=self.cache,
                on_outcome=from_fill_thread,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced per waiter
            error = FillError(f"fill run failed: {exc}")
            for job in jobs:
                # Outcomes that landed before the failure already
                # resolved their flights; fail only the remainder.
                self._flight_sweep.pop(job.key_hash, None)
                self.singleflight.fail(job.key_hash, error)
            self._broadcast({"type": "fill-error", "points": len(jobs),
                             "error": str(exc)})
            return
        self._broadcast({"type": "fill-done", "points": len(jobs)})

    def _land(self, outcome) -> None:
        """One fill outcome arrives on the event loop thread."""
        if not outcome.cached:
            self.fill_points += 1
        sweep = self._flight_sweep.pop(outcome.key_hash, None)
        self.singleflight.resolve(outcome.key_hash, outcome.record)
        self._broadcast({
            "type": "outcome",
            "sweep": sweep,
            "key": repr(outcome.key),
            "key_hash": outcome.key_hash,
            "cached": outcome.cached,
        })

    # ------------------------------------------------------------------
    # Progress streaming (SSE feed)
    # ------------------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def _broadcast(self, event: dict) -> None:
        for queue in self._subscribers:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                # A stalled consumer must not block the loop; it can
                # re-sync from /healthz counters.
                self.events_dropped += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def latency_quantiles(self) -> Optional[Dict[str, float]]:
        if not self._latency_us:
            return None
        data = sorted(self._latency_us)

        def at(fraction: float) -> float:
            return data[min(len(data) - 1,
                            int(fraction * (len(data) - 1) + 0.5))]

        return {"p50": round(at(0.50), 1), "p95": round(at(0.95), 1)}

    def healthz(self) -> dict:
        """Liveness plus the pinned identity every client can verify."""
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started, 3),
            "cache_dir": self.cache_dir,
            "code": self.code,
            "workers": self.settings.workers,
            "domains": self.settings.domains,
            "batch_window_s": self.settings.batch_window,
            "queries_total": self.queries_total,
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "coalesced": self.singleflight.coalesced,
            "in_flight": len(self.singleflight),
            "pending_fill": len(self._pending),
            "fill_runs": self.fill_runs,
            "fill_points": self.fill_points,
            "fill_refused": self.fill_refused,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "latency_us": self.latency_quantiles(),
        }

    def sweeps(self) -> List[dict]:
        """The queryable namespace (name + default point count)."""
        out = []
        for name in sorted(SWEEPS):
            entry: Dict[str, Any] = {"name": name}
            try:
                spec, index = self._spec_index(name, None)
            except BadRequestError:
                entry["points"] = None
            else:
                entry["points"] = len(index)
            out.append(entry)
        return out

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server counters."""
        quantiles = self.latency_quantiles() or {}
        families = [
            ("repro_serve_queries_total", "counter",
             "Point queries received.",
             [(None, self.queries_total)]),
            ("repro_serve_query_hits_total", "counter",
             "Queries answered straight from the result cache.",
             [(None, self.query_hits)]),
            ("repro_serve_query_misses_total", "counter",
             "Queries that waited on a fill (leaders and followers).",
             [(None, self.query_misses)]),
            ("repro_serve_coalesced_total", "counter",
             "Queries coalesced onto an in-flight identical fill.",
             [(None, self.singleflight.coalesced)]),
            ("repro_serve_fill_runs_total", "counter",
             "Batched fill runs executed.",
             [(None, self.fill_runs)]),
            ("repro_serve_fill_points_total", "counter",
             "Points simulated by fill runs.",
             [(None, self.fill_points)]),
            ("repro_serve_fill_refused_total", "counter",
             "Fill jobs refused because the source tree no longer "
             "matches the pinned code digest.",
             [(None, self.fill_refused)]),
            ("repro_serve_cache_hits_total", "counter",
             "Result-cache hits (query path plus fill engine).",
             [(None, self.cache.hits)]),
            ("repro_serve_cache_misses_total", "counter",
             "Result-cache misses (query path plus fill engine).",
             [(None, self.cache.misses)]),
            ("repro_serve_in_flight", "gauge",
             "Cold keys currently being filled.",
             [(None, len(self.singleflight))]),
            ("repro_serve_events_dropped_total", "counter",
             "Progress events dropped on stalled SSE subscribers.",
             [(None, self.events_dropped)]),
            ("repro_serve_uptime_seconds", "gauge",
             "Seconds since the server pinned its identity.",
             [(None, round(time.time() - self.started, 3))]),
        ]
        if quantiles:
            families.append((
                "repro_serve_query_latency_us", "gauge",
                "Recent query latency quantiles, microseconds.",
                [({"quantile": "0.5"}, quantiles["p50"]),
                 ({"quantile": "0.95"}, quantiles["p95"])],
            ))
        return render_prometheus(families)
