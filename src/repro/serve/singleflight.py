"""Per-key in-flight registry: coalesce identical cold misses.

The result server keys simulations exactly as the cache does (the
``point_key`` sha256 over runner + canonical config + final params +
code digest), so "the same query" and "the same cache entry" are one
notion.  The first query to miss on a key becomes that key's *leader*
and enqueues one fill job; every concurrent identical query becomes a
*follower* and awaits the leader's future.  However many clients ask,
each cold key simulates exactly once per flight.

Single-threaded by design: the registry is only touched from the
server's event loop (claims from request handlers, resolutions posted
back from the fill thread via ``call_soon_threadsafe``), so dict
operations need no locking.  Followers must await through
``asyncio.shield`` -- a client disconnecting mid-wait cancels its own
handler task, and an unshielded await would propagate that
cancellation into the shared future, killing the result for every
other waiter.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """An asyncio future per in-flight cache key."""

    def __init__(self) -> None:
        self._flights: Dict[str, asyncio.Future] = {}
        #: Followers coalesced onto a leader's flight, ever.
        self.coalesced = 0
        #: Flights led (first-misser claims), ever.
        self.led = 0

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._flights

    def claim(self, key: str) -> Tuple[asyncio.Future, bool]:
        """The flight future for ``key`` plus whether the caller leads.

        The leader (second element True) is responsible for getting a
        fill job enqueued; followers just await.
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.coalesced += 1
            return flight, False
        flight = asyncio.get_running_loop().create_future()
        self._flights[key] = flight
        self.led += 1
        return flight, True

    async def wait(self, flight: asyncio.Future):
        """Await a flight without being able to cancel it for others."""
        return await asyncio.shield(flight)

    def resolve(self, key: str, record: dict) -> None:
        """Land ``key``'s flight with its simulated record."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.done():
            flight.set_result(record)

    def fail(self, key: str, error: BaseException) -> None:
        """Fail ``key``'s flight; waiters re-raise ``error``."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.done():
            flight.set_exception(error)
            # An enqueue-only flight (prefetch, no waiter) must not
            # log "exception was never retrieved" at shutdown.
            flight.exception()

    def fail_all(self, error: BaseException) -> None:
        """Fail every in-flight key (server shutdown)."""
        for key in list(self._flights):
            self.fail(key, error)
