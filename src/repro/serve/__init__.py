"""Sweep-as-a-service: a long-running result server over the cache.

``python -m repro serve`` turns the content-addressed result cache
into a queryable service (docs/SERVING.md): warm point queries answer
in microseconds straight from :class:`~repro.sweep.cache.ResultCache`,
concurrent identical cold queries coalesce into exactly one simulation
(:mod:`~repro.serve.singleflight`), distinct cold misses batch into
one :func:`~repro.sweep.engine.run_points` fill run on a worker pool,
and fill progress streams to any number of clients over SSE.  Served
records are bit-identical to what a direct ``run_sweep`` writes -- the
server is a read/compute front end over the same cache entries, never
a second source of truth.

Stdlib only: the HTTP layer (:mod:`~repro.serve.http`) is a small
hand-rolled HTTP/1.1 subset on ``asyncio.start_server``.
"""

from repro.serve.http import ReproServer, ServerThread, serve_forever
from repro.serve.service import (
    BadRequestError,
    FillError,
    ServeSettings,
    StaleCodeError,
    SweepService,
    UnknownPointError,
    UnknownSweepError,
)
from repro.serve.singleflight import SingleFlight

__all__ = [
    "BadRequestError",
    "FillError",
    "ReproServer",
    "ServeSettings",
    "ServerThread",
    "SingleFlight",
    "StaleCodeError",
    "SweepService",
    "UnknownPointError",
    "UnknownSweepError",
    "serve_forever",
]
