"""Stdlib asyncio HTTP/1.1 front end for the sweep result server.

Hand-rolled on ``asyncio.start_server`` because the serving layer is a
hard no-new-deps zone (ROADMAP): the whole wire surface is a handful of
JSON endpoints plus one Server-Sent-Events stream, well within what a
small, careful HTTP/1.1 subset covers.  Keep-alive is supported (the
bench and CI smoke drive warm queries over one connection); requests
are size-capped; anything malformed gets a JSON error and the
connection closed.

Endpoints (docs/SERVING.md):

====================  ==================================================
``GET /healthz``      liveness + pinned identity (cache dir, code digest)
``GET /metrics``      Prometheus text exposition of the server counters
``GET /sweeps``       the queryable sweep namespace
``POST /query``       one point result ``{"sweep", "key", "args"?}``
``GET /query``        same via ``?sweep=...&key=...`` (keys URL-encoded)
``POST /sweep``       prefetch: enqueue a sweep's cold points
``GET /events``       SSE stream of fill progress events
====================  ==================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.service import (
    BadRequestError,
    FillError,
    ServeSettings,
    StaleCodeError,
    SweepService,
    UnknownPointError,
    UnknownSweepError,
)

__all__ = ["ReproServer", "ServerThread", "serve_forever"]

#: Request line + headers cap; bodies are capped separately.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request off a keep-alive connection; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise _HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, f"malformed request line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _HttpError(400, "non-integer Content-Length") from None
        if n > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise _HttpError(400, "truncated request body") from None
    return method.upper(), target, headers, body


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _response(status: int, body: bytes,
              content_type: str = "application/json") -> bytes:
    return (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1") + body


def _parse_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, f"request body is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise _HttpError(
            400, f"request body must be a JSON object, "
                 f"got {type(payload).__name__}")
    return payload


class ReproServer:
    """Bind a :class:`SweepService` to a listening socket."""

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start service + listener; returns the bound (host, port)."""
        await self.service.start()
        settings = self.service.settings
        self._server = await asyncio.start_server(
            self._handle, settings.host, settings.port,
            limit=MAX_HEADER_BYTES,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_until(self, stop: asyncio.Event) -> None:
        await stop.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(_response(exc.status, _json_bytes(
                        {"error": str(exc)})))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                parts = urlsplit(target)
                if parts.path == "/events":
                    # SSE takes over the connection and never returns
                    # to the keep-alive loop.
                    await self._stream_events(writer)
                    break
                status, payload, content_type = await self._route(
                    method, parts.path, parts.query, body)
                writer.write(_response(status, payload, content_type))
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        service = self.service
        try:
            if path == "/healthz" and method == "GET":
                return 200, _json_bytes(service.healthz()), "application/json"
            if path == "/metrics" and method == "GET":
                return (200, service.metrics_text().encode("utf-8"),
                        "text/plain; version=0.0.4")
            if path == "/sweeps" and method == "GET":
                return (200, _json_bytes({"sweeps": service.sweeps()}),
                        "application/json")
            if path == "/query":
                if method == "POST":
                    payload = _parse_body(body)
                elif method == "GET":
                    params = parse_qs(query)
                    payload = {
                        "sweep": unquote(params["sweep"][0])
                        if "sweep" in params else None,
                        "key": unquote(params["key"][0])
                        if "key" in params else None,
                    }
                else:
                    return (405, _json_bytes(
                        {"error": "use GET or POST on /query"}),
                        "application/json")
                sweep = payload.get("sweep")
                key = payload.get("key")
                if not isinstance(sweep, str) or not isinstance(key, str):
                    raise _HttpError(
                        400, 'query needs {"sweep": <name>, "key": '
                             '<repr of point key>}')
                result = await service.query(
                    sweep, key, payload.get("args"))
                return 200, _json_bytes(result), "application/json"
            if path == "/sweep" and method == "POST":
                payload = _parse_body(body)
                sweep = payload.get("sweep")
                if not isinstance(sweep, str):
                    raise _HttpError(400, 'prefetch needs {"sweep": <name>}')
                result = service.enqueue_sweep(sweep, payload.get("args"))
                return 200, _json_bytes(result), "application/json"
            return (404, _json_bytes(
                {"error": f"no route {method} {path}"}), "application/json")
        except _HttpError as exc:
            return (exc.status, _json_bytes({"error": str(exc)}),
                    "application/json")
        except (UnknownSweepError, UnknownPointError) as exc:
            return 404, _json_bytes({"error": str(exc)}), "application/json"
        except BadRequestError as exc:
            return 400, _json_bytes({"error": str(exc)}), "application/json"
        except StaleCodeError as exc:
            return 503, _json_bytes({"error": str(exc)}), "application/json"
        except FillError as exc:
            return 500, _json_bytes({"error": str(exc)}), "application/json"

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        """SSE: every fill progress event, one ``data:`` frame each."""
        queue = self.service.subscribe()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n"
                b"\r\n"
                b": stream open\n\n"
            )
            await writer.drain()
            while True:
                event = await queue.get()
                frame = f"data: {json.dumps(event, sort_keys=True)}\n\n"
                writer.write(frame.encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.service.unsubscribe(queue)


async def serve_forever(
    settings: Optional[ServeSettings] = None,
    ready: Optional["threading.Event"] = None,
    stop: Optional[asyncio.Event] = None,
    announce: bool = False,
) -> None:
    """Run the server until cancelled (or ``stop`` is set)."""
    server = ReproServer(SweepService(settings))
    host, port = await server.start()
    if announce:
        health = server.service.healthz()
        print(f"repro serve: listening on http://{host}:{port}", flush=True)
        print(f"repro serve: cache_dir={health['cache_dir']}", flush=True)
        print(f"repro serve: code={health['code'][:12]}...", flush=True)
    if ready is not None:
        ready.set()
    try:
        if stop is not None:
            await server.serve_until(stop)
        else:
            await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


class ServerThread:
    """A live server on a background thread (tests, benches, CI smoke).

    Binds an ephemeral port unless told otherwise; ``start`` blocks
    until the socket is accepting.  One instance per cache directory
    under test.
    """

    def __init__(self, settings: Optional[ServeSettings] = None) -> None:
        self.settings = settings or ServeSettings(port=0)
        self.server: Optional[ReproServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    @property
    def service(self) -> SweepService:
        return self.server.service

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro.serve.test", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread failed to come up")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ReproServer(SweepService(self.settings))
        self.host, self.port = await self.server.start()
        self._ready.set()
        await self.server.serve_until(self._stop)

    def stop(self, timeout: float = 30.0) -> None:
        if self.loop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
