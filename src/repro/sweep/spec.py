"""Sweep descriptions: points, specs, and the experiment registry.

A sweep is a grid of simulation points.  Each :class:`SweepPoint` pairs a
:class:`~repro.core.config.SystemConfig` with the workload parameters of
one run and a ``key`` that labels the point in reports (e.g. ``(lanes,
gbps)`` for the Fig. 3 grid).  A :class:`SweepSpec` bundles the points
with the *runner* that simulates one point.

Runners are registered by name (:func:`register_runner`) so a point can
be shipped to a worker process as plain data and resolved there; a
module-level callable works too (pickled by reference), provided it
returns a JSON-safe dict -- register a codec (``encode``/``decode``)
for richer result types.  The built-in ``"gemm"`` and ``"vit"`` runners
drive :func:`repro.core.runner.run_gemm` / ``run_vit`` and round-trip
their results through the on-disk cache.

Named experiments live in :data:`SWEEPS` via :func:`register_sweep`; the
figure/table sweeps themselves are defined in
:mod:`repro.sweep.experiments`, and the CLI and examples look sweeps up
there instead of hand-rolling loops.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.config import SystemConfig, canonical_value
from repro.core.runner import (
    GemmResult,
    MultiGemmResult,
    PeerTransferResult,
    ViTResult,
    run_gemm,
    run_multi_gemm,
    run_peer_transfer,
    run_vit,
)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep grid.

    ``key`` labels the point in reports and must be unique within a
    spec; ``params`` are keyword arguments for the runner (e.g. GEMM
    dimensions).  Both must canonicalize (see
    :func:`repro.core.config.canonical_value`) so the point can be
    hashed into a cache key.
    """

    key: Any
    config: SystemConfig
    params: Mapping[str, Any] = field(default_factory=dict)

    def canonical_params(self) -> dict:
        return {name: canonical_value(value)
                for name, value in sorted(self.params.items())}


@dataclass
class SweepSpec:
    """A named grid of points plus the function that simulates one.

    ``runner`` is either a name registered via :func:`register_runner`
    or a module-level callable ``(config, **params) -> result``.
    ``auto_seed`` injects a deterministic per-point ``seed`` parameter
    (derived from ``base_seed``, the point key, and the config hash)
    when the point does not set one itself.
    """

    name: str
    points: List[SweepPoint]
    runner: Union[str, Callable] = "gemm"
    base_seed: int = 1234
    auto_seed: bool = False

    def __post_init__(self) -> None:
        keys = [point.key for point in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep {self.name!r} has duplicate point keys")
        if isinstance(self.runner, str) and self.runner not in RUNNERS \
                and self.runner not in LAZY_RUNNER_MODULES:
            raise ValueError(
                f"unknown runner {self.runner!r}; registered: {sorted(RUNNERS)}"
            )

    def __len__(self) -> int:
        return len(self.points)


def derive_seed(base_seed: int, point: SweepPoint) -> int:
    """A deterministic, per-point RNG seed.

    Independent of point order (keyed on the point itself, not its
    index) so inserting a point into a grid never reseeds its
    neighbours.
    """
    tag = f"{base_seed}:{point.key!r}:{point.config.stable_hash()}"
    return int.from_bytes(
        hashlib.sha256(tag.encode("utf-8")).digest()[:4], "big"
    ) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Runner:
    """A point simulator plus its cache codec.

    ``encode`` turns the live result into a JSON-safe record (what the
    cache stores); ``decode`` rebuilds a result object from a record so
    cache hits and live runs hand callers the same type.
    """

    name: str
    run: Callable[..., Any]
    encode: Callable[[Any], dict]
    decode: Callable[[dict], Any]


RUNNERS: Dict[str, Runner] = {}

#: Runners that register on first use: name -> defining module.  Keeps
#: optional subsystems (the fault-injection layer) out of the default
#: sweep import footprint while letting freshly spawned worker
#: processes resolve their runner names by string.
LAZY_RUNNER_MODULES: Dict[str, str] = {
    "resilience": "repro.faults.runner",
}


def _default_encode(result: Any) -> dict:
    """Codec for runners registered without one: dict records pass through."""
    if isinstance(result, dict):
        return result
    raise TypeError(
        f"runner returned {type(result).__name__}; runners without an "
        f"encode/decode codec must return a JSON-safe dict -- use "
        f"register_runner(name, run, encode, decode) for richer result types"
    )


def register_runner(
    name: str,
    run: Callable[..., Any],
    encode: Optional[Callable[[Any], dict]] = None,
    decode: Optional[Callable[[dict], Any]] = None,
) -> Runner:
    """Register a named point runner (last registration wins)."""
    runner = Runner(
        name=name,
        run=run,
        encode=encode or _default_encode,
        decode=decode or (lambda record: record),
    )
    RUNNERS[name] = runner
    return runner


def resolve_runner(runner: Union[str, Callable, Runner]) -> Runner:
    """Look up a registry name, or wrap a bare callable as identity-codec."""
    if isinstance(runner, Runner):
        return runner
    if isinstance(runner, str):
        if runner not in RUNNERS and runner in LAZY_RUNNER_MODULES:
            import importlib

            importlib.import_module(LAZY_RUNNER_MODULES[runner])
        return RUNNERS[runner]
    if callable(runner):
        return Runner(
            name=getattr(runner, "__name__", "callable"),
            run=runner,
            encode=_default_encode,
            decode=lambda record: record,
        )
    raise TypeError(f"runner must be a name or callable, got {runner!r}")


# ----------------------------------------------------------------------
# Built-in GEMM runner
# ----------------------------------------------------------------------
def _run_gemm_point(config: SystemConfig, **params) -> GemmResult:
    return run_gemm(config, **params)


def _encode_gemm(result: GemmResult) -> dict:
    # c_matrix is deliberately not cached: functional output belongs to
    # --verify runs.  table4 (plain ints/floats) rides along so the
    # Table IV and SMMU-ablation sweeps replay from cache.
    return {
        "config_name": result.config_name,
        "m": result.m,
        "k": result.k,
        "n": result.n,
        "ticks": result.ticks,
        "job_ticks": result.job_ticks,
        "traffic_bytes": result.traffic_bytes,
        "table4": result.table4,
        "component_stats": dict(result.component_stats),
    }


def _decode_gemm(record: dict) -> GemmResult:
    return GemmResult(
        config_name=record["config_name"],
        m=record["m"],
        k=record["k"],
        n=record["n"],
        ticks=record["ticks"],
        job_ticks=record["job_ticks"],
        traffic_bytes=record["traffic_bytes"],
        table4=record.get("table4"),
        component_stats=dict(record.get("component_stats", {})),
    )


register_runner("gemm", _run_gemm_point, _encode_gemm, _decode_gemm)


# ----------------------------------------------------------------------
# Built-in ViT runner
# ----------------------------------------------------------------------
def _run_vit_point(config: SystemConfig, **params) -> ViTResult:
    return run_vit(config, **params)


def _encode_vit(result: ViTResult) -> dict:
    return {
        "config_name": result.config_name,
        "model_name": result.model_name,
        "total_ticks": result.total_ticks,
        "gemm_ticks": result.gemm_ticks,
        "nongemm_ticks": result.nongemm_ticks,
        "op_ticks": dict(result.op_ticks),
        "memo_hits": result.memo_hits,
    }


def _decode_vit(record: dict) -> ViTResult:
    return ViTResult(
        config_name=record["config_name"],
        model_name=record["model_name"],
        total_ticks=record["total_ticks"],
        gemm_ticks=record["gemm_ticks"],
        nongemm_ticks=record["nongemm_ticks"],
        op_ticks=dict(record.get("op_ticks", {})),
        memo_hits=record.get("memo_hits", 0),
    )


register_runner("vit", _run_vit_point, _encode_vit, _decode_vit)


# ----------------------------------------------------------------------
# Built-in multi-device runners (topology experiments)
# ----------------------------------------------------------------------
def _run_multigemm_point(config: SystemConfig, **params) -> MultiGemmResult:
    return run_multi_gemm(config, **params)


def _encode_multigemm(result: MultiGemmResult) -> dict:
    return {
        "config_name": result.config_name,
        "m": result.m,
        "k": result.k,
        "n": result.n,
        "num_devices": result.num_devices,
        "active_devices": result.active_devices,
        "device_ticks": list(result.device_ticks),
        "ticks": result.ticks,
        "total_traffic_bytes": result.total_traffic_bytes,
        "uplink_busy_frac": result.uplink_busy_frac,
        "component_stats": dict(result.component_stats),
    }


def _decode_multigemm(record: dict) -> MultiGemmResult:
    return MultiGemmResult(
        config_name=record["config_name"],
        m=record["m"],
        k=record["k"],
        n=record["n"],
        num_devices=record["num_devices"],
        active_devices=record["active_devices"],
        device_ticks=list(record.get("device_ticks", [])),
        ticks=record["ticks"],
        total_traffic_bytes=record["total_traffic_bytes"],
        uplink_busy_frac=record.get("uplink_busy_frac", 0.0),
        component_stats=dict(record.get("component_stats", {})),
    )


register_runner(
    "multigemm", _run_multigemm_point, _encode_multigemm, _decode_multigemm
)


def _run_peer_point(config: SystemConfig, **params) -> PeerTransferResult:
    return run_peer_transfer(config, **params)


def _encode_peer(result: PeerTransferResult) -> dict:
    return {
        "config_name": result.config_name,
        "mode": result.mode,
        "size_bytes": result.size_bytes,
        "ticks": result.ticks,
        "root_complex_bytes": result.root_complex_bytes,
    }


def _decode_peer(record: dict) -> PeerTransferResult:
    return PeerTransferResult(
        config_name=record["config_name"],
        mode=record["mode"],
        size_bytes=record["size_bytes"],
        ticks=record["ticks"],
        root_complex_bytes=record.get("root_complex_bytes", 0),
    )


register_runner("peer", _run_peer_point, _encode_peer, _decode_peer)


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------
#: Named sweep factories: name -> callable(**kwargs) -> SweepSpec.
SWEEPS: Dict[str, Callable[..., SweepSpec]] = {}


def register_sweep(name: str):
    """Decorator: register a factory that builds a named SweepSpec."""

    def wrap(factory: Callable[..., SweepSpec]) -> Callable[..., SweepSpec]:
        SWEEPS[name] = factory
        return factory

    return wrap


def build_sweep(name: str, **kwargs) -> SweepSpec:
    """Instantiate a registered sweep by name."""
    try:
        factory = SWEEPS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep {name!r}; registered: {sorted(SWEEPS)}"
        ) from None
    return factory(**kwargs)


def gemm_points(
    configs: Mapping[Any, SystemConfig], size: int
) -> List[SweepPoint]:
    """Points for a square-GEMM sweep over labelled configurations."""
    return [
        SweepPoint(key=key, config=config,
                   params={"m": size, "k": size, "n": size})
        for key, config in configs.items()
    ]


def apply_domains(spec: SweepSpec, domains: Optional[int]) -> SweepSpec:
    """Copy of ``spec`` with every point requesting ``domains`` event
    domains (intra-point PDES; see docs/PARALLEL.md).

    The request is validated up front: a point whose topology cannot
    honour the lookahead rule (a zero-latency hop) is refused here with
    the offending component named, before any simulation starts.  Points
    whose topology supports fewer domains than requested clamp via
    ``SystemConfig.effective_domains()`` -- one knob fits a grid of
    mixed endpoint counts.  ``None`` (or 1) returns the spec unchanged.
    """
    if domains is None or domains == 1:
        return spec
    from repro.topology.fabric import plan_for_config

    points = []
    for point in spec.points:
        config = point.config.with_domains(domains)
        try:
            plan_for_config(config)
        except ValueError as exc:
            raise ValueError(
                f"sweep {spec.name!r} point {point.key!r} cannot run "
                f"with --domains {domains}: {exc}"
            ) from None
        points.append(SweepPoint(point.key, config, point.params))
    return SweepSpec(
        name=spec.name,
        points=points,
        runner=spec.runner,
        base_seed=spec.base_seed,
        auto_seed=spec.auto_seed,
    )
