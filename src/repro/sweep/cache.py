"""Content-addressed on-disk cache for sweep results.

Every cache entry is one JSON file named by the sha256 of the point's
identity: the runner name, the full canonical :class:`SystemConfig`, the
workload parameters, and a *code version* fingerprint (a digest over the
``repro`` package sources).  Changing any configuration field, workload
parameter, or simulator source line therefore changes the key and forces
a re-simulation; nothing is ever served stale.

The cache directory defaults to ``$REPRO_SWEEP_CACHE_DIR`` or
``~/.cache/repro/sweeps``.  Writes go through a temp file + ``os.replace``
so concurrent workers never observe a half-written entry.  In-flight
temp files carry a ``.part`` suffix (never ``.json``) so the maintenance
surface -- ``entries``/``summarize``/``prune``/``clear``/``len`` -- can
run concurrently with writers on a shared directory without ever
observing, counting, or *deleting* a write in progress (deleting a temp
file between its write and its rename would make the writer's
``os.replace`` fail and silently drop the finished result).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import threading
import time
import types
from pathlib import Path
from typing import Optional

import repro
from repro.core.config import canonical_value

from repro.sweep.spec import SweepPoint, resolve_runner

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"
#: Bump to invalidate every existing entry on a format change.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweeps"


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file (plus the package version).

    Computed once per process; any edit to the simulator invalidates all
    cached results, which keeps "cached" synonymous with "bit-identical
    to a fresh run of this tree".
    """
    digest = hashlib.sha256()
    digest.update(getattr(repro, "__version__", "0").encode("utf-8"))
    package_root = Path(repro.__file__).resolve().parent
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def fresh_code_version() -> str:
    """Recompute the source digest from disk, bypassing the process memo.

    :func:`code_version` is cached for the life of the process, which is
    exactly right for batch sweeps (the code cannot change under a
    running run) and exactly wrong for a *long-running server*: an
    edited source tree would keep serving fills keyed on the stale
    digest.  The result server pins :func:`code_version` at startup and
    calls this before every fill run, refusing to simulate when the
    tree on disk no longer matches the pin (docs/SERVING.md).
    """
    return code_version.__wrapped__()


def _runner_fingerprint(runner) -> str:
    """An identity for the runner that keys the cache honestly.

    Runners living inside the ``repro`` package are covered by
    :func:`code_version`, so their dotted name suffices.  External
    runners (bare callables, user-registered ones) additionally digest
    their code object: editing such a runner's logic, or aliasing two
    different callables under one ``__name__``, must miss the cache.

    Known limit: only the runner's *own* code is digested, not helpers
    it calls or globals it reads -- editing those keeps the old key.
    When iterating on an external runner's support code, pass
    ``cache=False`` (or clear the cache dir); see docs/SWEEPS.md.
    """
    fn = runner.run
    module = getattr(fn, "__module__", "") or ""
    ident = f"{module}.{getattr(fn, '__qualname__', runner.name)}"
    if module != "repro" and not module.startswith("repro."):
        code = getattr(fn, "__code__", None)
        if code is not None:
            digest = hashlib.sha256()
            _digest_code(code, digest)
            ident += f":{digest.hexdigest()[:16]}"
    return ident


def _digest_code(code, digest) -> None:
    """Feed a code object into ``digest``, stable across processes.

    Nested code objects (lambdas, comprehensions) recurse on their
    bytecode -- their ``repr`` embeds a memory address and frozenset
    consts iterate in hash-randomized order, so naive ``repr(co_consts)``
    would change every interpreter run.
    """
    digest.update(code.co_code)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _digest_code(const, digest)
        elif isinstance(const, frozenset):
            digest.update(repr(sorted(const, key=repr)).encode("utf-8"))
        else:
            digest.update(repr(const).encode("utf-8"))


def point_key(point: SweepPoint, runner, params: Optional[dict] = None) -> str:
    """The content hash identifying one simulation point on disk.

    ``params`` defaults to the point's own parameters; the engine passes
    the seed-augmented set so auto-seeded runs key on the actual seed.
    """
    runner = resolve_runner(runner)
    identity = {
        "format": CACHE_FORMAT,
        "runner": runner.name,
        "runner_src": _runner_fingerprint(runner),
        "config": point.config.to_canonical(),
        "params": canonical_value(dict(params if params is not None
                                       else point.params)),
        "code": code_version(),
    }
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Suffix for in-flight write temp files.  Deliberately not ``.json``:
#: ``Path.glob("*.json")`` matches dot-prefixed names too, so a shared
#: suffix would expose half-written entries to every maintenance walk.
TMP_SUFFIX = ".part"

#: A temp file older than this is abandoned (its writer crashed between
#: write and rename); younger ones may belong to a live writer and are
#: never touched, even by :meth:`ResultCache.clear`.
STALE_TMP_SECONDS = 3600.0


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss.

    Some filesystems refuse ``open``/``fsync`` on directories; losing
    durability there is acceptable, silently losing the rename on
    filesystems that need it is not.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: os.PathLike, payload, *,
                      indent: Optional[int] = None,
                      sort_keys: bool = True) -> None:
    """Whole-file atomic durable JSON write: temp file + ``os.replace``.

    The single writer-side primitive behind the cache, lease files, run
    manifests and reports.  The temp name is unique per write
    (``mkstemp``), so concurrent writers of the *same* path can never
    steal each other's in-flight file -- the last atomic replace wins
    and neither writer crashes.  On any failure the temp file is
    unlinked, never left masquerading as progress.

    The temp file is flushed and fsynced *before* the rename -- without
    it a crash shortly after ``os.replace`` can leave the final name
    pointing at zero-length data, which readers would see as a corrupt
    cache entry rather than a missing one.  The directory fsync after
    the rename is best-effort (see :func:`_fsync_dir`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


class ResultCache:
    """A directory of ``<hash>.json`` result records.

    Safe for concurrent use by many processes on one directory: writes
    are atomic (temp file + rename), readers tolerate entries appearing
    and disappearing mid-walk, and maintenance operations never touch
    another writer's in-flight temp file.

    One *instance* is also safe to share across threads: the hit/miss
    counters are lock-protected, because ``self.hits += 1`` is a
    read-modify-write that loses increments when the result server (or
    any threaded caller) drives one cache from its event loop and its
    fill workers at once.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._counter_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _entry_paths(self):
        """Every *committed* entry file, sorted; temp files excluded."""
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        )

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            record = entry["record"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            # Unreadable, non-JSON, or wrong-shape entries (e.g. from an
            # older format) all degrade to a re-simulation.
            with self._counter_lock:
                self.misses += 1
            return None
        with self._counter_lock:
            self.hits += 1
        return record

    def put(self, key: str, record: dict, meta: Optional[dict] = None) -> None:
        """Atomically persist ``record`` under ``key``."""
        atomic_write_json(self._path(key),
                         {"record": record, "meta": meta or {}}, indent=1)

    def __len__(self) -> int:
        return len(self._entry_paths())

    def entries(self):
        """Yield ``(path, entry)`` for every readable cache entry.

        Unreadable, malformed, or concurrently-deleted files are
        skipped -- maintenance tooling must not fall over the same
        corrupt entry :meth:`get` tolerates, nor over a sibling
        process pruning the directory mid-walk.
        """
        for path in self._entry_paths():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(entry, dict):
                continue
            yield path, entry

    def summarize(self) -> dict:
        """Aggregate statistics: entry/byte totals and per-sweep counts.

        The per-sweep breakdown comes from each entry's ``meta.sweep``
        tag (written by the engine); entries without one are grouped
        under ``"(untagged)"``.
        """
        per_sweep: dict = {}
        entries = 0
        total_bytes = 0
        for path, entry in self.entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
            meta = entry.get("meta") or {}
            sweep = meta.get("sweep") or "(untagged)"
            per_sweep[sweep] = per_sweep.get(sweep, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "sweeps": dict(sorted(per_sweep.items())),
        }

    def prune(self, sweep: str) -> int:
        """Delete entries tagged with ``meta.sweep == sweep``.

        Points shared between experiments (e.g. fig8/fig9) are tagged by
        whichever sweep simulated them first; pruning removes the entry
        regardless of who else could replay it.
        """
        removed = 0
        for path, entry in self.entries():
            meta = entry.get("meta") or {}
            if meta.get("sweep") != sweep:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Abandoned ``.part`` temp files are swept as well (not counted
        as entries) -- but only those older than
        :data:`STALE_TMP_SECONDS`: a *young* temp file may be a live
        writer parked between write and rename, and deleting it would
        make that writer's ``os.replace`` crash, dropping its record.
        """
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            cutoff = time.time() - STALE_TMP_SECONDS
            for path in self.root.glob(f".tmp-*{TMP_SUFFIX}"):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                except OSError:
                    pass
        return removed


class NullCache:
    """Cache interface that stores nothing (``--no-cache``)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._counter_lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        with self._counter_lock:
            self.misses += 1
        return None

    def put(self, key: str, record: dict, meta: Optional[dict] = None) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0
