"""Parallel sweep engine with on-disk result caching.

Typical use::

    from repro.sweep import SweepPoint, SweepSpec, run_sweep

    points = [
        SweepPoint(key=packet,
                   config=base.with_packet_size(packet),
                   params={"m": 128, "k": 128, "n": 128})
        for packet in (64, 256, 1024)
    ]
    report = run_sweep(SweepSpec("packets", points), workers=4)
    for key, result in report.results().items():
        print(key, result.seconds)

See docs/SWEEPS.md for the full story (worker selection, the cache
directory, and how ``REPRO_FULL`` interacts with cache keys).
"""

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    NullCache,
    ResultCache,
    code_version,
    default_cache_dir,
    point_key,
)
from repro.sweep.engine import (
    WORKERS_ENV,
    SweepOutcome,
    SweepReport,
    resolve_workers,
    run_sweep,
)
from repro.sweep.spec import (
    SWEEPS,
    SweepPoint,
    SweepSpec,
    build_sweep,
    derive_seed,
    gemm_points,
    register_runner,
    register_sweep,
    resolve_runner,
)

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "SweepOutcome",
    "SweepReport",
    "run_sweep",
    "build_sweep",
    "register_sweep",
    "register_runner",
    "resolve_runner",
    "resolve_workers",
    "gemm_points",
    "derive_seed",
    "ResultCache",
    "NullCache",
    "point_key",
    "code_version",
    "default_cache_dir",
    "SWEEPS",
    "CACHE_DIR_ENV",
    "WORKERS_ENV",
]
