"""Parallel sweep engine with on-disk result caching.

Typical use::

    from repro.sweep import SweepPoint, SweepSpec, run_sweep

    points = [
        SweepPoint(key=packet,
                   config=base.with_packet_size(packet),
                   params={"m": 128, "k": 128, "n": 128})
        for packet in (64, 256, 1024)
    ]
    report = run_sweep(SweepSpec("packets", points), workers=4)
    for key, result in report.results().items():
        print(key, result.seconds)

See docs/SWEEPS.md for the full story (worker selection, the cache
directory, and how ``REPRO_FULL`` interacts with cache keys).
"""

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    NullCache,
    ResultCache,
    code_version,
    default_cache_dir,
    fresh_code_version,
    point_key,
)
from repro.sweep.engine import (
    WORKERS_ENV,
    SweepOutcome,
    SweepReport,
    iter_sweep,
    merge_report_records,
    parse_shard,
    point_params,
    resolve_workers,
    run_points,
    run_sweep,
    run_sweeps,
    shard_points,
)
from repro.sweep.spec import (
    RUNNERS,
    SWEEPS,
    SweepPoint,
    SweepSpec,
    apply_domains,
    build_sweep,
    derive_seed,
    gemm_points,
    register_runner,
    register_sweep,
    resolve_runner,
)

# Importing the experiments module registers every named figure/table
# sweep in SWEEPS as a side effect.
import repro.sweep.experiments  # noqa: E402,F401  (registration import)

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "SweepOutcome",
    "SweepReport",
    "run_sweep",
    "run_sweeps",
    "run_points",
    "iter_sweep",
    "point_params",
    "apply_domains",
    "build_sweep",
    "register_sweep",
    "register_runner",
    "resolve_runner",
    "resolve_workers",
    "parse_shard",
    "shard_points",
    "merge_report_records",
    "gemm_points",
    "derive_seed",
    "ResultCache",
    "NullCache",
    "point_key",
    "code_version",
    "fresh_code_version",
    "default_cache_dir",
    "RUNNERS",
    "SWEEPS",
    "CACHE_DIR_ENV",
    "WORKERS_ENV",
]
