"""The sweep executor: cache lookup, process-pool fan-out, fallback.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` end to
end:

1. every point is hashed (config + params + runner + code version) and
   looked up in the on-disk :class:`~repro.sweep.cache.ResultCache`;
2. the remaining points are sharded across a ``multiprocessing`` pool
   (``fork`` where available, ``spawn`` otherwise) -- each point is an
   independent :class:`~repro.core.system.AcceSysSystem`, so points
   never share simulator state and parallel results are bit-identical
   to serial ones;
3. fresh records are written back to the cache and decoded into the
   same result type a cache hit yields.

Worker count resolves from the ``workers`` argument, then the
``REPRO_SWEEP_WORKERS`` environment variable, then 1 (serial).  Any
failure to stand up the pool degrades gracefully to in-process serial
execution rather than failing the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sweep.cache import NullCache, ResultCache, point_key
from repro.sweep.spec import (
    Runner,
    SweepPoint,
    SweepSpec,
    derive_seed,
    resolve_runner,
)

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass
class SweepOutcome:
    """One finished point: its decoded result plus cache provenance."""

    point: SweepPoint
    result: Any
    record: dict
    cached: bool
    key_hash: str

    @property
    def key(self):
        return self.point.key


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` learned, in point order."""

    spec_name: str
    outcomes: List[SweepOutcome] = field(default_factory=list)
    workers: int = 1
    parallel: bool = False
    #: (index, total) when this report covers one shard of the grid.
    shard: Optional[Tuple[int, int]] = None

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def misses(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def fully_cached(self) -> bool:
        return bool(self.outcomes) and self.misses == 0

    def results(self) -> Dict[Any, Any]:
        """Point key -> decoded result, preserving spec order."""
        return {outcome.key: outcome.result for outcome in self.outcomes}

    def describe(self) -> str:
        mode = (f"{self.workers} workers" if self.parallel else "serial")
        shard = (f", shard {self.shard[0]}/{self.shard[1]}"
                 if self.shard else "")
        return (
            f"sweep {self.spec_name!r}: {len(self.outcomes)} points{shard}, "
            f"{self.hits} cached / {self.misses} simulated ({mode})"
        )


def resolve_workers(workers: Optional[int]) -> int:
    """Explicit argument, else $REPRO_SWEEP_WORKERS, else serial.

    A malformed environment value falls back to serial *loudly* -- a
    typo must not silently turn a paper-scale sweep single-core.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None:
            workers = 1
        else:
            try:
                workers = int(env)
            except ValueError:
                print(
                    f"repro.sweep: ignoring invalid {WORKERS_ENV}="
                    f"{env!r} (not an integer); running serial",
                    file=sys.stderr,
                )
                workers = 1
    return max(1, workers)


def parse_shard(value: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard argument into a validated (index, total)."""
    try:
        index_text, total_text = value.split("/", 1)
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 2/4), got {value!r}"
        ) from None
    return validate_shard((index, total))


def validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    index, total = shard
    if total < 1 or not 1 <= index <= total:
        raise ValueError(
            f"shard index must satisfy 1 <= I <= N, got {index}/{total}"
        )
    return index, total


def shard_points(
    points: List[SweepPoint], shard: Optional[Tuple[int, int]]
) -> List[SweepPoint]:
    """Deterministic slice of the grid for shard ``(index, total)``.

    Round-robin by point position (``points[index-1::total]``): shards
    are disjoint, exhaustive, independent of point *content*, and stable
    across runs -- so N machines pointed at a shared cache directory each
    simulate their slice exactly once and a final unsharded run replays
    everything from cache.
    """
    if shard is None:
        return list(points)
    index, total = validate_shard(shard)
    return list(points[index - 1::total])


def _point_params(spec: SweepSpec, point: SweepPoint) -> dict:
    """The final runner kwargs for one point (auto-seed applied)."""
    params = dict(point.params)
    if spec.auto_seed and "seed" not in params:
        params["seed"] = derive_seed(spec.base_seed, point)
    return params


def _simulate(runner: Runner, point: SweepPoint, params: dict) -> dict:
    """Run one point and encode its result (this is the worker body)."""
    result = runner.run(point.config, **params)
    return runner.encode(result)


@dataclass
class _WorkerFailure:
    """A simulation error, shipped back as a value so the parent can
    tell runner bugs apart from pool-infrastructure failures."""

    point_key: str
    message: str
    traceback: str

    @classmethod
    def capture(cls, point: SweepPoint, exc: Exception) -> "_WorkerFailure":
        return cls(
            point_key=repr(point.key),
            message=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


def _pool_entry(payload) -> tuple:
    """Module-level trampoline so the pool can pickle the work unit."""
    index, runner_ref, point, params = payload
    runner = resolve_runner(runner_ref)
    try:
        return index, _simulate(runner, point, params)
    except Exception as exc:  # noqa: BLE001 - re-raised by the parent
        return index, _WorkerFailure.capture(point, exc)


def _run_parallel(jobs: List[tuple], workers: int) -> Optional[List[tuple]]:
    """Shard ``jobs`` across a process pool; None means "fall back".

    ``fork`` is preferred (no re-import, cheap start); platforms without
    it use ``spawn``.  Pool-infrastructure failures -- unpicklable
    payloads, an interpreter without ``multiprocessing`` support, a
    sandbox that forbids subprocesses -- are caught and reported as a
    fallback, because the serial path computes identical results.
    Exceptions raised by the simulation itself come back as
    :class:`_WorkerFailure` values mixed into the result list; the
    engine caches the successful siblings and then raises, so a broken
    point is never "fixed" by re-running everything serially.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(method)
        with context.Pool(processes=workers) as pool:
            return pool.map(_pool_entry, jobs)
    except Exception as exc:  # noqa: BLE001 - fallback is the contract
        print(
            f"repro.sweep: parallel execution unavailable ({exc!r}); "
            f"falling back to serial",
            file=sys.stderr,
        )
        return None


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Union[bool, ResultCache, NullCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepReport:
    """Execute every point of ``spec``; replay cached points instantly.

    Parameters
    ----------
    workers:
        Process count for uncached points; ``None`` consults
        ``$REPRO_SWEEP_WORKERS`` and defaults to serial.
    cache:
        ``True`` (default) uses the on-disk cache at ``cache_dir`` (or
        its default location), ``False`` disables caching entirely, and
        an explicit cache object is used as-is.
    shard:
        ``(index, total)`` with ``1 <= index <= total``: simulate only a
        deterministic 1/total slice of the grid (see
        :func:`shard_points`).  Point cache keys are unchanged, so
        shards run on different machines against a shared cache
        directory compose into the full sweep.
    """
    if isinstance(cache, bool):
        store = ResultCache(cache_dir) if cache else NullCache()
    else:
        store = cache
    runner = resolve_runner(spec.runner)
    runner_ref = spec.runner  # name or callable; both pickle to workers
    workers = resolve_workers(workers)
    points = shard_points(spec.points, shard)

    # Phase 1: cache lookups -------------------------------------------
    slots: List[Optional[SweepOutcome]] = [None] * len(points)
    pending: List[tuple] = []
    for index, point in enumerate(points):
        params = _point_params(spec, point)
        key_hash = point_key(point, runner, params)
        record = store.get(key_hash)
        if record is not None:
            slots[index] = SweepOutcome(
                point=point,
                result=runner.decode(record),
                record=record,
                cached=True,
                key_hash=key_hash,
            )
        else:
            pending.append((index, runner_ref, point, params, key_hash))

    # Phase 2: simulate the misses -------------------------------------
    fresh: Dict[int, dict] = {}
    parallel = workers > 1 and len(pending) > 1
    if parallel:
        jobs = [(index, ref, point, params)
                for index, ref, point, params, _ in pending]
        mapped = _run_parallel(jobs, min(workers, len(jobs)))
        if mapped is None:
            parallel = False
        else:
            fresh = dict(mapped)
    if not parallel:
        for index, _ref, point, params, _hash in pending:
            try:
                fresh[index] = _simulate(runner, point, params)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                # Fail fast, but still flow through phase 3 so already
                # simulated points reach the cache before the raise.
                fresh[index] = _WorkerFailure.capture(point, exc)
                break

    # Phase 3: write back and decode -----------------------------------
    cache_write_failed = False
    failures: List[_WorkerFailure] = []
    for index, _ref, point, params, key_hash in pending:
        record = fresh.get(index)
        if record is None:
            continue  # serial run aborted before reaching this point
        if isinstance(record, _WorkerFailure):
            failures.append(record)
            continue
        try:
            store.put(
                key_hash,
                record,
                meta={
                    "sweep": spec.name,
                    "point": repr(point.key),
                    "config": point.config.name,
                },
            )
        except (OSError, TypeError) as exc:
            # A broken cache location (OSError) or a JSON-unsafe record
            # from a codec-less runner (TypeError) must not discard
            # finished work; report once and keep returning live results.
            if not cache_write_failed:
                print(
                    f"repro.sweep: cannot write result cache ({exc}); "
                    f"results will not be reusable",
                    file=sys.stderr,
                )
                cache_write_failed = True
        slots[index] = SweepOutcome(
            point=point,
            result=runner.decode(record),
            record=record,
            cached=False,
            key_hash=key_hash,
        )

    if failures:
        first = failures[0]
        others = (f"\n({len(failures) - 1} more point(s) also failed)"
                  if len(failures) > 1 else "")
        raise RuntimeError(
            f"sweep point {first.point_key} failed: {first.message}\n"
            f"{first.traceback}{others}"
        )

    return SweepReport(
        spec_name=spec.name,
        outcomes=[slot for slot in slots if slot is not None],
        workers=workers,
        parallel=parallel,
        shard=validate_shard(shard) if shard else None,
    )
