"""The sweep executor: cache lookup, process-pool fan-out, fallback.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` end to
end:

1. every point is hashed (config + params + runner + code version) and
   looked up in the on-disk :class:`~repro.sweep.cache.ResultCache`;
2. the remaining points are sharded across a ``multiprocessing`` pool
   (``fork`` where available, ``spawn`` otherwise) -- each point is an
   independent :class:`~repro.core.system.AcceSysSystem`, so points
   never share simulator state and parallel results are bit-identical
   to serial ones;
3. fresh records are written back to the cache and decoded into the
   same result type a cache hit yields.

Results stream: the pool is driven with ``imap_unordered``, so every
entry point can observe points as they finish rather than after the
whole grid barriers.  :func:`iter_sweep` exposes that stream directly;
:func:`run_sweep` accepts a ``progress`` callback; and
:func:`run_sweeps` executes *several* specs against one worker-pool
invocation, amortizing pool spin-up across experiments (the named
registry makes sweep composition plain data).

Worker count resolves from the ``workers`` argument, then the
``REPRO_SWEEP_WORKERS`` environment variable, then 1 (serial).  Any
failure to stand up the pool degrades gracefully to in-process serial
execution rather than failing the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sweep.cache import (
    NullCache,
    ResultCache,
    atomic_write_json,
    point_key,
)
from repro.sweep.spec import (
    Runner,
    SweepPoint,
    SweepSpec,
    derive_seed,
    resolve_runner,
)

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass
class SweepOutcome:
    """One finished point: its decoded result plus cache provenance."""

    point: SweepPoint
    result: Any
    record: dict
    cached: bool
    key_hash: str
    #: Per-point telemetry summary (artifact paths, sampler counts,
    #: diagnostics) when a telemetry session was active while the point
    #: simulated; None for cached replays and untraced runs.  Lives
    #: *beside* ``record``, never inside it: the record payload stays
    #: bit-identical with telemetry on and off.
    telemetry: Optional[dict] = None

    @property
    def key(self):
        return self.point.key

    def to_record(self) -> dict:
        """JSON-safe summary of this outcome (key repr + raw record).

        The point key is stored as ``repr`` -- keys are tuples/strings
        chosen to label reports, and their repr is what shard workers
        and the orchestrator compare across process boundaries.
        Telemetry and diagnostics, when captured, ride as optional
        sibling keys -- absent on untraced runs, so untraced record
        dicts are byte-for-byte what they were before telemetry existed.
        """
        out = {
            "key": repr(self.key),
            "key_hash": self.key_hash,
            "cached": self.cached,
            "record": self.record,
        }
        if self.telemetry:
            telemetry = dict(self.telemetry)
            diagnostics = telemetry.pop("diagnostics", None)
            if telemetry:
                out["telemetry"] = telemetry
            if diagnostics is not None:
                out["diagnostics"] = diagnostics
        return out


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` learned, in point order."""

    spec_name: str
    outcomes: List[SweepOutcome] = field(default_factory=list)
    workers: int = 1
    parallel: bool = False
    #: (index, total) when this report covers one shard of the grid.
    shard: Optional[Tuple[int, int]] = None

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def misses(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def fully_cached(self) -> bool:
        return bool(self.outcomes) and self.misses == 0

    def results(self) -> Dict[Any, Any]:
        """Point key -> decoded result, preserving spec order."""
        return {outcome.key: outcome.result for outcome in self.outcomes}

    def describe(self) -> str:
        mode = (f"{self.workers} workers" if self.parallel else "serial")
        shard = (f", shard {self.shard[0]}/{self.shard[1]}"
                 if self.shard else "")
        return (
            f"sweep {self.spec_name!r}: {len(self.outcomes)} points{shard}, "
            f"{self.hits} cached / {self.misses} simulated ({mode})"
        )

    def to_record(self) -> dict:
        """JSON-safe report summary: what a shard worker ships home.

        The orchestrator merges these per-shard records
        (:func:`merge_report_records`) into one full-grid record and
        checks it bit-identical against a cached replay of the sweep.
        """
        return {
            "spec": self.spec_name,
            "shard": list(self.shard) if self.shard else None,
            "workers": self.workers,
            "parallel": self.parallel,
            "hits": self.hits,
            "misses": self.misses,
            "points": [outcome.to_record() for outcome in self.outcomes],
        }


#: Fields every shard report record must carry to be mergeable.  A
#: record missing any of them is malformed (or written by an older,
#: incompatible tree) and is refused rather than silently merged as
#: zero -- ``misses`` in particular feeds the orchestrator's
#: no-recompute assertion, and a defaulted 0 there produces a
#: wrong-but-plausible fleet total.
REQUIRED_REPORT_FIELDS = ("spec", "points", "hits", "misses")


def merge_report_records(records: Sequence[dict]) -> dict:
    """Merge per-shard report records into one full-grid record.

    All records must describe the same spec.  Point keys must be
    pairwise disjoint across shards (the sharder guarantees this;
    a violation here means mixed-up shard files) -- except that a
    reassigned shard may legitimately appear twice, in which case the
    duplicate must carry a bit-identical ``record`` payload or the
    merge refuses.  Hit/miss counters are summed across shards, so the
    merged record's ``misses`` says how many points were *actually
    simulated* across the whole run -- the orchestrator's
    no-recompute assertion reads it directly.

    Shape mismatches are refused with provenance: a record missing any
    of :data:`REQUIRED_REPORT_FIELDS` raises, naming the record's
    position and (when present) its spec, instead of contributing
    zeroed counters to the fleet total.
    """
    if not records:
        raise ValueError("nothing to merge: no shard report records")
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(
                f"shard report #{index} is not a report record "
                f"(got {type(record).__name__}); refusing to merge"
            )
        missing = [name for name in REQUIRED_REPORT_FIELDS
                   if name not in record]
        if missing:
            raise ValueError(
                f"shard report #{index} "
                f"(spec {record.get('spec', '<unknown>')!r}) is missing "
                f"field(s) {missing}: malformed or written by an "
                f"incompatible tree; refusing to merge it into a "
                f"wrong-but-plausible fleet total"
            )
    spec_names = {record["spec"] for record in records}
    if len(spec_names) != 1:
        raise ValueError(
            f"cannot merge reports from different sweeps: {sorted(spec_names)}"
        )
    merged_points: Dict[str, dict] = {}
    hits = misses = 0
    for record in records:
        hits += record["hits"]
        misses += record["misses"]
        for point in record["points"]:
            prior = merged_points.get(point["key"])
            if prior is not None and prior["record"] != point["record"]:
                raise ValueError(
                    f"shard reports disagree on point {point['key']}: "
                    f"{prior['record']!r} != {point['record']!r}"
                )
            if prior is None:
                merged_points[point["key"]] = point
    return {
        "spec": spec_names.pop(),
        "shard": None,
        "hits": hits,
        "misses": misses,
        "points": list(merged_points.values()),
    }


def resolve_workers(workers: Optional[int]) -> int:
    """Explicit argument, else $REPRO_SWEEP_WORKERS, else serial.

    A malformed environment value falls back to serial *loudly* -- a
    typo must not silently turn a paper-scale sweep single-core.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None:
            workers = 1
        else:
            try:
                workers = int(env)
            except ValueError:
                print(
                    f"repro.sweep: ignoring invalid {WORKERS_ENV}="
                    f"{env!r} (not an integer); running serial",
                    file=sys.stderr,
                )
                workers = 1
    return max(1, workers)


def parse_shard(value: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard argument into a validated (index, total)."""
    try:
        index_text, total_text = value.split("/", 1)
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 2/4), got {value!r}"
        ) from None
    return validate_shard((index, total))


def validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    index, total = shard
    if total < 1 or not 1 <= index <= total:
        raise ValueError(
            f"shard index must satisfy 1 <= I <= N, got {index}/{total}"
        )
    return index, total


def shard_points(
    points: List[SweepPoint], shard: Optional[Tuple[int, int]]
) -> List[SweepPoint]:
    """Deterministic slice of the grid for shard ``(index, total)``.

    Round-robin by point position (``points[index-1::total]``): shards
    are disjoint, exhaustive, independent of point *content*, and stable
    across runs -- so N machines pointed at a shared cache directory each
    simulate their slice exactly once and a final unsharded run replays
    everything from cache.
    """
    if shard is None:
        return list(points)
    index, total = validate_shard(shard)
    return list(points[index - 1::total])


def point_params(spec: SweepSpec, point: SweepPoint) -> dict:
    """The final runner kwargs for one point (auto-seed applied).

    Public because the cache key of a point covers these *final*
    parameters, not the raw ``point.params``: anything that wants to
    compute a point's key outside the engine (the result server's
    query index, external tooling) must derive the seed exactly as the
    engine does or silently miss the cache.
    """
    params = dict(point.params)
    if spec.auto_seed and "seed" not in params:
        params["seed"] = derive_seed(spec.base_seed, point)
    return params


# Backwards-compatible alias (pre-serve internal name).
_point_params = point_params


def _drain_telemetry(key_hash: str) -> Optional[dict]:
    """Collect one simulated point's telemetry; write its artifacts.

    Runs in whichever process simulated the point (pool workers inherit
    the session through the environment channel), so artifacts land on
    disk exactly once, next to the worker that produced them.  Artifact
    names are ``<key_hash>.<kind>`` -- deterministic, so rerunning the
    same point overwrites with byte-identical content.  Returns the
    JSON-safe summary carried on :attr:`SweepOutcome.telemetry`, or
    None when no session is active.  The self-profiler's wall-clock
    numbers go only into their artifact file, never the summary:
    everything shipped between processes and merged into reports must
    be deterministic.
    """
    from repro.telemetry.state import active, drain_point

    settings = active()
    if settings is None or not settings.enabled:
        return None
    data = drain_point()
    if not data:
        return None
    directory = settings.trace_dir
    if directory:
        os.makedirs(directory, exist_ok=True)
    out: Dict[str, Any] = {}
    trace = data.get("trace")
    if trace is not None:
        entry: Dict[str, Any] = {"events": trace["events"]}
        if directory:
            path = os.path.join(directory, f"{key_hash}.trace.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(trace["chrome_json"])
            entry["path"] = path
        out["trace"] = entry
    metrics = data.get("metrics")
    if metrics is not None:
        entry = {"summary": metrics["summary"]}
        if directory:
            path = os.path.join(directory, f"{key_hash}.metrics.json")
            atomic_write_json(path, metrics["record"])
            prom_path = os.path.join(directory, f"{key_hash}.prom")
            with open(prom_path, "w", encoding="utf-8") as handle:
                handle.write(metrics["prometheus"])
            entry["path"] = path
            entry["prometheus_path"] = prom_path
        out["metrics"] = entry
    profile = data.get("profile")
    if profile is not None and directory:
        path = os.path.join(directory, f"{key_hash}.profile.json")
        atomic_write_json(path, profile)
        out["profile"] = {"path": path}
    if "diagnostics" in data:
        out["diagnostics"] = data["diagnostics"]
    return out or None


def _simulate(
    runner: Runner, point: SweepPoint, params: dict, key_hash: str
) -> tuple:
    """Run one point and encode its result (this is the worker body).

    Returns ``(record, telemetry)``: the runner-encoded record, plus the
    per-point telemetry summary (None on ordinary untraced runs).
    """
    result = runner.run(point.config, **params)
    record = runner.encode(result)
    return record, _drain_telemetry(key_hash)


@dataclass
class _WorkerFailure:
    """A simulation error, shipped back as a value so the parent can
    tell runner bugs apart from pool-infrastructure failures."""

    point_key: str
    message: str
    traceback: str

    @classmethod
    def capture(cls, point: SweepPoint, exc: Exception) -> "_WorkerFailure":
        return cls(
            point_key=repr(point.key),
            message=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


def _pool_entry(payload) -> tuple:
    """Module-level trampoline so the pool can pickle the work unit."""
    index, runner_ref, point, params, key_hash = payload
    runner = resolve_runner(runner_ref)
    try:
        return index, _simulate(runner, point, params, key_hash)
    except Exception as exc:  # noqa: BLE001 - re-raised by the parent
        return index, _WorkerFailure.capture(point, exc)


def _run_parallel(jobs: List[tuple], workers: int):
    """Stream ``jobs`` through a process pool; None means "fall back".

    ``fork`` is preferred (no re-import, cheap start); platforms without
    it use ``spawn``.  Pool stand-up failures -- an interpreter without
    ``multiprocessing`` support, a sandbox that forbids subprocesses --
    are caught and reported as a fallback, because the serial path
    computes identical results.  On success, returns an iterator of
    ``(index, record)`` pairs in *completion* order
    (``imap_unordered``), so the consumer observes points as they
    finish.  Exceptions raised by the simulation itself come back as
    :class:`_WorkerFailure` values mixed into the stream; the engine
    caches the successful siblings and then raises, so a broken point
    is never "fixed" by re-running everything serially.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(method)
        pool = context.Pool(processes=workers)
    except Exception as exc:  # noqa: BLE001 - fallback is the contract
        print(
            f"repro.sweep: parallel execution unavailable ({exc!r}); "
            f"falling back to serial",
            file=sys.stderr,
        )
        return None

    def stream():
        with pool:
            yield from pool.imap_unordered(_pool_entry, jobs)

    return stream()


@dataclass
class _EngineState:
    """Bookkeeping the streaming core reports back to its entry point."""

    workers: int = 1
    parallel: bool = False
    failures: List[_WorkerFailure] = field(default_factory=list)


def _resolve_store(cache, cache_dir):
    if isinstance(cache, bool):
        return ResultCache(cache_dir) if cache else NullCache()
    return cache


def _execute(
    specs: Sequence[SweepSpec],
    sharded: Sequence[List[SweepPoint]],
    workers: int,
    store,
    state: _EngineState,
) -> Iterator[Tuple[int, int, SweepOutcome]]:
    """Core streaming engine shared by every entry point.

    Yields ``(spec_index, point_index, outcome)`` as points finish:
    cached points first (in point order), then simulated points in
    completion order.  All specs' pending points share one pool
    invocation, and points with identical cache keys (point-identical
    experiments like fig8/fig9, or batched duplicates) are simulated
    once -- followers replay the sibling's record as a cache hit would.
    Raises after the stream is exhausted if any point failed --
    successful siblings are cached (and yielded) first.
    """
    runners = [resolve_runner(spec.runner) for spec in specs]

    # Phase 1: cache lookups -------------------------------------------
    pending: List[tuple] = []  # (gi, si, pi, point, params, key_hash)
    first_of_key: Dict[str, int] = {}
    #: gi of a pending point -> identically-keyed points awaiting it.
    followers: Dict[int, List[tuple]] = {}
    for si, (spec, points) in enumerate(zip(specs, sharded)):
        runner = runners[si]
        for pi, point in enumerate(points):
            params = point_params(spec, point)
            key_hash = point_key(point, runner, params)
            record = store.get(key_hash)
            if record is not None:
                yield si, pi, SweepOutcome(
                    point=point,
                    result=runner.decode(record),
                    record=record,
                    cached=True,
                    key_hash=key_hash,
                )
                continue
            prior_gi = first_of_key.get(key_hash)
            if prior_gi is not None:
                # Identical cache key already pending (point-identical
                # experiments like fig8/fig9, or a batched duplicate):
                # simulate once, fan the record out on completion.
                followers.setdefault(prior_gi, []).append(
                    (si, pi, point, key_hash)
                )
                continue
            first_of_key[key_hash] = len(pending)
            pending.append(
                (len(pending), si, pi, point, params, key_hash)
            )

    # Phase 2+3 interleaved: simulate, write back, yield ---------------
    cache_write_failed = False

    def finish(entry, payload) -> Optional[Tuple[int, int, SweepOutcome]]:
        nonlocal cache_write_failed
        _gi, si, pi, point, params, key_hash = entry
        if isinstance(payload, _WorkerFailure):
            state.failures.append(payload)
            return None
        record, telemetry = payload
        try:
            store.put(
                key_hash,
                record,
                meta={
                    "sweep": specs[si].name,
                    "point": repr(point.key),
                    "config": point.config.name,
                },
            )
        except (OSError, TypeError) as exc:
            # A broken cache location (OSError) or a JSON-unsafe record
            # from a codec-less runner (TypeError) must not discard
            # finished work; report once and keep returning live results.
            if not cache_write_failed:
                print(
                    f"repro.sweep: cannot write result cache ({exc}); "
                    f"results will not be reusable",
                    file=sys.stderr,
                )
                cache_write_failed = True
        return si, pi, SweepOutcome(
            point=point,
            result=runners[si].decode(record),
            record=record,
            cached=False,
            key_hash=key_hash,
            telemetry=telemetry,
        )

    def emit(entry, payload):
        """Outcomes for one finished point plus its deduped followers."""
        out = finish(entry, payload)
        if out is None:
            return
        yield out
        record = payload[0]
        for fsi, fpi, fpoint, fhash in followers.get(entry[0], ()):
            # A follower never simulated: it replays the sibling's
            # record, exactly as a cache hit would have.
            yield fsi, fpi, SweepOutcome(
                point=fpoint,
                result=runners[fsi].decode(record),
                record=record,
                cached=True,
                key_hash=fhash,
            )

    stream = None
    if workers > 1 and len(pending) > 1:
        # runner refs (names or module-level callables) pickle to workers
        jobs = [(gi, specs[si].runner, point, params, key_hash)
                for gi, si, pi, point, params, key_hash in pending]
        stream = _run_parallel(jobs, min(workers, len(jobs)))

    done: set = set()
    if stream is not None:
        state.parallel = True
        stream_iter = iter(stream)
        while True:
            # Only the *stream* step is guarded: an infrastructure
            # failure there (e.g. an unpicklable payload surfacing at
            # dispatch) falls back to serial, while errors from
            # finish()/decode on an already-delivered record propagate
            # loudly, exactly as they do on the serial path.
            try:
                gi, record = next(stream_iter)
            except StopIteration:
                break
            except Exception as exc:  # noqa: BLE001 - fallback contract
                print(
                    f"repro.sweep: parallel execution unavailable "
                    f"({exc!r}); falling back to serial",
                    file=sys.stderr,
                )
                state.parallel = False
                break
            done.add(gi)
            yield from emit(pending[gi], record)
    if stream is None or not state.parallel:
        # Serial (or fallback): fail fast on the first broken point, but
        # flow earlier successes through `finish` so they reach the
        # cache before the raise below.
        for entry in pending:
            gi, si, pi, point, params, key_hash = entry
            if gi in done:
                continue
            try:
                payload = _simulate(runners[si], point, params, key_hash)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                state.failures.append(_WorkerFailure.capture(point, exc))
                break
            done.add(gi)
            yield from emit(entry, payload)

    if state.failures:
        first = state.failures[0]
        others = (f"\n({len(state.failures) - 1} more point(s) also failed)"
                  if len(state.failures) > 1 else "")
        raise RuntimeError(
            f"sweep point {first.point_key} failed: {first.message}\n"
            f"{first.traceback}{others}"
        )


#: Progress callback: (finished points, total points, newest outcome).
ProgressFn = Callable[[int, int, SweepOutcome], None]

#: Outcome-merge hook: called with every outcome as it lands (cached
#: replays included), before it is delivered to the caller.  Shard
#: workers use it to stream per-point state (heartbeats, counters,
#: partial outcome records) into their lease files while a sweep runs.
OutcomeFn = Callable[[SweepOutcome], None]


def iter_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Union[bool, ResultCache, NullCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    shard: Optional[Tuple[int, int]] = None,
    on_outcome: Optional[OutcomeFn] = None,
) -> Iterator[SweepOutcome]:
    """Yield :class:`SweepOutcome`\\ s as points finish.

    Cached points arrive first (in point order, effectively instantly);
    simulated points follow in *completion* order -- under a worker pool
    that is whatever order the workers finish in.  This is the streaming
    face of :func:`run_sweep`: consume it for live progress bars or to
    start plotting a grid before its slowest point lands.  Arguments
    match :func:`run_sweep`; ``on_outcome`` additionally observes each
    outcome *before* it is yielded (even if the consumer abandons the
    generator early).
    """
    store = _resolve_store(cache, cache_dir)
    state = _EngineState(workers=resolve_workers(workers))
    points = shard_points(spec.points, shard)
    for _si, _pi, outcome in _execute(
        [spec], [points], state.workers, store, state
    ):
        if on_outcome is not None:
            on_outcome(outcome)
        yield outcome


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Union[bool, ResultCache, NullCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    shard: Optional[Tuple[int, int]] = None,
    progress: Optional[ProgressFn] = None,
    on_outcome: Optional[OutcomeFn] = None,
) -> SweepReport:
    """Execute every point of ``spec``; replay cached points instantly.

    Parameters
    ----------
    workers:
        Process count for uncached points; ``None`` consults
        ``$REPRO_SWEEP_WORKERS`` and defaults to serial.
    cache:
        ``True`` (default) uses the on-disk cache at ``cache_dir`` (or
        its default location), ``False`` disables caching entirely, and
        an explicit cache object is used as-is.
    shard:
        ``(index, total)`` with ``1 <= index <= total``: simulate only a
        deterministic 1/total slice of the grid (see
        :func:`shard_points`).  Point cache keys are unchanged, so
        shards run on different machines against a shared cache
        directory compose into the full sweep.
    progress:
        Optional callback invoked as each point finishes with
        ``(finished, total, outcome)``; see :func:`iter_sweep` for a
        generator interface instead.
    on_outcome:
        Optional per-outcome hook (cached replays included), called as
        each outcome lands -- the merge surface shard workers use to
        stream state while the sweep runs.
    """
    return run_sweeps(
        [spec], workers=workers, cache=cache, cache_dir=cache_dir,
        shard=shard, progress=progress, on_outcome=on_outcome,
    )[0]


def run_sweeps(
    specs: Sequence[SweepSpec],
    workers: Optional[int] = None,
    cache: Union[bool, ResultCache, NullCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    shard: Optional[Tuple[int, int]] = None,
    progress: Optional[ProgressFn] = None,
    on_outcome: Optional[OutcomeFn] = None,
) -> List[SweepReport]:
    """Execute several sweeps against **one** worker-pool invocation.

    All uncached points across ``specs`` are pooled into a single
    ``multiprocessing`` fan-out, so running N small experiments costs
    one pool spin-up instead of N -- and short sweeps pack the idle
    workers a long sibling would leave behind.  Returns one
    :class:`SweepReport` per spec, each identical to what a separate
    :func:`run_sweep` call would produce (points keep their per-spec
    order; cache keys are unchanged).  ``progress`` counts points across
    the whole batch.
    """
    store = _resolve_store(cache, cache_dir)
    workers = resolve_workers(workers)
    state = _EngineState(workers=workers)
    sharded = [shard_points(spec.points, shard) for spec in specs]
    total = sum(len(points) for points in sharded)
    slots: List[List[Optional[SweepOutcome]]] = [
        [None] * len(points) for points in sharded
    ]
    finished = 0
    for si, pi, outcome in _execute(specs, sharded, workers, store, state):
        slots[si][pi] = outcome
        finished += 1
        if on_outcome is not None:
            on_outcome(outcome)
        if progress is not None:
            progress(finished, total, outcome)
    return [
        SweepReport(
            spec_name=spec.name,
            outcomes=[slot for slot in spec_slots if slot is not None],
            workers=workers,
            parallel=state.parallel,
            shard=validate_shard(shard) if shard else None,
        )
        for spec, spec_slots in zip(specs, slots)
    ]


def run_points(
    jobs: Sequence[Tuple[SweepSpec, SweepPoint]],
    workers: Optional[int] = None,
    cache: Union[bool, ResultCache, NullCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    on_outcome: Optional[OutcomeFn] = None,
) -> List[SweepOutcome]:
    """Fill an arbitrary set of ``(spec, point)`` pairs in one batch.

    The result server's fill path: each pair becomes a one-point spec
    carrying its parent's name, runner, and seeding policy -- so cache
    keys, auto-seeds, and the ``meta.sweep`` tag are *identical* to a
    full :func:`run_sweep` of the parent spec -- and every pending point
    across the batch shares one worker-pool invocation.  Points with
    identical cache keys (coalesced misses that raced past the server's
    in-flight registry, or duplicates within the batch) simulate once.
    Returns one outcome per job, in job order; ``on_outcome`` observes
    each outcome as it lands, exactly as in :func:`run_sweeps`.
    """
    specs = [
        SweepSpec(
            name=spec.name,
            points=[point],
            runner=spec.runner,
            base_seed=spec.base_seed,
            auto_seed=spec.auto_seed,
        )
        for spec, point in jobs
    ]
    reports = run_sweeps(
        specs, workers=workers, cache=cache, cache_dir=cache_dir,
        on_outcome=on_outcome,
    )
    return [report.outcomes[0] for report in reports]
