"""The named-experiment registry: every paper figure as a SweepSpec.

Each factory here builds the point grid of one figure, table, ablation
or extension study, registered under a stable name so the CLI
(``python -m repro sweep --name <x>``), the benchmark harnesses and the
examples all share one experiment description layer.  Factories take
keyword arguments with *reduced-scale* defaults; harnesses pass
paper-scale values under ``REPRO_FULL=1``.

Registered experiments:

==================== ==================================================
``pcie-bandwidth``   Fig. 3 -- GEMM time vs PCIe lanes x lane speed
``packet-size``      Fig. 4 -- GEMM time vs request packet size
``fig5-memory``      Fig. 5 -- DRAM type and location (device vs host)
``fig6a-mem-bandwidth`` Fig. 6(a) -- device-memory bandwidth sweep
``fig6b-mem-latency``   Fig. 6(b) -- device-memory latency sweep
``fig7-transformer`` Fig. 7 -- ViT inference across the four systems
``fig8-gemm-split``  Fig. 8 -- GEMM vs non-GEMM split per system
``fig9-tradeoff``    Fig. 9 -- trade-off model calibration points
``tab4-translation`` Tab. 4 -- address-translation metrics vs size
``ablation-dataflow`` dataflow/pipelining design choices
``ablation-smmu``    SMMU (uTLB / main TLB) sizing
``access-modes``     Section III-C: DC vs DM vs DevMem
``ext-cxl-gemm``     extension: streaming GEMM, CXL vs PCIe
``ext-cxl-vit``      extension: DevMem NUMA penalty under CXL
``topo-endpoint-scaling`` extension: 1..8 accelerators on one switch
``topo-contention``  extension: active devices behind a shared uplink
``topo-p2p``         extension: P2P vs host-bounce device transfers
``topo-switch-depth`` extension: switch-tier depth 1..3
``roofline``         Fig. 2 -- compute-time sweep on the sweep engine
``surrogate-xval``   stratified sample for surrogate calibration
``resilience-error-rate``   goodput vs per-TLP corruption rate
``resilience-retrain-storm`` latency tail vs uplink retrain duty cycle
``resilience-slow-link``    one down-trained endpoint in a cluster
``resilience-crash``        device-crash blast radius across a cluster
==================== ==================================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.accel.systolic import SystolicParams
from repro.core.access_modes import AccessMode
from repro.core.config import SystemConfig
from repro.memory.dram.devices import DDR4_2400, GDDR5, HBM2, LPDDR5
from repro.smmu.smmu import SMMUConfig
from repro.sweep.spec import (
    SweepPoint,
    SweepSpec,
    gemm_points,
    register_sweep,
)
from repro.topology import tiered_topology
from repro.workloads.vit import ViTConfig

GB = 10**9


# ----------------------------------------------------------------------
# Fig. 3 / Fig. 4 -- interconnect sweeps
# ----------------------------------------------------------------------
@register_sweep("pcie-bandwidth")
def pcie_bandwidth_sweep(
    base: Optional[SystemConfig] = None,
    size: int = 128,
    lanes: Tuple[int, ...] = (2, 4, 8, 16),
    speeds: Tuple[float, ...] = (2.0, 8.0, 32.0),
) -> SweepSpec:
    """Fig. 3 style grid: lanes x per-lane speed at a fixed GEMM size."""
    base = base or SystemConfig.table2_baseline()
    configs = {
        (lane_count, gbps): base.with_pcie_bandwidth(lane_count, gbps)
        for lane_count in lanes
        for gbps in speeds
    }
    return SweepSpec(name="pcie-bandwidth", points=gemm_points(configs, size))


@register_sweep("packet-size")
def packet_size_sweep(
    base: Optional[SystemConfig] = None,
    size: int = 128,
    packets: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096),
) -> SweepSpec:
    """Fig. 4 style sweep: request packet size at a fixed link."""
    base = base or SystemConfig.table2_baseline()
    configs = {packet: base.with_packet_size(packet) for packet in packets}
    return SweepSpec(name="packet-size", points=gemm_points(configs, size))


#: Fig. 4 full grid: (label GB/s) -> (lanes, lane Gb/s).
FIG4_LINKS = {
    4: (8, 4.0),
    8: (8, 8.0),
    16: (8, 16.0),
    32: (8, 32.0),
    64: (8, 64.0),
}
FIG4_PACKETS = (64, 128, 256, 512, 1024, 2048, 4096)


@register_sweep("fig4-packet-grid")
def fig4_packet_grid_sweep(
    size: int = 256,
    links=None,
    packets: Tuple[int, ...] = FIG4_PACKETS,
) -> SweepSpec:
    """Fig. 4 full grid: packet size x link speed, wide-ingest array."""
    links = links or FIG4_LINKS
    wide_sa = SystolicParams(ingest_elems=16)
    configs = {}
    for label, (lanes, gbps) in links.items():
        base = SystemConfig.table2_baseline(
            systolic=wide_sa
        ).with_pcie_bandwidth(lanes, gbps)
        for packet in packets:
            configs[(label, packet)] = base.with_packet_size(packet)
    return SweepSpec(name="fig4-packet-grid",
                     points=gemm_points(configs, size))


# ----------------------------------------------------------------------
# Fig. 5 / Fig. 6 -- memory system sweeps
# ----------------------------------------------------------------------
#: Wide ingest ports so the memory system, not the array, binds
#: (the paper's Fig. 5/6 methodology; see EXPERIMENTS.md).
_FIG5_SA = SystolicParams(ingest_elems=8)
_FIG6_SA = SystolicParams(ingest_elems=6)
FIG5_MEMORIES = (DDR4_2400, HBM2, GDDR5, LPDDR5)
FIG6_BANDWIDTHS = (2, 4, 8, 16, 25, 50, 100, 256)
FIG6_LATENCIES = (1, 3, 6, 12, 24, 36)


@register_sweep("fig5-memory")
def fig5_memory_sweep(size: int = 256, memories=FIG5_MEMORIES) -> SweepSpec:
    """Fig. 5: DRAM type x location (device, host @2GB/s, host @64GB/s).

    Host-side runs use the DM access method so reduced-scale LLC
    retention does not mask the memory system.
    """
    configs = {}
    for mem in memories:
        configs[(mem.name, "device")] = SystemConfig.devmem_system(
            devmem=mem, systolic=_FIG5_SA
        )
        configs[(mem.name, "host-2GB")] = SystemConfig.pcie_2gb(
            host_mem=mem, systolic=_FIG5_SA,
            access_mode=AccessMode.DIRECT_MEMORY,
        )
        configs[(mem.name, "host-64GB")] = SystemConfig.pcie_64gb(
            host_mem=mem, systolic=_FIG5_SA,
            access_mode=AccessMode.DIRECT_MEMORY,
        )
    return SweepSpec(name="fig5-memory", points=gemm_points(configs, size))


def hbm_at_bandwidth(bw_gb: int):
    """HBM2-class device scaled to a total bandwidth of ``bw_gb`` GB/s."""
    rate = bw_gb * GB // (HBM2.channels * HBM2.data_width_bits // 8)
    return dataclasses.replace(HBM2, name=f"HBM2-{bw_gb}GBs",
                               data_rate_mts=max(1, rate // 10**6))


def hbm_at_latency(lat_ns: int):
    """HBM2-class device with core timings scaled to ``lat_ns``."""
    return dataclasses.replace(
        HBM2,
        name=f"HBM2-{lat_ns}ns",
        t_cl=float(lat_ns),
        t_rcd=float(lat_ns),
        t_rp=float(lat_ns),
        t_ras=float(2 * lat_ns + 5),
    )


@register_sweep("fig6a-mem-bandwidth")
def fig6a_bandwidth_sweep(
    size: int = 256, bandwidths=FIG6_BANDWIDTHS
) -> SweepSpec:
    """Fig. 6(a): device-memory bandwidth swept at constant latency."""
    configs = {
        bw: SystemConfig.devmem_system(
            devmem=hbm_at_bandwidth(bw), systolic=_FIG6_SA
        )
        for bw in bandwidths
    }
    return SweepSpec(name="fig6a-mem-bandwidth",
                     points=gemm_points(configs, size))


@register_sweep("fig6b-mem-latency")
def fig6b_latency_sweep(size: int = 256, latencies=FIG6_LATENCIES) -> SweepSpec:
    """Fig. 6(b): device-memory core timings swept at fixed bandwidth."""
    configs = {
        lat: SystemConfig.devmem_system(
            devmem=hbm_at_latency(lat), systolic=_FIG6_SA
        )
        for lat in latencies
    }
    return SweepSpec(name="fig6b-mem-latency",
                     points=gemm_points(configs, size))


# ----------------------------------------------------------------------
# Fig. 7 / 8 / 9 -- transformer inference (the "vit" runner)
# ----------------------------------------------------------------------
def _vit_points(models, dim_scale: float, segment: int):
    systems = SystemConfig.paper_systems()
    return [
        SweepPoint(
            key=(model, name),
            config=config.with_(dma_segment_bytes=segment),
            params={"model": model, "dim_scale": dim_scale},
        )
        for model in models
        for name, config in systems.items()
    ]


@register_sweep("fig7-transformer")
def fig7_transformer_sweep(
    models: Tuple[str, ...] = ("base", "large"),
    dim_scale: float = 0.25,
    segment: int = 16384,
) -> SweepSpec:
    """Fig. 7: ViT models x the four Section V-C systems."""
    return SweepSpec(
        name="fig7-transformer",
        points=_vit_points(models, dim_scale, segment),
        runner="vit",
    )


@register_sweep("fig8-gemm-split")
def fig8_gemm_split_sweep(
    model: str = "large", dim_scale: float = 0.25, segment: int = 16384
) -> SweepSpec:
    """Fig. 8: one ViT model across the four systems, split per op class.

    Point keys are the system names; the GEMM/non-GEMM split is read off
    the :class:`~repro.core.runner.ViTResult` fields.
    """
    points = [
        SweepPoint(key=point.key[1], config=point.config, params=point.params)
        for point in _vit_points((model,), dim_scale, segment)
    ]
    return SweepSpec(name="fig8-gemm-split", points=points, runner="vit")


@register_sweep("fig9-tradeoff")
def fig9_tradeoff_sweep(
    model: str = "large", dim_scale: float = 0.25, segment: int = 16384
) -> SweepSpec:
    """Fig. 9: the calibration runs behind the analytical trade-off model.

    Identical simulation points to ``fig8-gemm-split`` (the analytical
    sweep itself is free post-processing), so the two experiments share
    cache entries -- running either primes the other.
    """
    spec = fig8_gemm_split_sweep(model, dim_scale, segment)
    return SweepSpec(name="fig9-tradeoff", points=spec.points, runner="vit")


# ----------------------------------------------------------------------
# Tab. 4 -- address translation
# ----------------------------------------------------------------------
@register_sweep("tab4-translation")
def tab4_translation_sweep(
    sizes: Tuple[int, ...] = (64, 128, 256, 512)
) -> SweepSpec:
    """Tab. 4: translation metrics vs matrix size on the baseline system."""
    base = SystemConfig.table2_baseline()
    points = [
        SweepPoint(key=size, config=base,
                   params={"m": size, "k": size, "n": size})
        for size in sizes
    ]
    return SweepSpec(name="tab4-translation", points=points)


# ----------------------------------------------------------------------
# Ablations and access-method comparison
# ----------------------------------------------------------------------
@register_sweep("ablation-dataflow")
def ablation_dataflow_sweep(size: int = 128) -> SweepSpec:
    """Dataflow/pipelining design choices (DESIGN.md ablation)."""
    base = SystemConfig.pcie_2gb()
    configs = {
        "baseline (stream)": base,
        "reuse A panels": base.with_(reuse_a_panels=True),
        "prefetch depth 1": base.with_(prefetch_depth=1),
        "prefetch depth 4": base.with_(prefetch_depth=4),
        "1 DMA tag": base.with_(dma_tags=1),
        "32 DMA tags": base.with_(dma_tags=32),
    }
    return SweepSpec(name="ablation-dataflow",
                     points=gemm_points(configs, size))


@register_sweep("ablation-smmu")
def ablation_smmu_sweep(
    size: int = 128, utlbs: Tuple[int, ...] = (8, 32, 128)
) -> SweepSpec:
    """SMMU sizing: uTLB capacity, and a main TLB below/above footprint."""
    footprint_pages = 3 * size * size * 4 // 4096
    configs = {}
    for utlb in utlbs:
        configs[f"uTLB {utlb}"] = SystemConfig.pcie_2gb(
            smmu=SMMUConfig(utlb_entries=utlb)
        )
    # Main TLB below/above the footprint (power-of-two sizes).  A 1-entry
    # uTLB exposes every page transition to the main TLB so its capacity,
    # not uTLB locality, is what is measured.
    small_tlb = max(8, 1 << max(0, footprint_pages // 4).bit_length())
    for tlb, label in ((small_tlb, "thrash"), (4096, "fits")):
        configs[f"TLB {tlb} ({label})"] = SystemConfig.pcie_2gb(
            smmu=SMMUConfig(utlb_entries=1, tlb_entries=tlb,
                            tlb_assoc=min(8, tlb))
        )
    return SweepSpec(name="ablation-smmu", points=gemm_points(configs, size))


@register_sweep("access-modes")
def access_modes_sweep(size: int = 128) -> SweepSpec:
    """Section III-C: the same GEMM under DC, DM and DevMem."""
    configs = {
        "DC": SystemConfig.table2_baseline(),
        "DM": SystemConfig.table2_baseline(
            access_mode=AccessMode.DIRECT_MEMORY
        ),
        "DevMem": SystemConfig.devmem_system(),
    }
    return SweepSpec(name="access-modes", points=gemm_points(configs, size))


# ----------------------------------------------------------------------
# Topology extension (repro.topology; docs/TOPOLOGY.md)
# ----------------------------------------------------------------------
@register_sweep("topo-endpoint-scaling")
def topo_endpoint_scaling_sweep(
    size: int = 96, counts: Tuple[int, ...] = (1, 2, 4, 8)
) -> SweepSpec:
    """Endpoint scaling: N accelerators behind one shared switch uplink.

    One point per cluster size; every device runs the same GEMM
    concurrently.  The report's ``uplink util`` column is the busy
    fraction of the shared root-complex link pair -- it climbs toward
    1.0 as the cluster saturates the upstream link and per-device time
    stops improving.  The topology is explicit even for one endpoint so
    the whole curve runs on the switched-fabric timing model (the
    implicit single-device default would compile the classic
    point-to-point fabric and put a model discontinuity at N=1).
    """
    from repro.topology import flat_topology

    points = [
        SweepPoint(
            key=count,
            config=SystemConfig.pcie_2gb().with_topology(
                flat_topology(count)
            ),
            params={"m": size, "k": size, "n": size},
        )
        for count in counts
    ]
    return SweepSpec(name="topo-endpoint-scaling", points=points,
                     runner="multigemm")


@register_sweep("topo-contention")
def topo_contention_sweep(size: int = 96, cluster: int = 4) -> SweepSpec:
    """Shared-link contention: 1..N active devices on a fixed cluster.

    The topology (and therefore the simulated hardware) is constant; only
    the number of concurrently launched GEMMs varies, isolating the
    arbitration effect from any topology change.
    """
    base = SystemConfig.pcie_2gb(num_accelerators=cluster)
    points = [
        SweepPoint(
            key=active,
            config=base,
            params={"m": size, "k": size, "n": size, "devices": active},
        )
        for active in range(1, cluster + 1)
    ]
    return SweepSpec(name="topo-contention", points=points,
                     runner="multigemm")


@register_sweep("topo-p2p")
def topo_p2p_sweep(
    sizes: Tuple[int, ...] = (64 * 1024, 256 * 1024, 512 * 1024)
) -> SweepSpec:
    """Peer-to-peer vs host-bounce device-to-device transfers.

    ``p2p`` routes endpoint -> switch -> endpoint below the root
    complex; ``bounce`` is the software alternative (write host memory,
    read it back from the peer).  Transfer sizes are capped by the
    destination scratch window (``local_buffer_bytes``).
    """
    config = SystemConfig.pcie_2gb(num_accelerators=2)
    points = [
        SweepPoint(
            key=(mode, size),
            config=config,
            params={"size_bytes": size, "mode": mode},
        )
        for mode in ("p2p", "bounce")
        for size in sizes
    ]
    return SweepSpec(name="topo-p2p", points=points, runner="peer")


@register_sweep("topo-switch-depth")
def topo_switch_depth_sweep(
    size: int = 96, depths: Tuple[int, ...] = (1, 2, 3)
) -> SweepSpec:
    """Switch-tier depth: every tier adds a store-and-forward hop.

    A two-device cluster runs concurrent GEMMs below 1..3 chained switch
    tiers; execution time grows with depth (added latency and one more
    shared segment per tier).
    """
    points = [
        SweepPoint(
            key=depth,
            config=SystemConfig.pcie_2gb().with_topology(
                tiered_topology(2, depth)
            ),
            params={"m": size, "k": size, "n": size},
        )
        for depth in depths
    ]
    return SweepSpec(name="topo-switch-depth", points=points,
                     runner="multigemm")


# ----------------------------------------------------------------------
# CXL extension
# ----------------------------------------------------------------------
#: Tiny ViT used by the CXL NUMA-penalty study (runs in seconds).
CXL_VIT_MODEL = ViTConfig("bench-tiny", hidden=128, layers=2, heads=4,
                          image_size=96, patch_size=16)


@register_sweep("ext-cxl-gemm")
def ext_cxl_gemm_sweep(size: int = 128) -> SweepSpec:
    """Extension: streaming GEMM parity, fat PCIe link vs CXL port."""
    configs = {
        "gemm_pcie": SystemConfig.pcie_64gb(),
        "gemm_cxl": SystemConfig.cxl_host(),
    }
    return SweepSpec(name="ext-cxl-gemm", points=gemm_points(configs, size))


@register_sweep("ext-cxl-vit")
def ext_cxl_vit_sweep(vit_model: Optional[ViTConfig] = None) -> SweepSpec:
    """Extension: the Fig. 8 NUMA penalty with a CXL-attached device.

    The parameter is deliberately *not* named ``model`` so the CLI's
    --model string override cannot silently swap the seconds-scale tiny
    model for a full-dimension ViT variant.
    """
    model = vit_model or CXL_VIT_MODEL
    configs = {
        "vit_host": SystemConfig.pcie_64gb(),
        "vit_devmem_pcie": SystemConfig.devmem_system(),
        "vit_devmem_cxl": SystemConfig.devmem_cxl(),
    }
    points = [
        SweepPoint(key=key, config=config, params={"model": model})
        for key, config in configs.items()
    ]
    return SweepSpec(name="ext-cxl-vit", points=points, runner="vit")


# ----------------------------------------------------------------------
# Roofline (Fig. 2) and surrogate calibration
# ----------------------------------------------------------------------
@register_sweep("roofline")
def roofline_reg_sweep(
    base: Optional[SystemConfig] = None,
    size: int = 64,
    compute_ticks: Optional[Tuple[int, ...]] = None,
) -> SweepSpec:
    """Fig. 2: per-tile compute-time sweep at fixed link bandwidth.

    The same grid :func:`repro.core.roofline.roofline_sweep` wraps --
    registering it here buys caching, ``--shard`` and orchestration.
    """
    from repro.core.roofline import DEFAULT_COMPUTE_TICKS, roofline_points

    config = base or SystemConfig.pcie_8gb()
    values = compute_ticks or DEFAULT_COMPUTE_TICKS
    return SweepSpec(
        name="roofline", points=roofline_points(config, size, values)
    )


# ----------------------------------------------------------------------
# Resilience extension (repro.faults; docs/FAULTS.md)
# ----------------------------------------------------------------------
def _resilience_spec(name, points) -> SweepSpec:
    # The "resilience" runner registers lazily on first resolution
    # (LAZY_RUNNER_MODULES), so building the spec does not pull the
    # fault subsystem into the default sweep import footprint.
    return SweepSpec(name=name, points=points, runner="resilience")


@register_sweep("resilience-error-rate")
def resilience_error_rate_sweep(
    size_bytes: int = 65536,
    transfers: int = 8,
    rates: Tuple[float, ...] = (0.0, 1e-4, 1e-3, 1e-2),
    seed: int = 7,
) -> SweepSpec:
    """Goodput vs per-TLP corruption rate on the point-to-point fabric.

    Rate 0.0 is the fault-free control point (``faults=None``, so it
    shares cache entries with any other fault-free run of the same
    config); each higher rate inflates wire occupancy with ACK/NAK
    replays and the goodput column degrades accordingly.
    """
    from repro.faults.spec import FaultSpec, LinkFaults, RetryPolicy

    base = SystemConfig.pcie_2gb()
    points = []
    for rate in rates:
        config = base
        if rate > 0.0:
            config = base.with_faults(FaultSpec(
                seed=seed,
                links=(LinkFaults(link="*", corrupt_rate=rate),),
                retry=RetryPolicy(),
            ))
        points.append(SweepPoint(
            key=rate, config=config,
            params={"size_bytes": size_bytes, "transfers": transfers},
        ))
    return _resilience_spec("resilience-error-rate", points)


@register_sweep("resilience-retrain-storm")
def resilience_retrain_storm_sweep(
    size_bytes: int = 65536,
    transfers: int = 8,
    storms: Tuple[Tuple[int, int], ...] = ((100, 5), (100, 20), (50, 20)),
    seed: int = 7,
) -> SweepSpec:
    """Latency tail vs uplink retrain duty cycle.

    ``storms`` are ``(period_us, duration_us)`` pairs: the shared ``up``
    link retrains ``duration`` out of every ``period`` microseconds.
    Transfers unlucky enough to hit a window stall until it closes, so
    ``latency max`` stretches with the duty cycle while ``latency p50``
    moves far less -- the tail-latency signature of retrain storms.
    """
    from repro.faults.spec import FaultSpec, LinkFaults, RetryPolicy
    from repro.sim.ticks import us

    base = SystemConfig.pcie_2gb()
    points = [
        SweepPoint(
            key=(period, duration),
            config=base.with_faults(FaultSpec(
                seed=seed,
                links=(LinkFaults(link="*.up", retrain_period=us(period),
                                  retrain_duration=us(duration)),),
                retry=RetryPolicy(),
            )),
            params={"size_bytes": size_bytes, "transfers": transfers},
        )
        for period, duration in storms
    ]
    return _resilience_spec("resilience-retrain-storm", points)


@register_sweep("resilience-slow-link")
def resilience_slow_link_sweep(
    size_bytes: int = 32768,
    transfers: int = 8,
    cluster: int = 4,
    factors: Tuple[int, ...] = (1, 4, 16),
    seed: int = 7,
) -> SweepSpec:
    """One endpoint's lanes down-train mid-run in a switched cluster.

    Factor 1 is the fault-free control; higher factors divide endpoint
    0's link bandwidth from 20 us on while the other ``cluster - 1``
    devices run clean.  Mild down-training hides behind shared-uplink
    contention (the slow endpoint still keeps up with its fair share);
    past that the makespan is dragged out by the one slow wire while the
    p50 latency -- dominated by the clean devices -- barely moves.
    """
    from repro.faults.spec import FaultSpec, LinkFaults, RetryPolicy
    from repro.sim.ticks import us
    from repro.topology import flat_topology

    base = SystemConfig.pcie_2gb().with_topology(flat_topology(cluster))
    points = []
    for factor in factors:
        config = base
        if factor > 1:
            config = base.with_faults(FaultSpec(
                seed=seed,
                links=(LinkFaults(link="*.ep0.*", downtrain_at=us(20),
                                  downtrain_factor=factor),),
                retry=RetryPolicy(),
            ))
        points.append(SweepPoint(
            key=factor, config=config,
            params={"size_bytes": size_bytes, "transfers": transfers},
        ))
    return _resilience_spec("resilience-slow-link", points)


@register_sweep("resilience-crash")
def resilience_crash_sweep(
    size_bytes: int = 32768,
    transfers: int = 8,
    cluster: int = 4,
    crash_ticks_us: Tuple[Optional[int], ...] = (None, 10, 50),
    seed: int = 7,
) -> SweepSpec:
    """Device-crash blast radius: one endpoint dies, the rest carry on.

    ``None`` is the no-crash control.  When endpoint 0 crashes its
    in-flight transfers lose their completions, burn through the retry
    budget and abort with ``device lost`` errors, while the surviving
    ``cluster - 1`` devices finish their share -- the ``aborted`` and
    ``device lost`` columns bound the blast radius.
    """
    from repro.faults.spec import EndpointFault, FaultSpec, RetryPolicy
    from repro.sim.ticks import us
    from repro.topology import flat_topology

    base = SystemConfig.pcie_2gb().with_topology(flat_topology(cluster))
    points = []
    for crash_us in crash_ticks_us:
        config = base
        key = "none" if crash_us is None else crash_us
        if crash_us is not None:
            config = base.with_faults(FaultSpec(
                seed=seed,
                endpoints=(EndpointFault(endpoint=0, crash_at=us(crash_us)),),
                retry=RetryPolicy(),
            ))
        points.append(SweepPoint(
            key=key, config=config,
            params={"size_bytes": size_bytes, "transfers": transfers},
        ))
    return _resilience_spec("resilience-crash", points)


@register_sweep("surrogate-xval")
def surrogate_xval_sweep(
    target: str = "fig6a-mem-bandwidth",
    fraction: float = 0.5,
    size: Optional[int] = None,
) -> SweepSpec:
    """Stratified sample of another sweep's grid, for calibration.

    Simulating this sweep measures the analytical surrogate's error on
    ``target``'s grid (see docs/SURROGATE.md); results share cache keys
    with the full sweep, so the sample pre-warms a later ladder run.
    """
    from repro.surrogate.xval import stratified_sample
    from repro.sweep.spec import build_sweep

    kwargs = {} if size is None else {"size": size}
    sample = stratified_sample(build_sweep(target, **kwargs), fraction)
    return dataclasses.replace(sample, name="surrogate-xval")
