"""Shard leases: crash-evident work-unit state on a shared filesystem.

Every work unit (one ``--shard I/N`` slice of the run's sweeps) owns one
JSON state file under ``<run-dir>/shards/``.  The life cycle is

    pending --claim--> running --success--> done
                          |
                          +--error----------> failed
                          +--silence--------> (expired back to pending)

All writes are whole-file atomic (temp + ``os.replace``), so readers on
other machines never see a torn state.  Mutual exclusion for *claiming*
does not rely on read-modify-write of the state file (racy on a shared
FS); instead a claim is the ``O_CREAT | O_EXCL`` creation of a marker
file keyed on ``(shard index, attempt)`` under ``<run-dir>/claims/`` --
exactly one process can win each attempt, and attempts only ever
increase (the dispatcher bumps the attempt when it expires a dead
lease), so stale claim markers can never block a reassignment.

While a worker runs a shard, a daemon :class:`Heartbeat` thread rewrites
the state file with a fresh timestamp and live progress counters.  The
dispatcher declares a lease dead when its heartbeat is older than the
manifest's ``lease_ttl`` (or sooner, when the backend knows the owning
process has exited).  A worker whose lease was reassigned under it
notices -- the heartbeat re-reads the file and finds a different
attempt/owner -- and drops the shard without marking anything, so a
slow-but-alive worker can never corrupt the ledger of its replacement
(both would have produced bit-identical cache entries anyway; the
content-addressed cache makes double execution harmless).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.sweep.cache import atomic_write_json

#: Legal lease states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, RUNNING, DONE, FAILED)

SHARDS_DIR = "shards"
CLAIMS_DIR = "claims"


@dataclass
class ShardLease:
    """One work unit's on-disk state."""

    index: int                     # 1-based shard index I
    total: int                     # shard total N
    state: str = PENDING
    attempt: int = 1               # monotonic; bumped on every reassign
    owner: str = ""                # worker id holding the lease
    heartbeat: float = 0.0         # unix time of the last liveness write
    claimed_at: float = 0.0
    hits: int = 0                  # cache hits so far this attempt
    misses: int = 0                # points simulated so far this attempt
    done_points: int = 0
    total_points: int = 0
    error: str = ""

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        stamp = self.heartbeat or self.claimed_at
        return (now if now is not None else time.time()) - stamp


def shards_dir(run_dir: os.PathLike) -> Path:
    return Path(run_dir) / SHARDS_DIR


def lease_path(run_dir: os.PathLike, index: int) -> Path:
    return shards_dir(run_dir) / f"shard-{index:04d}.json"


def report_path(run_dir: os.PathLike, index: int) -> Path:
    """Where a worker ships shard ``index``'s outcome records."""
    return shards_dir(run_dir) / f"shard-{index:04d}.report.json"


def write_lease(run_dir: os.PathLike, lease: ShardLease) -> None:
    """Atomically persist ``lease`` (directory is created on demand).

    Uses :func:`~repro.sweep.cache.atomic_write_json`, whose unique
    temp names matter here: a worker's heartbeat thread and the
    dispatcher's expiry can legitimately write the same lease at the
    same moment, and with a shared temp name one of them would find its
    temp file stolen by the other's ``os.replace``.  Last atomic write
    wins, but neither writer can crash.
    """
    atomic_write_json(lease_path(run_dir, lease.index), asdict(lease))


def read_lease(run_dir: os.PathLike, index: int) -> Optional[ShardLease]:
    """The current lease for shard ``index``, or None if unreadable."""
    try:
        data = json.loads(
            lease_path(run_dir, index).read_text(encoding="utf-8")
        )
        known = {f for f in ShardLease.__dataclass_fields__}
        return ShardLease(**{k: v for k, v in data.items() if k in known})
    except (OSError, json.JSONDecodeError, TypeError):
        return None


def read_leases(run_dir: os.PathLike) -> Dict[int, ShardLease]:
    """Every readable shard lease, keyed by shard index."""
    leases: Dict[int, ShardLease] = {}
    root = shards_dir(run_dir)
    if not root.is_dir():
        return leases
    for path in sorted(root.glob("shard-*.json")):
        if path.name.endswith(".report.json") or path.name.startswith("."):
            continue
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        lease = read_lease(run_dir, index)
        if lease is not None:
            leases[index] = lease
    return leases


def claim_marker_path(run_dir: os.PathLike, index: int,
                      attempt: int) -> Path:
    return (Path(run_dir) / CLAIMS_DIR
            / f"shard-{index:04d}.attempt-{attempt:04d}")


def claim_age(run_dir: os.PathLike, lease: ShardLease) -> Optional[float]:
    """Seconds since ``lease``'s current attempt was claimed, or None.

    A *pending* lease whose current attempt already has an old claim
    marker means a claimant died between winning the marker and writing
    the ``running`` state -- that attempt is burned and the dispatcher
    must bump it or the shard can never be claimed again.
    """
    try:
        mtime = claim_marker_path(run_dir, lease.index,
                                  lease.attempt).stat().st_mtime
    except OSError:
        return None
    return time.time() - mtime


def try_claim(run_dir: os.PathLike, lease: ShardLease, owner: str) -> bool:
    """Attempt to claim ``lease`` for ``owner``; True iff we won.

    The claim is the exclusive creation of a marker file keyed on
    ``(index, attempt)``; losing means another worker already owns this
    attempt.  On success the state file is rewritten to ``running``.
    """
    claims = Path(run_dir) / CLAIMS_DIR
    claims.mkdir(parents=True, exist_ok=True)
    marker = claim_marker_path(run_dir, lease.index, lease.attempt)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(owner)
    now = time.time()
    lease.state = RUNNING
    lease.owner = owner
    lease.claimed_at = now
    lease.heartbeat = now
    lease.error = ""
    write_lease(run_dir, lease)
    return True


def expire_lease(run_dir: os.PathLike, lease: ShardLease) -> ShardLease:
    """Reassign a dead (or failed) lease: pending again, attempt + 1.

    Only the dispatcher calls this.  The attempt bump invalidates the
    previous owner's claim -- its heartbeat thread will observe the
    change and stand down.

    Guarded against the caller's snapshot being stale: the lease is
    re-read first, and if it moved on in the meantime -- the "dead"
    worker actually finished (``done``) or another writer already
    advanced the attempt -- the current state is returned untouched
    instead of being stomped back to pending.  A finished shard must
    never be redone because the dispatcher raced its completion.
    """
    current = read_lease(run_dir, lease.index)
    if current is not None and (
        current.state == DONE
        or current.attempt != lease.attempt
        or current.owner != lease.owner
    ):
        return current
    lease.state = PENDING
    lease.attempt += 1
    lease.owner = ""
    lease.heartbeat = 0.0
    lease.claimed_at = 0.0
    lease.hits = lease.misses = lease.done_points = 0
    write_lease(run_dir, lease)
    return lease


class Heartbeat:
    """Daemon thread keeping one running lease visibly alive.

    Re-reads the state file before every write: if the attempt or owner
    changed (the dispatcher expired us and someone else claimed the
    shard), sets :attr:`lost` and stops writing -- the worker checks the
    flag before marking the shard done.
    """

    def __init__(self, run_dir: os.PathLike, lease: ShardLease,
                 interval: float) -> None:
        self.run_dir = run_dir
        self.lease = lease
        self.interval = max(0.05, interval)
        self.lost = False
        self._progress = {"hits": 0, "misses": 0, "done_points": 0,
                          "total_points": lease.total_points}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-hb-{lease.index}", daemon=True
        )

    def update_progress(self, hits: int, misses: int,
                        done_points: int) -> None:
        with self._lock:
            self._progress["hits"] = hits
            self._progress["misses"] = misses
            self._progress["done_points"] = done_points

    def _still_ours(self) -> bool:
        current = read_lease(self.run_dir, self.lease.index)
        return (
            current is not None
            and current.attempt == self.lease.attempt
            and current.owner == self.lease.owner
            and current.state == RUNNING
        )

    def _beat(self) -> bool:
        """One liveness write; False if the lease is no longer ours."""
        if not self._still_ours():
            self.lost = True
            return False
        with self._lock:
            self.lease.hits = self._progress["hits"]
            self.lease.misses = self._progress["misses"]
            self.lease.done_points = self._progress["done_points"]
        self.lease.heartbeat = time.time()
        write_lease(self.run_dir, self.lease)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self._beat():
                return

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
