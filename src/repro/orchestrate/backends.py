"""Pluggable worker-launch backends for the orchestrator.

A backend's only job is to get ``python -m repro orchestrate --worker
<run-dir>`` processes running somewhere; all coordination (claims,
leases, results) happens through the shared run directory and cache, so
backends never carry protocol state.  Three are provided:

* :class:`LocalBackend` -- a pool of subprocesses on this machine (the
  default; also what CI smoke-tests).
* :class:`SSHBackend` -- ``ssh`` into a host list, N workers per host.
  Hosts must share the run/cache directories (NFS or equivalent) and
  have the same tree checked out -- the manifest's code digest enforces
  the "same tree" part by refusing mismatched workers.
* :class:`SlurmBackend` -- generates an ``sbatch`` array-job script (one
  worker per array task) into the run directory; submission is optional
  so sites can route it through their own wrappers.

Backends expose liveness (``dead_owners``) where they can observe it so
the dispatcher can reassign a crashed worker's shard *before* its lease
TTL expires; Slurm can't observe task death from the login node, so
there the TTL is the only detector (set it generously).
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

WORKERS_SUBDIR = "workers"

#: Attempts per worker launch before the OSError propagates.  The
#: transient failures worth riding out (EAGAIN from a momentarily full
#: process table, a busy log file on a network filesystem) clear within
#: milliseconds; anything persistent should fail fast and loudly.
SPAWN_RETRY_LIMIT = 3

#: Base back-off delay between launch attempts, doubled each retry
#: (0.05 s, 0.1 s).  Deliberately jitter-free: tests and reruns observe
#: identical retry schedules.
SPAWN_BACKOFF_SECONDS = 0.05


def worker_command(
    run_dir: os.PathLike,
    worker_id: str,
    python: str = "",
    inner_workers: Optional[int] = 1,
) -> List[str]:
    """The argv that runs one shard worker against ``run_dir``."""
    cmd = [
        python or sys.executable, "-m", "repro", "orchestrate",
        "--worker", str(run_dir), "--worker-id", worker_id,
    ]
    if inner_workers is not None:
        cmd += ["--inner-workers", str(inner_workers)]
    return cmd


def _worker_env() -> dict:
    """Subprocess environment with this tree's ``repro`` importable."""
    import repro

    env = dict(os.environ)
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    current = env.get("PYTHONPATH", "")
    parts = [package_parent] + ([current] if current else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


class _ProcessBackend:
    """Shared machinery for backends that hold Popen handles."""

    def __init__(self) -> None:
        self._procs: Dict[str, subprocess.Popen] = {}
        self._spawned = 0
        self._logs: List = []
        #: Launch attempts that failed transiently and were retried;
        #: surfaced in the run report's provenance.
        self.spawn_retries = 0

    # -- liveness ------------------------------------------------------
    def live_owners(self) -> Set[str]:
        return {wid for wid, proc in self._procs.items()
                if proc.poll() is None}

    def dead_owners(self) -> Set[str]:
        """Workers whose process has exited (cleanly or not)."""
        return {wid for wid, proc in self._procs.items()
                if proc.poll() is not None}

    def live_count(self) -> int:
        return len(self.live_owners())

    def exhausted(self) -> bool:
        """No live workers left and the respawn budget is spent.

        The dispatcher turns this into a loud failure when claimable
        work remains -- a fleet whose workers all die before claiming
        anything (wrong tree, broken interpreter) must not poll
        forever in silence.
        """
        return (self._spawned >= getattr(self, "max_spawns", 0)
                and self.live_count() == 0)

    # -- lifecycle -----------------------------------------------------
    def _spawn_proc(self, run_dir, cmd: Sequence[str], worker_id: str,
                    env: Optional[dict] = None) -> None:
        """Launch one worker, riding out transient ``OSError`` s.

        Bounded exponential back-off (:data:`SPAWN_RETRY_LIMIT`
        attempts, :data:`SPAWN_BACKOFF_SECONDS` base, doubling,
        jitter-free so the schedule is deterministic); the final
        attempt's failure propagates.  Each retried attempt counts in
        :attr:`spawn_retries` for the run report's provenance.
        """
        log_dir = Path(run_dir) / WORKERS_SUBDIR
        log_dir.mkdir(parents=True, exist_ok=True)
        env = env if env is not None else _worker_env()
        for attempt in range(SPAWN_RETRY_LIMIT):
            log = open(log_dir / f"{worker_id}.log", "ab")
            try:
                proc = subprocess.Popen(
                    list(cmd), stdout=log, stderr=subprocess.STDOUT, env=env,
                )
            except OSError:
                log.close()
                if attempt + 1 >= SPAWN_RETRY_LIMIT:
                    raise
                self.spawn_retries += 1
                time.sleep(SPAWN_BACKOFF_SECONDS * (2 ** attempt))
                continue
            self._logs.append(log)
            self._procs[worker_id] = proc
            self._spawned += 1
            return

    def shutdown(self) -> None:
        """Terminate stragglers and release log handles."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass


class LocalBackend(_ProcessBackend):
    """A pool of worker subprocesses on the local machine."""

    def __init__(self, workers: int = 2,
                 inner_workers: Optional[int] = 1,
                 max_spawns: Optional[int] = None) -> None:
        super().__init__()
        self.workers = max(1, int(workers))
        self.inner_workers = inner_workers
        #: Respawn budget: a crash-looping tree must not fork forever.
        self.max_spawns = (max_spawns if max_spawns is not None
                           else 4 * self.workers)

    def describe(self) -> str:
        return f"local pool ({self.workers} workers)"

    def _spawn(self, run_dir) -> None:
        worker_id = f"local-w{self._spawned}-{os.getpid()}"
        cmd = worker_command(run_dir, worker_id,
                             inner_workers=self.inner_workers)
        self._spawn_proc(run_dir, cmd, worker_id)

    def launch(self, run_dir) -> None:
        for _ in range(self.workers):
            self._spawn(run_dir)

    def maintain(self, run_dir, pending: int) -> None:
        """Top the pool back up while claimable work remains."""
        while (pending > 0 and self.live_count() < self.workers
               and self._spawned < self.max_spawns):
            self._spawn(run_dir)
            pending -= 1


class SSHBackend(_ProcessBackend):
    """Workers launched over ``ssh`` onto a host list.

    ``remote_prelude`` is a shell fragment run before the worker command
    on each host (e.g. ``cd /shared/repo && export PYTHONPATH=src``);
    ``remote_python`` names the interpreter there.  The run and cache
    directories must resolve on every host (shared filesystem).
    """

    def __init__(
        self,
        hosts: Sequence[str],
        workers_per_host: int = 1,
        remote_python: str = "python3",
        remote_prelude: str = "",
        ssh_options: Sequence[str] = ("-o", "BatchMode=yes"),
        inner_workers: Optional[int] = 1,
        max_spawns: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not hosts:
            raise ValueError("ssh backend needs at least one host")
        self.hosts = list(hosts)
        self.workers_per_host = max(1, int(workers_per_host))
        self.remote_python = remote_python
        self.remote_prelude = remote_prelude
        self.ssh_options = list(ssh_options)
        self.inner_workers = inner_workers
        total = len(self.hosts) * self.workers_per_host
        self.max_spawns = (max_spawns if max_spawns is not None
                           else 4 * total)

    def describe(self) -> str:
        return (f"ssh ({len(self.hosts)} hosts x "
                f"{self.workers_per_host} workers)")

    def command(self, host: str, run_dir, worker_id: str) -> List[str]:
        """The full ``ssh`` argv for one remote worker (testable)."""
        remote = " ".join(
            shlex.quote(part) for part in worker_command(
                run_dir, worker_id, python=self.remote_python,
                inner_workers=self.inner_workers,
            )
        )
        if self.remote_prelude:
            remote = f"{self.remote_prelude} && {remote}"
        return ["ssh", *self.ssh_options, host, remote]

    def _spawn(self, run_dir, host: str) -> None:
        worker_id = f"ssh-{host}-w{self._spawned}"
        self._spawn_proc(
            run_dir, self.command(host, run_dir, worker_id), worker_id,
            env=dict(os.environ),
        )

    def launch(self, run_dir) -> None:
        for host in self.hosts:
            for _ in range(self.workers_per_host):
                self._spawn(run_dir, host)

    def maintain(self, run_dir, pending: int) -> None:
        total = len(self.hosts) * self.workers_per_host
        while (pending > 0 and self.live_count() < total
               and self._spawned < self.max_spawns):
            host = self.hosts[self._spawned % len(self.hosts)]
            self._spawn(run_dir, host)
            pending -= 1


class SlurmBackend:
    """``sbatch`` array-job script generator (submission optional).

    ``launch`` writes ``<run-dir>/sbatch.sh`` -- one array task per
    worker slot, each running the standard worker loop -- and submits it
    only when ``submit=True``.  Liveness is TTL-only: the dispatcher
    cannot see Slurm task death, so set ``lease_ttl`` well above a
    point's simulation time.
    """

    SCRIPT_NAME = "sbatch.sh"

    def __init__(
        self,
        workers: int = 4,
        partition: str = "",
        time_limit: str = "04:00:00",
        remote_python: str = "python3",
        remote_prelude: str = "",
        submit: bool = False,
        inner_workers: Optional[int] = 1,
    ) -> None:
        self.workers = max(1, int(workers))
        self.partition = partition
        self.time_limit = time_limit
        self.remote_python = remote_python
        self.remote_prelude = remote_prelude
        self.submit = submit
        self.inner_workers = inner_workers
        self.job_id: str = ""
        #: Slurm submission is one sbatch call, not per-worker spawns;
        #: the attribute exists so provenance reporting is uniform.
        self.spawn_retries = 0

    def describe(self) -> str:
        mode = "submitted" if self.submit else "script only"
        return f"slurm array ({self.workers} tasks, {mode})"

    def script(self, run_dir) -> str:
        """The sbatch script text for this run (testable)."""
        run_dir = Path(run_dir)
        worker = " ".join(
            shlex.quote(part) for part in worker_command(
                run_dir, "slurm-${SLURM_ARRAY_JOB_ID}-${SLURM_ARRAY_TASK_ID}",
                python=self.remote_python,
                inner_workers=self.inner_workers,
            )
        )
        # The worker id embeds shell variables on purpose; undo the
        # quoting shlex applied to the ${...} references.
        worker = worker.replace(
            "'slurm-${SLURM_ARRAY_JOB_ID}-${SLURM_ARRAY_TASK_ID}'",
            '"slurm-${SLURM_ARRAY_JOB_ID}-${SLURM_ARRAY_TASK_ID}"',
        )
        lines = [
            "#!/bin/bash",
            "#SBATCH --job-name=repro-orchestrate",
            f"#SBATCH --array=0-{self.workers - 1}",
            f"#SBATCH --time={self.time_limit}",
            f"#SBATCH --output={run_dir / WORKERS_SUBDIR}/slurm-%A_%a.log",
        ]
        if self.partition:
            lines.append(f"#SBATCH --partition={self.partition}")
        lines += [
            "",
            "set -euo pipefail",
        ]
        if self.remote_prelude:
            lines.append(self.remote_prelude)
        lines += [worker, ""]
        return "\n".join(lines)

    def launch(self, run_dir) -> None:
        run_dir = Path(run_dir)
        (run_dir / WORKERS_SUBDIR).mkdir(parents=True, exist_ok=True)
        script_path = run_dir / self.SCRIPT_NAME
        script_path.write_text(self.script(run_dir), encoding="utf-8")
        script_path.chmod(0o755)
        if self.submit:
            out = subprocess.run(
                ["sbatch", "--parsable", str(script_path)],
                check=True, capture_output=True, text=True,
            )
            self.job_id = out.stdout.strip().split(";")[0]

    # Slurm gives the login node no cheap liveness signal; the lease
    # TTL is the detector, and the dispatcher must keep polling even
    # with zero observable workers (array tasks may still be queued).
    def dead_owners(self) -> Set[str]:
        return set()

    def live_count(self) -> int:
        return self.workers if self.submit else 0

    def exhausted(self) -> bool:
        return False

    def maintain(self, run_dir, pending: int) -> None:
        pass

    def shutdown(self) -> None:
        if self.submit and self.job_id:
            subprocess.run(["scancel", self.job_id], check=False,
                           capture_output=True)
