"""Distributed sweep orchestration on top of ``--shard`` + the cache.

The sweep engine already made cross-machine work *possible*: shards are
deterministic disjoint slices and the result cache is content-addressed,
so any number of processes pointed at a shared cache directory compose.
This package adds the machinery that makes it *operational*:

* :func:`~repro.orchestrate.dispatcher.prepare_run` /
  :func:`~repro.orchestrate.dispatcher.orchestrate_run` -- split named
  sweeps into shard work units, launch workers on a pluggable backend,
  poll the shared cache and the shard ledger, reassign dead workers,
  merge per-shard outcomes into one verified report.
* :class:`~repro.orchestrate.backends.LocalBackend` /
  :class:`~repro.orchestrate.backends.SSHBackend` /
  :class:`~repro.orchestrate.backends.SlurmBackend` -- where workers
  actually run.
* :mod:`~repro.orchestrate.lease` -- heartbeat/lease files giving every
  shard crash-evident state on a shared filesystem.
* :mod:`~repro.orchestrate.manifest` -- the run manifest pinning sweep
  fingerprints and the code digest, so mixed-version workers are
  refused instead of silently merged.
* :func:`~repro.orchestrate.dispatcher.resume_run` -- continue an
  interrupted run; everything already cached is never recomputed.

CLI: ``python -m repro orchestrate`` (see docs/ORCHESTRATION.md).
"""

from repro.orchestrate.backends import (
    LocalBackend,
    SlurmBackend,
    SSHBackend,
    worker_command,
)
from repro.orchestrate.dispatcher import (
    MergeMismatchError,
    OrchestrationError,
    REPORT_NAME,
    orchestrate_run,
    prepare_run,
    resume_run,
)
from repro.orchestrate.lease import (
    Heartbeat,
    ShardLease,
    expire_lease,
    read_lease,
    read_leases,
    try_claim,
    write_lease,
)
from repro.orchestrate.manifest import (
    RunManifest,
    VersionMismatchError,
    apply_overrides,
    spec_fingerprint,
)
from repro.orchestrate.worker import (
    EXIT_VERSION_MISMATCH,
    run_worker,
)

__all__ = [
    "LocalBackend",
    "SSHBackend",
    "SlurmBackend",
    "worker_command",
    "prepare_run",
    "orchestrate_run",
    "resume_run",
    "OrchestrationError",
    "MergeMismatchError",
    "REPORT_NAME",
    "RunManifest",
    "VersionMismatchError",
    "apply_overrides",
    "spec_fingerprint",
    "ShardLease",
    "Heartbeat",
    "read_lease",
    "read_leases",
    "write_lease",
    "try_claim",
    "expire_lease",
    "run_worker",
    "EXIT_VERSION_MISMATCH",
]
