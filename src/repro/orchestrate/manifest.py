"""Run manifests: the pinned identity of an orchestrated sweep run.

A run directory starts with one ``manifest.json`` describing *what* is
being computed (the named sweeps plus their factory overrides), *how it
is split* (the shard total), *where results land* (the shared cache
directory) and -- critically -- *which code* may compute it: the
manifest pins the :func:`repro.sweep.cache.code_version` digest of the
dispatching tree and a per-sweep :func:`spec_fingerprint` over every
point's canonical config hash and parameters.

Workers re-derive both before claiming any work and refuse to
participate on a mismatch (:class:`VersionMismatchError`).  This is what
makes a shared cache directory safe across machines: a worker running
different simulator code would happily fill the cache with entries the
dispatcher can never read back (different content hashes) -- or worse,
with *matching* hashes from a manifest of a different tree.  Mixed-
version fleets are therefore refused loudly instead of merged silently.

Factory overrides are stored as plain JSON values (a system *name*, not
a config object) so the manifest itself is machine-portable; workers
rebuild the actual :class:`~repro.sweep.spec.SweepSpec` objects from the
named registry and verify the rebuilt specs hash to the pinned
fingerprints.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.sweep.cache import atomic_write_json, code_version
from repro.sweep.spec import (
    SweepSpec,
    apply_domains,
    build_sweep,
    resolve_runner,
)

#: Bump when the manifest layout changes incompatibly.
MANIFEST_FORMAT = 1

MANIFEST_NAME = "manifest.json"


class VersionMismatchError(RuntimeError):
    """This tree's code (or a rebuilt spec) differs from the manifest."""


def spec_fingerprint(spec: SweepSpec) -> str:
    """A digest over everything that identifies a sweep's point grid.

    Covers the spec name, resolved runner name, seeding policy, and --
    per point -- the key repr, the canonical config hash, and the
    canonical parameters.  Two trees that build the same named sweep to
    the same fingerprint will shard it identically and hash its points
    to the same cache keys (given an equal code digest), which is the
    precondition for merging their work.
    """
    runner = resolve_runner(spec.runner)
    identity = {
        "name": spec.name,
        "runner": runner.name,
        "base_seed": spec.base_seed,
        "auto_seed": spec.auto_seed,
        "points": [
            {
                "key": repr(point.key),
                "config": point.config.stable_hash(),
                "params": point.canonical_params(),
            }
            for point in spec.points
        ],
    }
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def apply_overrides(name: str, overrides: dict) -> SweepSpec:
    """Rebuild one named sweep from JSON-safe override values.

    ``base`` maps a system *name* through :meth:`SystemConfig.by_name`;
    lists revert to tuples (JSON has no tuple type, the factories take
    tuples); everything else passes through.  ``domains`` is not a
    factory parameter -- it is applied to the built spec
    (:func:`repro.sweep.spec.apply_domains`), so every shard worker
    partitions each point identically and the spec fingerprint covers
    the domain count.

    Public because the override vocabulary is shared wire format: run
    manifests store it, and the result server's query protocol accepts
    the same ``{"args": {...}}`` shape (docs/SERVING.md) -- one decoder
    keeps the two from drifting.
    """
    kwargs = {}
    for param, value in (overrides or {}).items():
        if param == "base" and isinstance(value, str):
            value = SystemConfig.by_name(value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[param] = value
    domains = kwargs.pop("domains", None)
    spec = build_sweep(name, **kwargs)
    if domains is not None:
        spec = apply_domains(spec, domains)
    return spec


# Backwards-compatible alias (pre-serve internal name).
_apply_overrides = apply_overrides


@dataclass
class RunManifest:
    """The on-disk identity of one orchestrated run."""

    #: ``[{"name": <registered sweep>, "overrides": {...}}, ...]``
    sweeps: List[dict]
    #: Total shard count N; work units are ``--shard I/N`` slices.
    shards: int
    #: Shared content-addressed cache directory (absolute path).
    cache_dir: str
    #: ``code_version()`` digest of the dispatching tree.
    code: str
    #: sweep name -> :func:`spec_fingerprint` of the built spec.
    fingerprints: Dict[str, str]
    #: Seconds of heartbeat silence before a shard lease is considered
    #: dead and its work unit reassigned.
    lease_ttl: float = 60.0
    #: Modules imported on workers before specs are rebuilt (lets
    #: user-registered sweeps/runners participate in orchestration).
    extra_imports: List[str] = field(default_factory=list)
    created: float = 0.0
    format: int = MANIFEST_FORMAT

    # ------------------------------------------------------------------
    # Construction and (de)serialization
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        sweeps: List[dict],
        shards: int,
        cache_dir: os.PathLike,
        lease_ttl: float = 60.0,
        extra_imports: Optional[List[str]] = None,
    ) -> "RunManifest":
        manifest = cls(
            sweeps=sweeps,
            shards=int(shards),
            cache_dir=str(Path(cache_dir).resolve()),
            code=code_version(),
            fingerprints={},
            lease_ttl=float(lease_ttl),
            extra_imports=list(extra_imports or []),
            created=time.time(),
        )
        specs = manifest.build_specs(verify=False)
        manifest.fingerprints = {
            spec.name: spec_fingerprint(spec) for spec in specs
        }
        return manifest

    @classmethod
    def path(cls, run_dir: os.PathLike) -> Path:
        return Path(run_dir) / MANIFEST_NAME

    def save(self, run_dir: os.PathLike) -> Path:
        path = self.path(run_dir)
        atomic_write_json(path, asdict(self), indent=1)
        return path

    @classmethod
    def load(cls, run_dir: os.PathLike) -> "RunManifest":
        path = cls.path(run_dir)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise FileNotFoundError(
                f"no run manifest at {path} -- is {run_dir!r} an "
                f"orchestrate run directory?"
            ) from exc
        if data.get("format") != MANIFEST_FORMAT:
            raise VersionMismatchError(
                f"manifest format {data.get('format')!r} != "
                f"{MANIFEST_FORMAT} (written by an incompatible version)"
            )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    # ------------------------------------------------------------------
    # Verification (the mixed-version refusal)
    # ------------------------------------------------------------------
    def verify_code(self) -> None:
        """Refuse to work if this tree's code digest differs."""
        ours = code_version()
        if ours != self.code:
            raise VersionMismatchError(
                f"code digest mismatch: manifest pins {self.code[:12]}..., "
                f"this tree is {ours[:12]}... -- a worker running "
                f"different simulator code must not contribute to this "
                f"run (results would not be bit-identical)"
            )

    def build_specs(self, verify: bool = True) -> List[SweepSpec]:
        """Rebuild every spec; with ``verify`` also check fingerprints."""
        for module in self.extra_imports:
            importlib.import_module(module)
        specs = [
            _apply_overrides(entry["name"], entry.get("overrides"))
            for entry in self.sweeps
        ]
        if verify:
            for spec in specs:
                pinned = self.fingerprints.get(spec.name)
                got = spec_fingerprint(spec)
                if pinned != got:
                    raise VersionMismatchError(
                        f"sweep {spec.name!r} rebuilt to fingerprint "
                        f"{got[:12]}... but the manifest pins "
                        f"{pinned[:12] if pinned else None}... -- the "
                        f"registry on this machine builds a different "
                        f"point grid"
                    )
        return specs
