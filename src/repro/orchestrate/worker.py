"""The shard worker: claim, simulate, report, repeat.

``python -m repro orchestrate --worker <run-dir>`` runs this loop.  A
worker is stateless and interchangeable: it verifies the run manifest
(refusing on any code/spec version mismatch), then repeatedly claims the
lowest-index pending shard, executes that ``--shard I/N`` slice of every
sweep in the manifest against the shared result cache, ships the
per-shard outcome records next to the lease, and marks the lease done.
When nothing is claimable it exits; the dispatcher spawns replacements
if expired leases later need hands.

Crash safety falls out of the cache: every finished point is already an
atomic content-addressed cache entry, so a worker killed mid-shard
loses only its lease (which the dispatcher expires and reassigns) --
the replacement replays the dead worker's finished points as cache hits
and simulates only the remainder.
"""

from __future__ import annotations

import os
import socket
import sys
import traceback
from typing import List, Optional

from repro.sweep.cache import ResultCache, atomic_write_json
from repro.sweep.engine import run_sweeps, shard_points
from repro.orchestrate.lease import (
    DONE,
    FAILED,
    PENDING,
    Heartbeat,
    ShardLease,
    read_lease,
    read_leases,
    report_path,
    try_claim,
    write_lease,
)
from repro.orchestrate.manifest import RunManifest

#: Exit code for a version-mismatch refusal (distinguishable from a
#: crash so fleet tooling can tell "wrong tree" from "broken worker").
EXIT_VERSION_MISMATCH = 3


def default_worker_id(suffix: str = "") -> str:
    host = socket.gethostname().split(".", 1)[0] or "host"
    tag = f"{host}-{os.getpid()}"
    return f"{tag}-{suffix}" if suffix else tag


def _shard_telemetry_summary(spec_records) -> Optional[dict]:
    """Summarize telemetry captured while running this shard.

    The per-point artifacts (trace/metrics/profile files) already live
    under the session's trace directory; the shard report only carries
    the bookkeeping the dispatcher folds into ``report.json``
    provenance: how many points this shard captured and where the
    artifacts went.  None when no telemetry session is active.
    """
    from repro.telemetry.state import active

    settings = active()
    if settings is None or not settings.enabled:
        return None
    captured = sum(
        1
        for record in spec_records
        for point in record.get("points", ())
        if "telemetry" in point or "diagnostics" in point
    )
    return {
        "captured_points": captured,
        "trace_dir": settings.trace_dir,
    }


def _write_shard_report(run_dir, lease: ShardLease, reports) -> None:
    """Atomically persist this shard's outcome records."""
    spec_records = [report.to_record() for report in reports]
    payload = {
        "index": lease.index,
        "total": lease.total,
        "attempt": lease.attempt,
        "owner": lease.owner,
        "spec_records": spec_records,
    }
    telemetry = _shard_telemetry_summary(spec_records)
    if telemetry is not None:
        payload["telemetry"] = telemetry
    atomic_write_json(report_path(run_dir, lease.index), payload)


def _lease_still_ours(run_dir, lease: ShardLease) -> bool:
    """Is ``lease`` still this worker's to write?  Checked before every
    terminal state write -- the heartbeat only samples at its interval,
    so a reassignment can land between its last beat and shard end."""
    current = read_lease(run_dir, lease.index)
    return (current is not None
            and current.attempt == lease.attempt
            and current.owner == lease.owner)


def _run_shard(
    run_dir,
    manifest: RunManifest,
    specs,
    lease: ShardLease,
    inner_workers: Optional[int],
) -> bool:
    """Execute one claimed shard end to end; True on success."""
    lease.total_points = sum(
        len(shard_points(spec.points, (lease.index, lease.total)))
        for spec in specs
    )
    write_lease(run_dir, lease)
    beat = Heartbeat(
        run_dir, lease,
        interval=min(5.0, max(0.05, manifest.lease_ttl / 4.0)),
    )
    counters = {"hits": 0, "misses": 0, "done": 0}

    def on_outcome(outcome) -> None:
        counters["done"] += 1
        counters["hits" if outcome.cached else "misses"] += 1
        beat.update_progress(counters["hits"], counters["misses"],
                             counters["done"])

    beat.start()
    try:
        reports = run_sweeps(
            specs,
            workers=inner_workers,
            cache=ResultCache(manifest.cache_dir),
            shard=(lease.index, lease.total),
            on_outcome=on_outcome,
        )
    except Exception:
        beat.stop()
        # Same ownership discipline as the success path: a worker that
        # stalled past the TTL, was replaced, and *then* failed must
        # not write ``failed`` over its replacement's lease.
        if not beat.lost and _lease_still_ours(run_dir, lease):
            lease.state = FAILED
            lease.error = traceback.format_exc(limit=20)
            write_lease(run_dir, lease)
        return False
    beat.stop()
    if not beat.lost and not _lease_still_ours(run_dir, lease):
        # Never write ``done`` over a replacement's ledger entry.
        beat.lost = True
    if beat.lost:
        # The dispatcher reassigned this shard under us (we looked
        # dead).  Our cache entries stand; the ledger belongs to the
        # replacement worker now.
        print(
            f"orchestrate worker: lease on shard "
            f"{lease.index}/{lease.total} was reassigned; dropping it",
            file=sys.stderr,
        )
        return False
    _write_shard_report(run_dir, lease, reports)
    lease.state = DONE
    lease.hits = sum(report.hits for report in reports)
    lease.misses = sum(report.misses for report in reports)
    lease.done_points = lease.hits + lease.misses
    write_lease(run_dir, lease)
    return True


def run_worker(
    run_dir,
    worker_id: Optional[str] = None,
    inner_workers: Optional[int] = 1,
) -> int:
    """The worker main loop; returns a process exit code.

    ``inner_workers`` is the per-shard process-pool width (default 1:
    orchestration parallelism comes from shard fan-out, not nested
    pools; pass ``None`` to re-enable the ``$REPRO_SWEEP_WORKERS``
    default for fat hosts).
    """
    owner = worker_id or default_worker_id()
    try:
        manifest = RunManifest.load(run_dir)
        manifest.verify_code()
        specs = manifest.build_specs(verify=True)
    except Exception as exc:
        from repro.orchestrate.manifest import VersionMismatchError

        print(f"orchestrate worker {owner}: refusing to start: {exc}",
              file=sys.stderr)
        return (EXIT_VERSION_MISMATCH
                if isinstance(exc, VersionMismatchError) else 1)

    completed: List[int] = []
    while True:
        claimed = None
        leases = read_leases(run_dir)
        for index in sorted(leases):
            lease = leases[index]
            if lease.state == PENDING and try_claim(run_dir, lease, owner):
                claimed = lease
                break
        if claimed is None:
            # Nothing claimable right now.  Running shards belong to
            # live peers (or will be expired and respawned by the
            # dispatcher); either way this process is surplus.
            break
        if _run_shard(run_dir, manifest, specs, claimed, inner_workers):
            completed.append(claimed.index)
    print(
        f"orchestrate worker {owner}: exiting "
        f"({len(completed)} shard(s) -> see {run_dir})",
        file=sys.stderr,
    )
    return 0
