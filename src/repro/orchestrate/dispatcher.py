"""The dispatcher: split, launch, watch, reassign, merge.

:func:`prepare_run` turns named sweeps into a run directory -- a pinned
manifest plus one pending :class:`~repro.orchestrate.lease.ShardLease`
per ``--shard I/N`` work unit.  :func:`orchestrate_run` then launches a
backend's workers at it and polls two things: the shard ledger (leases
going ``running``/``done``, heartbeats aging) and the shared
content-addressed cache (global points-finished progress).  A lease
whose heartbeat goes silent past the manifest's TTL -- or whose owner
the backend reports dead -- is expired: attempt bumped, state back to
pending, so any live worker picks the slice up and replays the corpse's
finished points from cache.

When every shard is done the dispatcher merges the per-shard outcome
records (:func:`repro.sweep.engine.merge_report_records`) and
cross-checks the merge against a serial in-process *replay* of the full
sweeps over the shared cache.  The replay must come back fully cached
-- every point simulated exactly once somewhere in the fleet -- and
bit-identical to the merged shard records; the combined report is
written to ``<run-dir>/report.json``.  Because cache keys are content
hashes over config + params + code digest, this merged report is
bit-identical to what a serial :func:`~repro.sweep.engine.run_sweep`
of the same specs would produce.

:func:`resume_run` is the crash-recovery path (``python -m repro
orchestrate --resume <run-dir>``): it re-verifies this tree against the
manifest, expires every stale or failed lease, and re-enters the same
poll loop -- nothing already in the cache is ever recomputed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.sweep.cache import ResultCache, atomic_write_json
from repro.sweep.engine import merge_report_records, run_sweeps
from repro.orchestrate import lease as lease_mod
from repro.orchestrate.lease import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    ShardLease,
    claim_age,
    expire_lease,
    read_leases,
    report_path,
    write_lease,
)
from repro.orchestrate.manifest import RunManifest

REPORT_NAME = "report.json"


class OrchestrationError(RuntimeError):
    """A run that cannot make progress (shard out of attempts, ...)."""


class MergeMismatchError(OrchestrationError):
    """Shard records and the cached replay disagree -- never expected."""


def prepare_run(
    run_dir: os.PathLike,
    sweeps: List[dict],
    cache_dir: os.PathLike,
    shards: int,
    lease_ttl: float = 60.0,
    extra_imports: Optional[List[str]] = None,
) -> RunManifest:
    """Create a run directory: manifest + one pending lease per shard.

    ``sweeps`` is ``[{"name": ..., "overrides": {...}}, ...]`` with
    JSON-safe override values (see :mod:`repro.orchestrate.manifest`).
    """
    run_dir = Path(run_dir)
    if RunManifest.path(run_dir).exists():
        raise FileExistsError(
            f"{run_dir} already holds a run manifest; use resume_run "
            f"(--resume) to continue it, or pick a fresh directory"
        )
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    manifest = RunManifest.create(
        sweeps=sweeps, shards=shards, cache_dir=cache_dir,
        lease_ttl=lease_ttl, extra_imports=extra_imports,
    )
    manifest.save(run_dir)
    for index in range(1, shards + 1):
        write_lease(run_dir, ShardLease(index=index, total=shards))
    return manifest


def _progress_line(leases: Dict[int, ShardLease], cached: int,
                   total_points: int) -> str:
    states = {state: 0 for state in lease_mod.STATES}
    for lease in leases.values():
        states[lease.state] = states.get(lease.state, 0) + 1
    return (
        f"shards: {states[DONE]} done / {states[RUNNING]} running / "
        f"{states[PENDING]} pending / {states[FAILED]} failed; "
        f"cache: {cached}/{total_points} points"
    )


def _poll_until_done(
    run_dir: Path,
    manifest: RunManifest,
    backend,
    total_points: int,
    poll_interval: float,
    max_attempts: int,
    log: Callable[[str], None],
    timeout: Optional[float] = None,
) -> Dict[int, ShardLease]:
    """Watch leases until all shards are done; expire and reassign dead
    ones along the way.  Attempt budgeting is per invocation, so a
    ``--resume`` always gets a fresh set of retries."""
    cache = ResultCache(manifest.cache_dir)
    attempts_here: Dict[int, int] = {}
    started = time.monotonic()
    last_line = ""
    last_sig = None
    cached = 0
    while True:
        leases = read_leases(run_dir)
        if len(leases) != manifest.shards:
            raise OrchestrationError(
                f"run dir holds {len(leases)} shard leases, manifest "
                f"says {manifest.shards} -- corrupted run directory?"
            )
        now = time.time()
        dead_owners = backend.dead_owners()
        pending = 0
        for lease in leases.values():
            if lease.state == DONE:
                continue
            expired = False
            if lease.state == PENDING:
                # A pending lease whose current attempt already has an
                # old claim marker is burned: the claimant died between
                # winning the marker and writing the running state, and
                # nobody can ever claim that attempt again.
                age = claim_age(run_dir, lease)
                if age is not None and age > manifest.lease_ttl:
                    expired = True
                    log(f"shard {lease.index}/{lease.total}: claimant "
                        f"died mid-claim {age:.1f}s ago; bumping attempt")
                else:
                    pending += 1
                    continue
            elif lease.state == FAILED:
                expired = True
                tail = lease.error.strip().splitlines()[-1:] or ["unknown"]
                log(f"shard {lease.index}/{lease.total} failed "
                    f"(attempt {lease.attempt}): {tail[0]}")
            elif lease.state == RUNNING:
                silent = lease.heartbeat_age(now) > manifest.lease_ttl
                owner_dead = lease.owner in dead_owners
                if silent or owner_dead:
                    expired = True
                    why = "owner process exited" if owner_dead else (
                        f"heartbeat silent {lease.heartbeat_age(now):.1f}s "
                        f"(ttl {manifest.lease_ttl:.1f}s)")
                    log(f"shard {lease.index}/{lease.total} lease dead: "
                        f"{why}; reassigning")
            if expired:
                used = attempts_here.get(lease.index, 0) + 1
                if used > max_attempts:
                    raise OrchestrationError(
                        f"shard {lease.index}/{lease.total} failed "
                        f"{used} time(s) this invocation; giving up. "
                        f"Last error: {lease.error or '(lease expired)'}"
                    )
                prior_attempt = lease.attempt
                refreshed = expire_lease(run_dir, lease)
                if (refreshed is lease
                        and refreshed.attempt == prior_attempt + 1):
                    # The expiry actually took; count the attempt.  If
                    # the lease moved under us (the "dead" worker
                    # finished, or went done mid-check), nothing was
                    # reassigned and nothing is charged.
                    attempts_here[lease.index] = used
                    pending += 1
        if all(lease.state == DONE for lease in leases.values()):
            return leases
        backend.maintain(run_dir, pending)
        if pending > 0 and getattr(backend, "exhausted", lambda: False)():
            raise OrchestrationError(
                f"{pending} shard(s) still pending but the backend's "
                f"worker/respawn budget is spent and no worker is "
                f"alive -- workers are dying before claiming work "
                f"(wrong tree? see {run_dir}/workers/*.log)"
            )
        # Count the shared cache (a full directory listing -- costly on
        # a big NFS cache dir) only when the shard ledger moved, not on
        # every poll tick.
        sig = tuple(sorted(
            (l.index, l.state, l.attempt, l.done_points)
            for l in leases.values()
        ))
        if sig != last_sig:
            last_sig = sig
            cached = len(cache)
            line = _progress_line(leases, cached, total_points)
            if line != last_line:
                log(line)
                last_line = line
        if timeout is not None and time.monotonic() - started > timeout:
            raise OrchestrationError(
                f"orchestration timed out after {timeout:.0f}s: {last_line}"
            )
        time.sleep(poll_interval)


def _merge_and_verify(
    run_dir: Path,
    manifest: RunManifest,
    specs,
    leases: Dict[int, ShardLease],
    backend=None,
) -> dict:
    """Merge shard records, cross-check against a cached serial replay,
    write and return the combined ``report.json`` payload."""
    # Collect each done shard's outcome records (one file per shard,
    # written atomically by whichever worker finished it last).
    shard_records: List[dict] = []
    shard_telemetry: Dict[int, dict] = {}
    for index in sorted(leases):
        path = report_path(run_dir, index)
        try:
            shard_records.append(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise OrchestrationError(
                f"shard {index} is marked done but its report file "
                f"{path.name} is unreadable: {exc}"
            ) from exc
        telemetry = shard_records[-1].get("telemetry")
        if telemetry:
            shard_telemetry[index] = telemetry

    merged_per_spec = []
    for si, spec in enumerate(specs):
        records = [shard["spec_records"][si] for shard in shard_records
                   if si < len(shard.get("spec_records", []))]
        try:
            merged_per_spec.append(merge_report_records(records))
        except ValueError as exc:
            # Conflicting duplicate records, mixed-up shard files --
            # surface through the orchestration error taxonomy so the
            # CLI reports it cleanly instead of a raw traceback.
            raise MergeMismatchError(
                f"sweep {spec.name!r}: {exc}"
            ) from exc

    # The authoritative full-order result: a serial replay against the
    # shared cache.  Fully cached == every point was simulated exactly
    # once somewhere in the fleet.
    cache = ResultCache(manifest.cache_dir)
    replay_reports = run_sweeps(specs, workers=1, cache=cache)
    replay_records = [report.to_record() for report in replay_reports]

    for spec, merged, replay in zip(specs, merged_per_spec, replay_records):
        merged_points = {p["key"]: p["record"] for p in merged["points"]}
        replay_points = {p["key"]: p["record"] for p in replay["points"]}
        if merged_points != replay_points:
            missing = sorted(set(replay_points) - set(merged_points))
            extra = sorted(set(merged_points) - set(replay_points))
            differing = sorted(
                key for key in set(merged_points) & set(replay_points)
                if merged_points[key] != replay_points[key]
            )
            raise MergeMismatchError(
                f"sweep {spec.name!r}: merged shard records do not "
                f"match the cached replay (missing={missing[:3]}, "
                f"extra={extra[:3]}, differing={differing[:3]})"
            )

    replay_simulated = sum(report.misses for report in replay_reports)
    payload = {
        "run_dir": str(run_dir),
        "cache_dir": manifest.cache_dir,
        "shards": manifest.shards,
        "code": manifest.code,
        #: Points simulated by shard workers across every attempt.
        "simulated_points": sum(m["misses"] for m in merged_per_spec),
        #: Cache replays observed by shard workers (resumed shards).
        "replayed_points": sum(m["hits"] for m in merged_per_spec),
        #: Points the final replay had to simulate itself -- 0 unless a
        #: worker lost a race with cache eviction; always reported.
        "replay_simulated": replay_simulated,
        #: Transiently failed worker launches the backend retried
        #: (see repro.orchestrate.backends._ProcessBackend._spawn_proc).
        "spawn_retries": int(getattr(backend, "spawn_retries", 0) or 0),
        "shard_provenance": [
            {
                "index": lease.index,
                "attempt": lease.attempt,
                "owner": lease.owner,
                "hits": lease.hits,
                "misses": lease.misses,
                # Telemetry bookkeeping shipped in the shard report (when
                # the fleet ran under a telemetry session): how many
                # points that shard captured and where the artifacts are.
                **(
                    {"telemetry": shard_telemetry[lease.index]}
                    if lease.index in shard_telemetry else {}
                ),
            }
            for lease in sorted(leases.values(), key=lambda l: l.index)
        ],
        "sweeps": replay_records,
    }
    atomic_write_json(run_dir / REPORT_NAME, payload, indent=1)
    return payload


def _default_log(message: str) -> None:
    print(f"orchestrate: {message}", file=sys.stderr, flush=True)


def orchestrate_run(
    run_dir: os.PathLike,
    backend,
    poll_interval: float = 0.5,
    max_attempts: int = 3,
    log: Callable[[str], None] = _default_log,
    timeout: Optional[float] = None,
) -> dict:
    """Drive an existing run directory to a merged, verified report.

    The manifest must already exist (see :func:`prepare_run`); this
    tree must match its code digest and spec fingerprints.  Returns the
    ``report.json`` payload.
    """
    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir)
    manifest.verify_code()
    specs = manifest.build_specs(verify=True)
    total_points = sum(len(spec.points) for spec in specs)
    log(f"run {run_dir.name}: {len(specs)} sweep(s), "
        f"{total_points} points in {manifest.shards} shard(s) "
        f"via {backend.describe()}")
    backend.launch(run_dir)
    try:
        leases = _poll_until_done(
            run_dir, manifest, backend, total_points,
            poll_interval=poll_interval, max_attempts=max_attempts,
            log=log, timeout=timeout,
        )
    finally:
        backend.shutdown()
    payload = _merge_and_verify(run_dir, manifest, specs, leases,
                                backend=backend)
    log(f"merged report written to {run_dir / REPORT_NAME} "
        f"({payload['simulated_points']} simulated, "
        f"{payload['replayed_points']} replayed from cache)")
    return payload


def resume_run(
    run_dir: os.PathLike,
    backend,
    poll_interval: float = 0.5,
    max_attempts: int = 3,
    log: Callable[[str], None] = _default_log,
    timeout: Optional[float] = None,
) -> dict:
    """Continue an interrupted run without recomputing cached points.

    Failed shards and stale running leases (heartbeat older than the
    TTL -- e.g. the whole previous fleet died with the dispatcher) are
    expired up front; leases with a *fresh* heartbeat are left alone,
    because their workers may well still be alive and writing into the
    shared cache.
    """
    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir)
    manifest.verify_code()
    now = time.time()
    revived = 0
    for lease in read_leases(run_dir).values():
        stale = (lease.state == RUNNING
                 and lease.heartbeat_age(now) > manifest.lease_ttl)
        if lease.state == FAILED or stale:
            expire_lease(run_dir, lease)
            revived += 1
    if revived:
        log(f"resume: reassigned {revived} dead shard(s)")
    return orchestrate_run(
        run_dir, backend, poll_interval=poll_interval,
        max_attempts=max_attempts, log=log, timeout=timeout,
    )
