"""Analytical surrogate tier: score huge grids, simulate only survivors.

The fidelity ladder in one import::

    from repro.surrogate import LadderSpec, run_ladder
    from repro.sweep import build_sweep

    ladder = LadderSpec(spec=build_sweep("fig6a-mem-bandwidth"),
                        top_k="10%", margin=0.1)
    report = run_ladder(ladder, cache_dir="~/.cache/repro/sweeps")
    print(report.describe())

See docs/SURROGATE.md for the model assumptions, the calibration
workflow, and the error-quantile gating rules.
"""

from repro.surrogate.ladder import (
    CalibrationError,
    LadderReport,
    LadderSpec,
    prune_estimates,
    run_ladder,
    survivor_spec,
)
from repro.surrogate.model import (
    GRID_AXES,
    OBJECTIVES,
    GridEstimates,
    LinkFeatures,
    SurrogateEstimate,
    SurrogateGrid,
    estimate_grid,
    estimate_point,
    estimate_spec,
    features_for,
    memory_bandwidth,
)
from repro.surrogate.prune import pareto_front, parse_top_k, top_k
from repro.surrogate.xval import (
    Calibration,
    RunnerCalibration,
    cross_validate,
    simulated_ticks,
    stratified_sample,
)

__all__ = [
    "SurrogateEstimate",
    "SurrogateGrid",
    "GridEstimates",
    "LinkFeatures",
    "OBJECTIVES",
    "GRID_AXES",
    "estimate_point",
    "estimate_spec",
    "estimate_grid",
    "features_for",
    "memory_bandwidth",
    "top_k",
    "pareto_front",
    "parse_top_k",
    "LadderSpec",
    "LadderReport",
    "CalibrationError",
    "run_ladder",
    "prune_estimates",
    "survivor_spec",
    "Calibration",
    "RunnerCalibration",
    "cross_validate",
    "stratified_sample",
    "simulated_ticks",
]
