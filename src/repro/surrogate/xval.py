"""Surrogate cross-validation: measure the error before trusting it.

The ladder's safety margin is only honest if the surrogate's error is
*measured* on the grid being pruned.  :func:`cross_validate` simulates a
stratified sample (every N-th point, so the sample spans the grid's
dynamic range), fits one multiplicative scale factor per runner (the
median simulated/estimated ratio -- the surrogate's systematic bias),
and records the residual relative error quantiles after scaling:

* ``p50`` -- the *signed* median residual (should sit near zero once the
  scale factor is fitted),
* ``p95`` / ``max`` -- quantiles of the *absolute* relative error; the
  ladder refuses to prune when ``p95`` exceeds the margin.

Because the sampled points run through the normal sweep engine, their
results land in the shared content-addressed cache -- cross-validation
pre-warms exactly the points a later ladder run may select.
"""

from __future__ import annotations

import dataclasses
import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.surrogate.model import SurrogateEstimate, estimate_spec
from repro.sweep.spec import SweepSpec


@dataclass(frozen=True)
class RunnerCalibration:
    """Fitted scale factor and residual error quantiles for one runner."""

    scale: float
    p50: float  # signed median residual after scaling
    p95: float  # absolute relative error, 95th percentile
    max: float  # absolute relative error, worst sample
    samples: int

    def to_record(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class Calibration:
    """Per-runner calibration, JSON round-trippable for the CLI."""

    runners: Dict[str, RunnerCalibration] = field(default_factory=dict)

    def scale_for(self, runner: str) -> float:
        entry = self.runners.get(runner)
        return entry.scale if entry is not None else 1.0

    def p95_for(self, runner: str) -> Optional[float]:
        entry = self.runners.get(runner)
        return entry.p95 if entry is not None else None

    def to_record(self) -> Dict[str, Any]:
        return {
            name: entry.to_record() for name, entry in self.runners.items()
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Calibration":
        return cls(
            runners={
                name: RunnerCalibration(**entry)
                for name, entry in record.items()
            }
        )

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_record(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "Calibration":
        return cls.from_record(json.loads(Path(path).read_text()))

    def describe(self) -> str:
        lines = []
        for name, entry in sorted(self.runners.items()):
            lines.append(
                f"{name}: scale {entry.scale:.4g}, residual p50 "
                f"{entry.p50:+.4f}, |err| p95 {entry.p95:.4f} / "
                f"max {entry.max:.4f} ({entry.samples} samples)"
            )
        return "\n".join(lines) or "(no calibrated runners)"


def simulated_ticks(result) -> float:
    """The time objective of any runner's result object (or record)."""
    for attr in ("ticks", "total_ticks"):
        value = getattr(result, attr, None)
        if value is not None:
            return float(value)
    if isinstance(result, dict):
        for key in ("ticks", "total_ticks"):
            if key in result:
                return float(result[key])
    raise TypeError(
        f"cannot extract a tick count from {type(result).__name__}"
    )


def stratified_sample(spec: SweepSpec, fraction: float = 0.5) -> SweepSpec:
    """Every N-th point of the grid, at least two when the grid has two.

    Points keep their keys and configs, so the sampled results share
    cache entries with the full sweep.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    stride = max(1, round(1.0 / fraction))
    points = list(spec.points[::stride])
    if len(points) < 2 and len(spec.points) >= 2:
        points = [spec.points[0], spec.points[-1]]
    return dataclasses.replace(spec, points=points)


def cross_validate(
    spec: SweepSpec,
    fraction: float = 0.5,
    workers: Optional[int] = None,
    cache=True,
    cache_dir=None,
    progress=None,
) -> Calibration:
    """Simulate a stratified sample and fit the surrogate against it."""
    from repro.sweep.engine import run_sweep

    sample = stratified_sample(spec, fraction)
    estimates = {est.key: est for est in estimate_spec(sample)}
    report = run_sweep(
        sample, workers=workers, cache=cache, cache_dir=cache_dir,
        progress=progress,
    )
    runner = spec.runner if isinstance(spec.runner, str) else getattr(
        spec.runner, "name", str(spec.runner)
    )
    pairs: List[tuple] = []
    for key, result in report.results().items():
        sim = simulated_ticks(result)
        est = estimates[key].ticks
        if sim <= 0 or est <= 0:
            raise ValueError(
                f"non-positive time at point {key!r}: sim={sim}, est={est}"
            )
        pairs.append((sim, est))
    if not pairs:
        raise ValueError(f"sweep '{spec.name}' produced no sample results")

    scale = statistics.median(sim / est for sim, est in pairs)
    signed = sorted((est * scale - sim) / sim for sim, est in pairs)
    absolute = sorted(abs(err) for err in signed)
    entry = RunnerCalibration(
        scale=scale,
        p50=_quantile(signed, 0.50),
        p95=_quantile(absolute, 0.95),
        max=absolute[-1],
        samples=len(pairs),
    )
    return Calibration(runners={runner: entry})


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    rank = max(1, -(-int(q * 100) * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]
