"""The fidelity ladder: surrogate-score, prune, then simulate survivors.

A :class:`LadderSpec` wraps any sweep spec.  :func:`run_ladder` scores
the full grid analytically (microseconds per point), prunes it with
top-K or Pareto selection, and feeds only the surviving points through
the normal :func:`repro.sweep.run_sweep` path -- so the content-addressed
result cache, ``--shard`` slicing, ``--domains`` partitioning, and
``repro.orchestrate`` all apply to the survivors unchanged.  Cache keys
depend only on (runner, config, params), never on the spec or the
ladder, so a survivor's simulated record is bit-identical to running the
same point without the ladder.

When a :class:`~repro.surrogate.xval.Calibration` is attached, the
ladder refuses to prune if the measured p95 relative error exceeds the
safety margin: pruning on an estimate less accurate than the margin
would silently drop true winners.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.surrogate.model import SurrogateEstimate, estimate_spec
from repro.surrogate.prune import pareto_front, parse_top_k, top_k
from repro.sweep.spec import SweepSpec


class CalibrationError(ValueError):
    """The measured surrogate error is too large for the requested margin."""


@dataclass(frozen=True)
class LadderSpec:
    """A sweep spec plus the pruning policy applied before simulation.

    Exactly one of ``top_k`` (an int or ``"10%"``-style string) and
    ``pareto`` must be set.  ``objectives`` picks what the filter
    minimizes: top-K uses the first entry, Pareto all of them.
    """

    spec: SweepSpec
    top_k: Optional[Any] = None
    pareto: bool = False
    objectives: Tuple[str, ...] = ("ticks",)
    margin: float = 0.1
    calibration: Optional[Any] = None

    def __post_init__(self) -> None:
        if (self.top_k is None) == (not self.pareto):
            raise ValueError(
                "exactly one of top_k and pareto must be selected"
            )
        if self.margin < 0:
            raise ValueError(f"margin must be non-negative, got {self.margin}")
        if not self.objectives:
            raise ValueError("need at least one objective")


@dataclass
class LadderReport:
    """Surrogate estimates, pruning decision, and the simulated survivors."""

    spec_name: str
    estimates: List[SurrogateEstimate]
    survivor_keys: List[Any]
    report: Any  # SweepReport of the surviving points

    @property
    def scored(self) -> int:
        return len(self.estimates)

    @property
    def surviving(self) -> int:
        return len(self.survivor_keys)

    @property
    def pruned(self) -> int:
        return self.scored - self.surviving

    def estimate_for(self, key) -> Optional[SurrogateEstimate]:
        for est in self.estimates:
            if est.key == key:
                return est
        return None

    def describe(self) -> str:
        return (
            f"ladder '{self.spec_name}': scored {self.scored} points, "
            f"pruned {self.pruned}, simulated {self.surviving} "
            f"({self.report.hits} cached / {self.report.misses} simulated)"
        )

    def to_record(self) -> Dict[str, Any]:
        """JSON-able summary: estimates alongside simulated records."""
        record = self.report.to_record()
        record["ladder"] = {
            "scored": self.scored,
            "pruned": self.pruned,
            "surviving": self.surviving,
            "estimates": [est.to_record() for est in self.estimates],
        }
        return record


def prune_estimates(
    ladder: LadderSpec, estimates: Sequence[SurrogateEstimate]
) -> List[SurrogateEstimate]:
    """Apply the ladder's pruning policy to a scored grid."""
    if ladder.pareto:
        return pareto_front(
            estimates, objectives=ladder.objectives, margin=ladder.margin
        )
    k = parse_top_k(ladder.top_k, len(estimates))
    return top_k(
        estimates, k, objective=ladder.objectives[0], margin=ladder.margin
    )


def survivor_spec(spec: SweepSpec, survivor_keys) -> SweepSpec:
    """The sub-spec of surviving points, preserving runner and seeds."""
    keep = set(survivor_keys)
    points = [p for p in spec.points if p.key in keep]
    return dataclasses.replace(spec, points=points)


def run_ladder(
    ladder: LadderSpec,
    workers: Optional[int] = None,
    cache=True,
    cache_dir=None,
    shard=None,
    progress=None,
    on_outcome=None,
) -> LadderReport:
    """Score, prune, and simulate one wrapped sweep.

    Keyword arguments pass straight through to
    :func:`repro.sweep.run_sweep` for the surviving points.

    Raises :class:`CalibrationError` when a calibration is attached and
    its measured p95 relative error for this runner exceeds the margin.
    """
    from repro.sweep.engine import run_sweep

    spec = ladder.spec
    if ladder.calibration is not None:
        runner = spec.runner if isinstance(spec.runner, str) else getattr(
            spec.runner, "name", str(spec.runner)
        )
        p95 = ladder.calibration.p95_for(runner)
        if p95 is not None and p95 > ladder.margin:
            raise CalibrationError(
                f"refusing to prune '{spec.name}': measured p95 relative "
                f"error {p95:.4f} for runner '{runner}' exceeds the safety "
                f"margin {ladder.margin:g}; raise --margin to at least "
                f"{p95:.4f} or improve the calibration"
            )
    estimates = estimate_spec(spec, calibration=ladder.calibration)
    survivors = prune_estimates(ladder, estimates)
    keys = [est.key for est in survivors]
    sub = survivor_spec(spec, keys)
    report = run_sweep(
        sub,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
        shard=shard,
        progress=progress,
        on_outcome=on_outcome,
    )
    return LadderReport(
        spec_name=spec.name,
        estimates=estimates,
        survivor_keys=keys,
        report=report,
    )
