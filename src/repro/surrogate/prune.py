"""Pruning filters over surrogate estimates.

Both filters keep a *superset* of the exact answer, controlled by a
safety ``margin``:

* :func:`top_k` keeps the k best points (stable order breaks exact
  ties), plus -- when the margin is positive -- every point whose
  objective is within ``(1 + margin)`` of the k-th best value, so
  near-ties at the cutoff survive instead of being dropped by estimate
  noise;
* :func:`pareto_front` keeps every point not *margin-dominated* -- a
  point is pruned only if some other point beats it by more than the
  margin factor in **every** objective.

Both are monotone in the margin: a larger margin never yields fewer
survivors (the property the hypothesis suite pins).  The margin to use
is not a guess -- :mod:`repro.surrogate.xval` measures the surrogate's
p95 relative error, and the ladder refuses to prune with a margin below
it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.surrogate.model import OBJECTIVES, SurrogateEstimate


def parse_top_k(value, total: int) -> int:
    """Resolve a top-K request: an int, ``"12"``, or ``"10%"`` of total."""
    if isinstance(value, str):
        text = value.strip()
        if text.endswith("%"):
            percent = float(text[:-1])
            if not 0 < percent <= 100:
                raise ValueError(
                    f"top-K percentage must be in (0, 100], got {value!r}"
                )
            # A tiny percentage of a small grid keeps one point, not zero.
            k = max(1, round(total * percent / 100.0))
        else:
            k = int(text)
    else:
        k = int(value)
    if k < 1:
        raise ValueError(f"top-K must keep at least one point, got {value!r}")
    return max(1, min(k, total))


def top_k(
    estimates: Sequence[SurrogateEstimate],
    k: int,
    objective: str = "ticks",
    margin: float = 0.0,
) -> List[SurrogateEstimate]:
    """The k best points, plus near-ties within ``(1 + margin)``.

    Exactly k points survive at ``margin=0`` (exact ties break by grid
    order); a positive margin additionally keeps every point within
    ``(1 + margin)`` of the k-th smallest objective.  Output preserves
    grid order.
    """
    _validate_margin(margin)
    if k < 1:
        raise ValueError(f"top-K must keep at least one point, got {k}")
    if k >= len(estimates):
        return list(estimates)
    values = [e.objective(objective) for e in estimates]
    order = sorted(range(len(estimates)), key=lambda i: (values[i], i))
    keep = set(order[:k])
    if margin > 0:
        limit = values[order[k - 1]] * (1.0 + margin)
        keep.update(i for i, v in enumerate(values) if v <= limit)
    return [estimates[i] for i in sorted(keep)]


def pareto_front(
    estimates: Sequence[SurrogateEstimate],
    objectives: Sequence[str] = ("ticks", "bytes_on_wire"),
    margin: float = 0.0,
) -> List[SurrogateEstimate]:
    """Points not margin-dominated in the given objectives (all minimized).

    ``q`` margin-dominates ``p`` iff ``q_i * (1 + margin) < p_i`` for
    every objective ``i``.  Checking each point against the classic
    (margin-0) front suffices: any margin-dominator is itself weakly
    dominated by a front member, which then also margin-dominates.
    """
    _validate_margin(margin)
    for name in objectives:
        if name not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; known: {OBJECTIVES}"
            )
    if not objectives:
        raise ValueError("need at least one objective")
    points = [
        tuple(e.objective(name) for name in objectives) for e in estimates
    ]
    front = _strict_front(points)
    factor = 1.0 + margin
    return [
        e
        for e, p in zip(estimates, points)
        if not any(_dominates(q, p, factor) for q in front)
    ]


def _dominates(q: Tuple, p: Tuple, factor: float) -> bool:
    return all(q_i * factor < p_i for q_i, p_i in zip(q, p))


def _strict_front(points: Sequence[Tuple]) -> List[Tuple]:
    """The classic Pareto front of unique objective vectors.

    In lexicographic order any dominator of a point precedes it, so a
    single pass with an incremental front is exact.
    """
    front: List[Tuple] = []
    for p in sorted(set(points)):
        if not any(
            all(q_i <= p_i for q_i, p_i in zip(q, p)) and q != p
            for q in front
        ):
            front.append(p)
    return front


def _validate_margin(margin: float) -> None:
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
