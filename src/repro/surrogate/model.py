"""Analytical surrogate cost models: the ladder's low-fidelity rung.

Scores sweep points in microseconds instead of simulating them in
seconds.  The model composes the same structure the simulator resolves
event by event -- a roofline ``max(compute, link, memory)`` per GEMM, the
:class:`~repro.core.analytical.TradeoffModel` composition for ViT, TLP
payload/header efficiency and per-hop latency from the fabric
description -- but as closed-form arithmetic:

* **compute** uses the systolic array's own ``tile_cycles`` pipeline
  formula (fill/drain vs ingest bound, or the explicit override),
* **link** serializes payload + per-TLP headers at the encoded link
  bandwidth, with the store-and-forward stall for TLPs larger than the
  hop buffer and per-hop latency amortized over ``max_tags`` outstanding
  requests,
* **memory** streams the same traffic at the DRAM aggregate bandwidth.

Estimates are *relative* scores: they rank points and expose regime
boundaries but carry a systematic scale error that the cross-validation
pass (:mod:`repro.surrogate.xval`) measures and absorbs into a
per-runner calibration factor.  Absolute tick counts always come from
the simulator.

Two evaluation paths share the same formulas:

* :func:`estimate_point` / :func:`estimate_spec` -- pure-Python scalars,
  one :class:`SurrogateEstimate` per point;
* :func:`estimate_grid` over a :class:`SurrogateGrid` -- vectorized
  numpy over named axes, scoring the cross-product without ever
  materializing per-point ``SystemConfig`` objects (features are derived
  once from the base config, axis values applied as broadcast deltas).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.access_modes import AccessMode
from repro.core.analytical import TradeoffModel
from repro.core.config import SystemConfig
from repro.sim.ticks import TICKS_PER_SEC
from repro.sweep.spec import SweepSpec
from repro.workloads import build_vit_graph
from repro.workloads.ops import GemmOp, NonGemmOp

#: Systolic tile edge and element width (mirrors ``repro.accel``).
TILE = 16
ELEMENT_BYTES = 4

#: Host<->device control round-trips charged per offloaded job
#: (doorbell, descriptor fetch, completion) at one hop latency each.
LAUNCH_HOP_ROUNDTRIPS = 4

#: CPU cycles charged per non-GEMM element (rough mean across the
#: layernorm/softmax/gelu/add kernel mix; calibration absorbs the rest).
NONGEMM_CYCLES_PER_ELEMENT = 4

#: Direct-cache access stashes accelerator traffic in the LLC, which the
#: surrogate prices as a flat effective-bandwidth boost over plain host
#: DRAM access.
DC_CACHE_FACTOR = 1.25

#: Objectives every estimate carries, in canonical order.
OBJECTIVES = ("ticks", "bytes_on_wire", "uplink_busy")


@dataclass(frozen=True)
class SurrogateEstimate:
    """Analytical score of one sweep point."""

    key: Any
    runner: str
    ticks: float
    bytes_on_wire: float
    uplink_busy: float

    def objective(self, name: str) -> float:
        if name not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; known: {OBJECTIVES}"
            )
        return getattr(self, name)

    def scaled(self, factor: float) -> "SurrogateEstimate":
        """Apply a calibration scale factor to the time estimate."""
        return dataclasses.replace(self, ticks=self.ticks * factor)

    def to_record(self) -> Dict[str, Any]:
        return {
            "key": repr(self.key),
            "runner": self.runner,
            "ticks": self.ticks,
            "bytes_on_wire": self.bytes_on_wire,
            "uplink_busy": self.uplink_busy,
        }


# ----------------------------------------------------------------------
# Fabric features: everything the formulas need, derived once per config
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFeatures:
    """Scalar features extracted from one ``SystemConfig``.

    The vectorized grid path substitutes numpy arrays for individual
    fields via :func:`dataclasses.replace`; the formulas are written so
    both work.
    """

    bytes_per_sec: Any
    header_bytes: Any
    max_payload: Any
    hop_buffer: Any
    max_tags: Any
    segment_bytes: Any
    rc_latency: Any
    switch_latency: Any
    hop_latency: Any          # rc + deepest-path switch latencies
    max_depth: Any            # switch hops on the deepest endpoint path
    mem_bytes_per_sec: Any    # bandwidth serving accelerator traffic
    host_bytes_per_sec: Any   # host DRAM aggregate (bounce buffers, CPU)
    tile_period: Any          # ticks per systolic clock cycle
    fill_drain: Any
    rc_max: Any               # max(rows, cols)
    ingest_elems: Any
    compute_override: Any     # per-tile ticks override or None
    reuse_a: bool
    on_link: bool             # False when weights live in device memory


def memory_bandwidth(config: SystemConfig) -> float:
    """Bytes/s of the memory serving the accelerator's data path."""
    if config.uses_device_memory:
        if config.devmem is not None:
            return float(config.devmem.total_bandwidth)
        return float(config.devmem_simple[1])
    host = float(config.host_mem.total_bandwidth)
    if config.access_mode is AccessMode.DIRECT_CACHE:
        return host * DC_CACHE_FACTOR
    return host


def features_for(
    config: SystemConfig, packet_size: Optional[int] = None
) -> LinkFeatures:
    """Derive the surrogate's features from a system configuration."""
    pcie = config.pcie
    topo = config.effective_topology()
    if topo is None:
        depth = 1  # classic point-to-point path: RC + one switch
    else:
        depth = max(topo.endpoint_depths())
    payload = packet_size or config.packet_size or pcie.tlp.max_payload
    period = round(TICKS_PER_SEC / config.systolic.freq_hz)
    systolic = config.systolic
    return LinkFeatures(
        bytes_per_sec=pcie.effective_bytes_per_sec,
        header_bytes=pcie.tlp.header_bytes,
        max_payload=int(payload),
        hop_buffer=pcie.hop_buffer_bytes,
        max_tags=pcie.max_tags,
        segment_bytes=config.dma_segment_bytes,
        rc_latency=pcie.rc_latency,
        switch_latency=pcie.switch_latency,
        hop_latency=pcie.rc_latency + depth * pcie.switch_latency,
        max_depth=depth,
        mem_bytes_per_sec=memory_bandwidth(config),
        host_bytes_per_sec=float(config.host_mem.total_bandwidth),
        tile_period=period,
        fill_drain=systolic.fill_drain_cycles,
        rc_max=max(systolic.rows, systolic.cols),
        ingest_elems=systolic.ingest_elems,
        compute_override=config.compute_ticks_override,
        reuse_a=config.reuse_a_panels,
        on_link=not config.uses_device_memory,
    )


# ----------------------------------------------------------------------
# Shared formulas (scalar `max`/inline-if or `np.maximum`/`np.where`)
# ----------------------------------------------------------------------
def _where_scalar(cond, a, b):
    return a if cond else b


def _gemm_parts(m, k, n, f: LinkFeatures, maximum=max, where=_where_scalar):
    """Per-GEMM cost components; all inputs may be scalars or arrays.

    Returns ``(compute, mem, serialize, latency, wire_bytes)`` in ticks
    and bytes.  Traffic mirrors the controller's tiled dataflow: A
    panels (refetched per output tile unless ``reuse_a``), B panels per
    tile, and the C write-back.
    """
    tiles_m = -(-m // TILE)
    tiles_n = -(-n // TILE)
    tiles = tiles_m * tiles_n
    a_fetches = tiles_m if f.reuse_a else tiles
    read = (a_fetches + tiles) * (TILE * ELEMENT_BYTES) * k
    write = tiles * (TILE * TILE * ELEMENT_BYTES)
    traffic = read + write

    if f.compute_override is None:
        tile_ticks = maximum(
            k + f.fill_drain, f.rc_max * k // f.ingest_elems
        ) * f.tile_period
    else:
        tile_ticks = f.compute_override
    compute = tiles * tile_ticks

    mem = traffic * (TICKS_PER_SEC / f.mem_bytes_per_sec)

    if not f.on_link:
        zero = traffic * 0
        return compute, mem, zero * 0.0, zero * 0.0, zero

    n_tlps = -(-traffic // f.max_payload)
    wire_bytes = traffic + n_tlps * f.header_bytes
    serialize = wire_bytes * (TICKS_PER_SEC / f.bytes_per_sec)
    # Store-and-forward stall for TLPs too large to overlap receive and
    # transmit in the hop buffer (Fig. 4's right branch).
    stall = where(
        2 * f.max_payload > f.hop_buffer, (2 * f.max_payload) // f.hop_buffer, 0
    )
    serialize = serialize * (1 + stall)
    # Request latency pipelines across max_tags outstanding segments.
    segments = -(-read // f.segment_bytes)
    latency = f.hop_latency * (1.0 + maximum(segments - 1, 0) / f.max_tags)
    return compute, mem, serialize, latency, wire_bytes


def _compose(compute, mem, link, f: LinkFeatures, maximum=max):
    """Roofline composition plus the fixed job-launch overhead."""
    return LAUNCH_HOP_ROUNDTRIPS * f.hop_latency + maximum(
        maximum(compute, mem), link
    )


# ----------------------------------------------------------------------
# Per-runner estimators (scalar path)
# ----------------------------------------------------------------------
def _estimate_gemm(
    config: SystemConfig,
    f: LinkFeatures,
    key: Any,
    m: int,
    k: int,
    n: int,
    **_ignored,
) -> SurrogateEstimate:
    compute, mem, serialize, latency, wire = _gemm_parts(m, k, n, f)
    ticks = _compose(compute, mem, serialize + latency, f)
    busy = min(1.0, serialize / ticks) if ticks > 0 else 0.0
    return SurrogateEstimate(key, "gemm", float(ticks), float(wire), busy)


def _estimate_multigemm(
    config: SystemConfig,
    f: LinkFeatures,
    key: Any,
    m: int,
    k: int,
    n: int,
    devices: Optional[int] = None,
    **_ignored,
) -> SurrogateEstimate:
    topo = config.effective_topology()
    total = topo.num_endpoints if topo is not None else config.num_accelerators
    active = total if devices is None else max(1, min(devices, total))
    compute, mem, serialize, latency, wire = _gemm_parts(m, k, n, f)
    # All active devices share the uplink and the host memory; compute
    # proceeds in parallel per device.
    link = active * serialize + latency
    ticks = _compose(compute, active * mem, link, f)
    busy = min(1.0, active * serialize / ticks) if ticks > 0 else 0.0
    return SurrogateEstimate(
        key, "multigemm", float(ticks), float(active * wire), busy
    )


def _estimate_peer(
    config: SystemConfig,
    f: LinkFeatures,
    key: Any,
    size_bytes: int,
    mode: str = "p2p",
    **_ignored,
) -> SurrogateEstimate:
    n_tlps = -(-size_bytes // f.max_payload)
    wire = size_bytes + n_tlps * f.header_bytes
    serialize = wire * (TICKS_PER_SEC / f.bytes_per_sec)
    if mode == "p2p":
        # Route below the root complex: up to the common switch and back
        # down; the RC and host DRAM never see the traffic.
        switch_hops = max(1, 2 * f.max_depth - 1)
        ticks = serialize + switch_hops * f.switch_latency
        busy = 0.0
    else:
        # Host bounce: two full uplink crossings plus a DRAM staging
        # buffer written and read once each.
        host = 2 * size_bytes * (TICKS_PER_SEC / f.host_bytes_per_sec)
        ticks = 2 * (serialize + f.hop_latency) + host
        wire = 2 * wire
        busy = min(1.0, 2 * serialize / ticks) if ticks > 0 else 0.0
    return SurrogateEstimate(key, "peer", float(ticks), float(wire), busy)


@lru_cache(maxsize=128)
def _vit_shape_summary(model, dim_scale):
    """Aggregate a ViT op graph into hashable cost inputs.

    Returns ``(gemm_shapes, distinct_shapes, nongemm_elements,
    nongemm_io_bytes)`` where ``gemm_shapes`` maps (m, k, n) -> total
    batched invocation count.
    """
    from repro.core.runner import _resolve_model

    graph = build_vit_graph(_resolve_model(model, dim_scale))
    shapes: Dict[Tuple[int, int, int], int] = {}
    for op in graph.ops:
        if isinstance(op, GemmOp):
            shape = (op.m, op.k, op.n)
            shapes[shape] = shapes.get(shape, 0) + op.batch
    ng_elements = 0
    ng_io_bytes = 0
    for op in graph.ops:
        if isinstance(op, NonGemmOp):
            ng_elements += op.elements
            ng_io_bytes += sum(
                graph.tensors[ref] for ref in op.inputs + op.outputs
            )
    return tuple(shapes.items()), len(shapes), ng_elements, ng_io_bytes


def _estimate_vit(
    config: SystemConfig,
    f: LinkFeatures,
    key: Any,
    model: Union[str, Any] = "base",
    memoize: bool = True,
    dim_scale: float = 1.0,
    **_ignored,
) -> SurrogateEstimate:
    shapes, _distinct, ng_elements, ng_io_bytes = _vit_shape_summary(
        model, dim_scale
    )
    gemm_ticks = 0.0
    wire_total = 0.0
    serialize_total = 0.0
    for (m, k, n), count in shapes:
        compute, mem, serialize, latency, wire = _gemm_parts(m, k, n, f)
        ticks = _compose(compute, mem, serialize + latency, f)
        # The runner memoizes repeated identical GEMMs (attention heads,
        # stacked layers), so each distinct shape is priced once.
        repeat = 1 if memoize else count
        gemm_ticks += ticks * repeat
        wire_total += wire * repeat
        serialize_total += serialize * repeat

    cpu_period = TICKS_PER_SEC / config.cpu_freq_hz
    ng_bw = f.bytes_per_sec if not f.on_link else f.host_bytes_per_sec
    ng_compute = ng_elements * NONGEMM_CYCLES_PER_ELEMENT * cpu_period
    ng_mem = ng_io_bytes * (TICKS_PER_SEC / ng_bw)
    nongemm_ticks = ng_compute + ng_mem
    if not f.on_link:
        # Non-GEMM tensors live in device memory: the CPU reaches them
        # over the link, so their traffic is wire traffic.
        wire_total += ng_io_bytes
        serialize_total += ng_io_bytes * (TICKS_PER_SEC / f.bytes_per_sec)

    tradeoff = TradeoffModel.from_measured(
        config.name or "vit", gemm_ticks, nongemm_ticks
    )
    ticks = (
        tradeoff.t_other + tradeoff.gemm_unit_time + tradeoff.nongemm_unit_time
    )
    busy = min(1.0, serialize_total / ticks) if ticks > 0 else 0.0
    return SurrogateEstimate(key, "vit", float(ticks), float(wire_total), busy)


_ESTIMATORS = {
    "gemm": _estimate_gemm,
    "multigemm": _estimate_multigemm,
    "peer": _estimate_peer,
    "vit": _estimate_vit,
}


def estimate_point(
    config: SystemConfig,
    runner: str = "gemm",
    key: Any = None,
    features: Optional[LinkFeatures] = None,
    **params,
) -> SurrogateEstimate:
    """Score one point analytically; mirrors the runner signatures.

    ``params`` take the same names the corresponding sweep runner
    accepts (``m``/``k``/``n``, ``size_bytes``/``mode``, ``model``...);
    unknown runner extras like ``seed`` are ignored.  Pass a
    pre-computed ``features`` to amortize config introspection across a
    grid (what :func:`estimate_spec` does).
    """
    try:
        estimator = _ESTIMATORS[runner]
    except KeyError:
        raise ValueError(
            f"no surrogate estimator for runner {runner!r}; "
            f"known: {sorted(_ESTIMATORS)}"
        ) from None
    if features is None:
        features = features_for(config, params.get("packet_size"))
    return estimator(config, features, key, **params)


def estimate_spec(
    spec: SweepSpec, calibration=None
) -> List[SurrogateEstimate]:
    """Score every point of a sweep spec, in point order.

    ``calibration`` (a :class:`repro.surrogate.xval.Calibration`) scales
    the time estimates by the measured per-runner factor.
    """
    runner = spec.runner
    if not isinstance(runner, str):
        runner = getattr(runner, "name", str(runner))
    scale = 1.0
    if calibration is not None:
        scale = calibration.scale_for(runner)
    feature_cache: Dict[Tuple[int, Any], LinkFeatures] = {}
    estimates = []
    for point in spec.points:
        params = point.params
        fkey = (id(point.config), params.get("packet_size"))
        features = feature_cache.get(fkey)
        if features is None:
            features = features_for(point.config, params.get("packet_size"))
            feature_cache[fkey] = features
        est = estimate_point(
            point.config, runner, key=point.key, features=features, **params
        )
        estimates.append(est if scale == 1.0 else est.scaled(scale))
    return estimates


# ----------------------------------------------------------------------
# Vectorized grid path
# ----------------------------------------------------------------------
#: Axes the vectorized GEMM path understands.
GRID_AXES = (
    "size", "m", "k", "n",
    "packet_size", "lanes", "lane_gbps", "mem_gbps", "compute_ticks",
)


@dataclass
class SurrogateGrid:
    """A cross-product design grid over a base configuration.

    ``axes`` maps axis name -> value sequence; the grid is their full
    cross product in declaration order.  The base config is canonicalized
    into :class:`LinkFeatures` once; axis values are applied as broadcast
    deltas, so a million-point grid never allocates a million
    ``SystemConfig`` objects.  The vectorized path covers the ``gemm``
    runner (the axis set above); score other runners per-point through
    :func:`estimate_spec`.
    """

    base: SystemConfig
    axes: Mapping[str, Sequence]
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a grid needs at least one axis")
        for name, values in self.axes.items():
            if name not in GRID_AXES:
                raise ValueError(
                    f"unknown grid axis {name!r}; known: {GRID_AXES}"
                )
            if len(values) == 0:
                raise ValueError(f"axis {name!r} is empty")

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(values) for values in self.axes.values())

    @property
    def num_points(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total


@dataclass
class GridEstimates:
    """Vectorized scores of a :class:`SurrogateGrid` (arrays, not lists)."""

    names: Tuple[str, ...]
    values: Tuple[Tuple[Any, ...], ...]
    ticks: np.ndarray
    bytes_on_wire: np.ndarray
    uplink_busy: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.ticks.shape

    @property
    def num_points(self) -> int:
        return int(self.ticks.size)

    def estimates(self) -> List[SurrogateEstimate]:
        """Materialize per-point estimates (keys = axis value tuples)."""
        flat_ticks = self.ticks.ravel()
        flat_wire = self.bytes_on_wire.ravel()
        flat_busy = self.uplink_busy.ravel()
        out = []
        for flat_index in range(flat_ticks.size):
            idx = np.unravel_index(flat_index, self.shape)
            key = tuple(self.values[axis][i] for axis, i in enumerate(idx))
            out.append(
                SurrogateEstimate(
                    key, "gemm",
                    float(flat_ticks[flat_index]),
                    float(flat_wire[flat_index]),
                    float(flat_busy[flat_index]),
                )
            )
        return out


def _axis_array(values: Sequence, axis: int, ndim: int) -> np.ndarray:
    arr = np.asarray(values)
    shape = [1] * ndim
    shape[axis] = arr.shape[0]
    return arr.reshape(shape)


def estimate_grid(grid, calibration=None):
    """Score a whole grid at once.

    Accepts either a :class:`SweepSpec` (delegates to
    :func:`estimate_spec`, returns a list) or a :class:`SurrogateGrid`
    (vectorized numpy, returns :class:`GridEstimates`).  This is the
    ``>= 100k points/s`` path the benchmarks gate.
    """
    if isinstance(grid, SweepSpec):
        return estimate_spec(grid, calibration)
    if not isinstance(grid, SurrogateGrid):
        raise TypeError(
            f"expected SweepSpec or SurrogateGrid, got {type(grid).__name__}"
        )

    base = grid.base
    f = features_for(base)
    names = tuple(grid.axes)
    ndim = len(names)
    ax = {
        name: _axis_array(values, i, ndim)
        for i, (name, values) in enumerate(grid.axes.items())
    }
    fixed = dict(grid.params)

    def pick(*candidates, default=None):
        for name in candidates:
            if name in ax:
                return ax[name]
            if name in fixed:
                return fixed[name]
        return default

    m = pick("m", "size", default=128)
    k = pick("k", "size", default=128)
    n = pick("n", "size", default=128)

    lanes = pick("lanes")
    lane_gbps = pick("lane_gbps")
    if lanes is not None or lane_gbps is not None:
        if lanes is None:
            lanes = base.pcie.lanes
        if lane_gbps is None:
            lane_gbps = base.pcie.lane_gbps
        num, den = base.pcie.encoding
        bw = np.rint(lanes * lane_gbps * 1e9 / 8 * num / den)
    else:
        bw = f.bytes_per_sec

    mem_gbps = pick("mem_gbps")
    mem_bw = f.mem_bytes_per_sec if mem_gbps is None else mem_gbps * 1e9
    payload = pick("packet_size", default=f.max_payload)
    override = pick("compute_ticks", default=f.compute_override)

    fa = dataclasses.replace(
        f,
        bytes_per_sec=bw,
        mem_bytes_per_sec=mem_bw,
        max_payload=payload,
        compute_override=override,
    )
    compute, mem, serialize, latency, wire = _gemm_parts(
        m, k, n, fa, maximum=np.maximum, where=np.where
    )
    ticks = _compose(compute, mem, serialize + latency, fa, maximum=np.maximum)
    if calibration is not None:
        ticks = ticks * calibration.scale_for("gemm")
    busy = np.clip(serialize / ticks, 0.0, 1.0)  # ticks > 0: launch overhead

    shape = grid.shape
    return GridEstimates(
        names=names,
        values=tuple(tuple(values) for values in grid.axes.values()),
        ticks=np.broadcast_to(np.asarray(ticks, dtype=float), shape).copy(),
        bytes_on_wire=np.broadcast_to(
            np.asarray(wire, dtype=float), shape
        ).copy(),
        uplink_busy=np.broadcast_to(
            np.asarray(busy, dtype=float), shape
        ).copy(),
    )
