"""DMA descriptors.

A descriptor names one contiguous transfer between host memory (by
accelerator-visible virtual address) and the device.  Scatter-gather lists
are plain sequences of descriptors submitted to the same channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class DMADirection(enum.Enum):
    """Transfer direction from the device's point of view."""

    HOST_TO_DEVICE = "h2d"  # read from host memory
    DEVICE_TO_HOST = "d2h"  # write to host memory

    @property
    def is_read(self) -> bool:
        return self is DMADirection.HOST_TO_DEVICE


@dataclass
class DMADescriptor:
    """One contiguous DMA transfer.

    Parameters
    ----------
    addr:
        Host-side start address (virtual; translated by the SMMU en route).
    size:
        Transfer length in bytes.
    direction:
        :class:`DMADirection`.
    stream:
        Label for locality/stats analysis ("A", "B", "C", ...).
    packet_size:
        On-wire request size for this transfer; None uses the link default.
    """

    addr: int
    size: int
    direction: DMADirection
    stream: str = ""
    packet_size: Optional[int] = None
    #: Filled by the engine: completion tick.
    completed_at: Optional[int] = field(default=None, compare=False)
    #: Filled by the engine when the transfer aborts (completion timeout
    #: with retries exhausted, device lost); ``None`` means success.
    error: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"descriptor size must be positive, got {self.size}")
        if self.addr < 0:
            raise ValueError(f"descriptor address must be non-negative, got {self.addr}")
        if self.packet_size is not None and self.packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {self.packet_size}")

    @property
    def is_read(self) -> bool:
        return self.direction.is_read
