"""Multi-channel, tag-limited DMA engine.

The engine owns ``num_channels`` independent descriptor queues.  Each
descriptor is cut into request-sized transactions (``segment_bytes``, or
the descriptor's packet size if smaller requests were programmed); segments
from busy channels are issued round-robin while free tags remain -- the
tag pool models the PCIe non-posted credit limit and is what bounds the
bandwidth-delay product of the link.

The engine is transport-agnostic: it sends transactions to whatever
:class:`~repro.sim.ports.TargetPort` it was given (the PCIe fabric adapter
in host-memory modes, the device memory controller in DevMem mode).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.dma.descriptor import DMADescriptor
from repro.sim.eventq import Simulator
from repro.sim.ports import TargetPort
from repro.sim.simobject import SimObject
from repro.sim.transaction import MemCmd, Transaction

#: Called with the finished descriptor.
DescriptorDoneFn = Callable[[DMADescriptor], None]


class _Work:
    """One submitted descriptor's issue/retire state.

    ``channel`` is the owning channel's index, so the fully-issued retire
    path pops the right queue directly instead of scanning every channel
    for the entry.  ``size`` and ``is_read`` cache descriptor fields the
    per-segment loop would otherwise re-derive through attribute (and
    property) lookups.  ``template`` is a per-descriptor transaction
    carrying the fields every segment shares (command, source, stream,
    packet size); segments are stamped out of it with
    :meth:`~repro.sim.transaction.Transaction.clone_for_segment`, which
    skips constructor validation on the engine's hottest path.
    """

    __slots__ = (
        "descriptor", "channel", "size", "is_read", "template",
        "next_offset", "outstanding", "on_complete", "failed",
        "submit_tick", "retries",
    )

    def __init__(
        self,
        descriptor: DMADescriptor,
        channel: int,
        on_complete: Optional[DescriptorDoneFn],
        source: str,
    ) -> None:
        self.descriptor = descriptor
        self.channel = channel
        self.size = descriptor.size
        self.is_read = descriptor.is_read
        template = Transaction(
            MemCmd.READ if self.is_read else MemCmd.WRITE,
            descriptor.addr, descriptor.size, source=source,
        )
        template.stream = descriptor.stream
        template.packet_size = descriptor.packet_size
        self.template = template
        self.next_offset = 0
        self.outstanding = 0
        self.on_complete = on_complete
        self.failed = False
        self.submit_tick = 0
        self.retries = 0


class _SegmentState:
    """In-flight bookkeeping for one guarded segment (faulted runs only).

    ``settled`` latches on the first outcome (completion, or abort after
    the retry budget/limit) so a late original completion racing a retry
    -- or arriving after an abort -- can never double-retire the tag.
    """

    __slots__ = (
        "addr", "size", "attempts", "settled", "retrying", "timeout_event",
        "issued_at",
    )

    def __init__(self, addr: int, size: int, issued_at: int) -> None:
        self.addr = addr
        self.size = size
        self.attempts = 0
        self.settled = False
        self.retrying = False
        self.timeout_event = None
        self.issued_at = issued_at


class _ChannelState:
    """Per-channel queue of pending :class:`_Work`."""

    __slots__ = ("queue",)

    def __init__(self) -> None:
        self.queue: Deque[_Work] = deque()


class DMAEngine(SimObject):
    """Descriptor-driven mover between host memory and the device."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        target: TargetPort,
        num_channels: int = 4,
        max_outstanding: int = 32,
        segment_bytes: int = 4096,
    ) -> None:
        super().__init__(sim, name)
        if num_channels <= 0:
            raise ValueError(f"need at least one channel, got {num_channels}")
        if max_outstanding <= 0:
            raise ValueError(f"need at least one tag, got {max_outstanding}")
        if segment_bytes <= 0:
            raise ValueError(f"segment size must be positive, got {segment_bytes}")
        self.target = target
        self.num_channels = num_channels
        self.max_outstanding = max_outstanding
        self.segment_bytes = segment_bytes

        self._channels: List[_ChannelState] = [
            _ChannelState() for _ in range(num_channels)
        ]
        self._rr_next = 0
        self._tags_in_use = 0

        self._descriptors = self.stats.scalar("descriptors", "descriptors completed")
        self._segments = self.stats.scalar("segments", "request transactions issued")
        self._bytes_read = self.stats.scalar("bytes_read", "host-to-device bytes")
        self._bytes_written = self.stats.scalar("bytes_written", "device-to-host bytes")
        self._latency = self.stats.histogram("segment_ticks", "per-segment latency")

        # Fault machinery (repro.faults): completion timeouts with
        # exponential-backoff retry and endpoint stall/crash handling.
        # Everything stays None/untouched -- including the fault stats,
        # which would change snapshot shapes -- until a fault model calls
        # configure_faults(); the issue path checks a single attribute.
        self._fault_policy = None
        self._endpoint_fault = None
        self._channel_retries: List[int] = []
        self._timeouts = None
        self._retries = None
        self._aborted = None

        # Telemetry hook (repro.telemetry): a DmaTrace recording
        # descriptor lifecycle spans, or None when tracing is off --
        # same default-None discipline as the fault attributes above.
        self.trace = None

    def configure_faults(self, policy, endpoint_fault=None) -> None:
        """Arm completion timeouts (and optional endpoint stall/crash).

        ``policy`` is a :class:`repro.faults.spec.RetryPolicy`;
        ``endpoint_fault`` an
        :class:`~repro.faults.injector.EndpointFaultState` for this
        engine's endpoint.  Called once at system build; the armed state
        survives ``reset_state`` (it is configuration, not run state).
        """
        self._fault_policy = policy
        self._endpoint_fault = endpoint_fault
        self._channel_retries = [0] * self.num_channels
        self._timeouts = self.stats.scalar(
            "fault_timeouts", "segment completion timeouts"
        )
        self._retries = self.stats.scalar(
            "fault_retries", "segments reissued after a timeout"
        )
        self._aborted = self.stats.scalar(
            "fault_aborted_descriptors", "descriptors aborted"
        )

    def reset_state(self) -> None:
        super().reset_state()
        for channel in self._channels:
            channel.queue.clear()
        self._rr_next = 0
        self._tags_in_use = 0
        if self._fault_policy is not None:
            self._channel_retries = [0] * self.num_channels

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        descriptor: DMADescriptor,
        on_complete: Optional[DescriptorDoneFn] = None,
        channel: Optional[int] = None,
    ) -> None:
        """Queue a descriptor; ``on_complete(descriptor)`` fires when done.

        Without an explicit ``channel`` descriptors spread round-robin.
        """
        if channel is None:
            channel = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_channels
        elif not 0 <= channel < self.num_channels:
            raise ValueError(
                f"channel {channel} out of range 0..{self.num_channels - 1}"
            )
        work = _Work(descriptor, channel, on_complete, self.name)
        if self.trace is not None:
            work.submit_tick = self.sim.now
            self.trace.submit(descriptor.stream, descriptor.size, self.sim.now)
        self._channels[channel].queue.append(work)
        self._pump()

    def submit_list(
        self,
        descriptors: List[DMADescriptor],
        on_all_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Submit a scatter-gather list; callback after the last finishes."""
        remaining = {"n": len(descriptors)}
        if not descriptors:
            if on_all_complete is not None:
                on_all_complete()
            return

        def one_done(_descriptor: DMADescriptor) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0 and on_all_complete is not None:
                on_all_complete()

        for descriptor in descriptors:
            self.submit(descriptor, one_done)

    # ------------------------------------------------------------------
    # Issue loop
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Issue segments round-robin across channels while tags remain.

        The round-robin scan is inlined (rather than a `_next_work` call
        per issued segment): the pump runs after every submit and every
        segment completion, making it the DMA engine's hottest loop.
        """
        max_outstanding = self.max_outstanding
        channels = self._channels
        num_channels = self.num_channels
        while self._tags_in_use < max_outstanding:
            work = None
            index = self._rr_next
            for _step in range(num_channels):
                queue = channels[index].queue
                if queue:
                    head = queue[0]
                    if head.next_offset < head.size:
                        work = head
                        self._rr_next = index + 1 if index + 1 < num_channels else 0
                        break
                index = index + 1 if index + 1 < num_channels else 0
            if work is None:
                return
            self._issue_segment(work)

    def _issue_segment(self, work: _Work) -> None:
        descriptor = work.descriptor
        # Segment size is the read-request granularity (PCIe max read
        # request); the on-wire packet size rides on the transaction and
        # is applied by the link's TLP model.
        offset = work.next_offset
        total = work.size
        size = min(self.segment_bytes, total - offset)
        work.next_offset = offset + size
        work.outstanding += 1

        is_read = work.is_read
        txn = work.template.clone_for_segment(
            descriptor.addr + offset, size, self.sim.now
        )
        self._tags_in_use += 1
        # Batched stat update (equivalent to inc() per counter).
        self._segments.value += 1
        if is_read:
            self._bytes_read.value += size
        else:
            self._bytes_written.value += size
        self.stats.dirty = True

        if work.next_offset >= total:
            # Fully issued: retire from the owning channel's queue.  The
            # work being issued is by construction that queue's head.
            self._channels[work.channel].queue.popleft()

        if self._fault_policy is not None:
            self._send_guarded(work, txn, descriptor.addr + offset, size)
            return

        def segment_done(done_txn: Transaction) -> None:
            now = self.sim.now
            done_txn.complete_tick = now
            self._latency.sample(now - done_txn.issue_tick)
            self._tags_in_use -= 1
            work.outstanding -= 1
            if self.trace is not None:
                self.trace.segment(
                    done_txn.stream, done_txn.issue_tick, now, done_txn.size
                )
            if work.outstanding == 0 and work.next_offset >= total:
                descriptor.completed_at = now
                self._descriptors.inc()
                if self.trace is not None:
                    self.trace.descriptor(
                        descriptor.stream, work.submit_tick, now,
                        work.size, work.retries,
                    )
                if work.on_complete is not None:
                    work.on_complete(descriptor)
            self._pump()

        self.target.send(txn, segment_done)

    # ------------------------------------------------------------------
    # Guarded issue path (armed retry policy; see repro.faults)
    # ------------------------------------------------------------------
    def _send_guarded(self, work: _Work, txn: Transaction,
                      addr: int, size: int) -> None:
        """Issue one segment with a completion timeout armed.

        On expiry the segment is reissued with exponentially backed-off
        timeouts, up to the policy's retry limit and the per-channel
        outstanding-retry budget; past either bound the whole descriptor
        aborts: ``descriptor.error`` is set, remaining segments are
        never cut, and the completion callback still fires so callers
        observe the failure instead of hanging.  An endpoint in a
        stall/crash window silently drops arriving completions -- the
        timeout is then the only way forward, exactly as on real
        hardware.
        """
        policy = self._fault_policy
        endpoint = self._endpoint_fault
        channel = work.channel
        seg = _SegmentState(addr, size, self.sim.now)

        def retire(now: int) -> None:
            self._tags_in_use -= 1
            work.outstanding -= 1
            if work.outstanding == 0 and work.next_offset >= work.size:
                descriptor = work.descriptor
                descriptor.completed_at = now
                if not work.failed:
                    self._descriptors.inc()
                    if self.trace is not None:
                        self.trace.descriptor(
                            descriptor.stream, work.submit_tick, now,
                            work.size, work.retries,
                        )
                if work.on_complete is not None:
                    work.on_complete(descriptor)
            self._pump()

        def arrival(done_txn: Transaction) -> None:
            now = self.sim.now
            if seg.settled:
                # Late completion of a superseded attempt (the original
                # and a retry can both arrive) or of an aborted segment.
                return
            if endpoint is not None and endpoint.dropping(now):
                # The endpoint is stalled/crashed: the completion is
                # lost on the floor; the armed timeout takes it from here.
                return
            seg.settled = True
            if seg.timeout_event is not None:
                seg.timeout_event.cancel()
                seg.timeout_event = None
            if seg.retrying:
                self._channel_retries[channel] -= 1
            done_txn.complete_tick = now
            self._latency.sample(now - seg.issued_at)
            if self.trace is not None:
                self.trace.segment(
                    done_txn.stream, seg.issued_at, now, seg.size
                )
            retire(now)

        def abort() -> None:
            now = self.sim.now
            seg.settled = True
            if seg.retrying:
                self._channel_retries[channel] -= 1
            descriptor = work.descriptor
            if not work.failed:
                work.failed = True
                self._aborted.inc()
                if endpoint is not None and endpoint.crashed(now):
                    descriptor.error = (
                        f"device lost: segment {seg.addr:#x}+{seg.size} "
                        f"never completed ({seg.attempts + 1} attempt(s))"
                    )
                else:
                    descriptor.error = (
                        f"completion timeout: segment {seg.addr:#x}"
                        f"+{seg.size} after {seg.attempts + 1} attempt(s)"
                    )
                if work.next_offset < work.size:
                    # Still partially queued: by construction the head of
                    # its channel; drop it so no further segments are cut.
                    queue = self._channels[channel].queue
                    if queue and queue[0] is work:
                        queue.popleft()
                    work.next_offset = work.size
                if self.trace is not None:
                    self.trace.abort(descriptor.stream, now, descriptor.error)
            retire(now)

        def timeout_fired() -> None:
            seg.timeout_event = None
            if seg.settled:
                return
            self._timeouts.inc()
            can_retry = seg.attempts < policy.max_retries
            if can_retry and not seg.retrying:
                if self._channel_retries[channel] < policy.retry_budget:
                    seg.retrying = True
                    self._channel_retries[channel] += 1
                else:
                    can_retry = False
            if not can_retry:
                abort()
                return
            seg.attempts += 1
            self._retries.inc()
            if self.trace is not None:
                work.retries += 1
                self.trace.retry(
                    work.template.stream, self.sim.now, seg.attempts
                )
            retry_txn = work.template.clone_for_segment(
                seg.addr, seg.size, self.sim.now
            )
            arm()
            self.target.send(retry_txn, arrival)

        def arm() -> None:
            timeout = policy.completion_timeout * (
                policy.backoff ** seg.attempts
            )
            seg.timeout_event = self.sim.schedule(
                timeout, timeout_fired, name=self.name
            )

        arm()
        self.target.send(txn, arrival)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tags_in_use(self) -> int:
        return self._tags_in_use

    @property
    def idle(self) -> bool:
        return self._tags_in_use == 0 and all(
            not channel.queue for channel in self._channels
        )
