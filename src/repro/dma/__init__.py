"""Multi-channel DMA engine.

The accelerator controller of Fig. 1 contains a DMA block that moves data
between host memory and the accelerator without CPU involvement.  The model
provides scatter-gather descriptors (:mod:`repro.dma.descriptor`) and a
multi-channel, tag-limited engine (:mod:`repro.dma.engine`): descriptors
are split into read/write request transactions, channels share the PCIe
tag pool, and per-request packet sizes are programmable -- the knob the
paper's packet-size experiment (Fig. 4) sweeps.
"""

from repro.dma.descriptor import DMADescriptor, DMADirection
from repro.dma.engine import DMAEngine

__all__ = ["DMADescriptor", "DMADirection", "DMAEngine"]
