"""The compiled switch fabric: arbitrated links, routing, peer-to-peer.

:class:`SwitchedPCIeFabric` compiles a
:class:`~repro.topology.description.TopologyDesc` into simulated
hardware.  Every *wire* of the topology tree becomes a pair of
directional :class:`SwitchLink` segments:

* the **up** link of a node carries everything its subtree sends toward
  the root; its arbitration ports are the node's downstream ports, served
  **round-robin** -- this is the shared upstream link where endpoint
  scaling saturates,
* the **down** link of a node is the private wire its parent uses to
  reach it (FIFO).

Each segment is **store-and-forward**: a TLP train occupies the wire for
its serialization time (or the hop's per-TLP processing bound, whichever
is slower, with the oversized-packet buffer stall of the flat model) and
the head of the train is delayed by the receiving component's traversal
latency.  Hop costs are charged exactly once per store-and-forward
component: the root complex on the top wire, each switch tier on the
wire entering it.

Routing is address-based: endpoint BAR windows registered via
:meth:`SwitchedPCIeFabric.register_endpoint_window` form the routing
table.  A device-initiated transaction whose address lands in a *peer's*
window travels endpoint -> switch -> endpoint through the lowest common
ancestor switch without touching the root complex (peer-to-peer DMA);
everything else climbs to the root complex and the host memory system.

The single-endpoint, zero-tier degenerate case is handled by the classic
:class:`~repro.interconnect.pcie.fabric.PCIeFabric` (bit-identical to
the flat model, pinned by the golden tests); the system only compiles a
switched fabric when the topology actually has structure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.interconnect.pcie.fabric import require_host_target
from repro.interconnect.pcie.link import (
    PCIeConfig,
    tlp_params_for,
    train_timing,
)
from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.ports import CompletionFn, TargetPort, deliver_in_domain
from repro.sim.simobject import SimObject
from repro.sim.transaction import Transaction
from repro.topology.description import (
    EndpointDesc,
    NodeDesc,
    SwitchDesc,
    TopologyDesc,
)

#: A compiled route: ``(link, arbitration port, skip_hop, deliver_domain)``
#: segments in traversal order.  ``skip_hop`` marks a wire whose receiving
#: component's traversal was already charged on the previous segment
#: (the turn-around switch of a peer route): the wire still serializes,
#: but the hop latency/occupancy is not paid twice.  ``deliver_domain``
#: is the event domain the arrival callback must run in when it differs
#: from the link's own domain (``None`` otherwise -- always ``None``
#: until a domain plan is applied), so a TLP crossing a partition
#: boundary is posted into the peer domain's inbox with the hop latency
#: as lookahead.
Route = Tuple[Tuple["SwitchLink", int, bool, Optional[int]], ...]


@dataclass(frozen=True)
class DomainPlan:
    """A partition of a switched fabric into synchronized event domains.

    Domain 0 is the host side: root complex, every switch tier, drivers
    and the memory system.  Endpoint ``i`` -- its links, entry port, and
    accelerator subtree -- runs in ``endpoint_domain[i]`` (a contiguous
    block assignment over domains ``1..domains-1``).  ``quantum`` is the
    synchronization window: the minimum store-and-forward hop latency in
    the hierarchy, which lower-bounds every cross-domain delivery and is
    therefore the safe conservative lookahead.
    """

    domains: int
    endpoint_domain: Tuple[int, ...]
    quantum: int


def plan_domains(topology: TopologyDesc, config: PCIeConfig,
                 domains: int) -> DomainPlan:
    """Partition ``topology`` into ``domains`` synchronized event domains.

    Pure data in, pure data out (usable for CLI validation without
    building a system).  Raises ``ValueError`` naming the offending
    component when the partition would violate the lookahead rule --
    every cross-domain hop must cost at least one tick, else the quantum
    would be zero and conservative synchronization impossible.
    """
    endpoints = topology.num_endpoints
    if domains < 1:
        raise ValueError(f"need at least one domain, got {domains}")
    hops = [("root complex (pcie.rc_latency)", config.rc_latency)]
    count = 0

    def walk(node: NodeDesc) -> None:
        nonlocal count
        if isinstance(node, SwitchDesc):
            label = node.name or f"sw{count}"
            count += 1
            latency = (node.latency if node.latency is not None
                       else config.switch_latency)
            hops.append((f"switch {label!r}", latency))
            for child in node.children:
                walk(child)

    walk(topology.root)
    if domains == 1:
        return DomainPlan(1, (0,) * endpoints,
                          max(1, min(latency for _, latency in hops)))
    workers = domains - 1
    if workers > endpoints:
        raise ValueError(
            f"cannot split {endpoints} endpoint(s) across {workers} "
            f"endpoint domain(s); request at most {endpoints + 1} domains "
            f"(SystemConfig.effective_domains() clamps automatically)"
        )
    for label, latency in hops:
        if latency < 1:
            raise ValueError(
                f"domain partition needs every hop latency >= 1 tick of "
                f"lookahead, but {label} has latency {latency}; raise it "
                f"or run with domains=1"
            )
    quantum = min(latency for _, latency in hops)
    spread = tuple(1 + (i * workers) // endpoints for i in range(endpoints))
    return DomainPlan(domains, spread, quantum)


def plan_for_config(config) -> Optional[DomainPlan]:
    """Domain plan for a ``SystemConfig``-shaped object, or ``None``.

    ``None`` means the configuration runs on the classic single-queue
    simulator: one effective domain, or no switched topology to
    partition.  Duck-typed to avoid a ``core.config`` import cycle.
    """
    domains = config.effective_domains()
    if domains <= 1:
        return None
    return plan_domains(config.effective_topology(), config.pcie, domains)


class SwitchLink(SimObject):
    """One direction of a topology wire with round-robin arbitration.

    ``num_ports`` input queues feed a single wire.  A queued TLP train is
    *granted* the wire round-robin across non-empty ports; it then holds
    the wire for its occupancy (serialization, or the hop's per-TLP
    processing bound) and arrives ``hop_latency`` plus one TLP
    store-and-forward fill later.  Arrivals are FIFO (PCIe ordering: no
    overtaking within a virtual channel).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: PCIeConfig,
        num_ports: int = 1,
        hop_latency: int = 0,
        tlp_occupancy: int = 0,
    ) -> None:
        super().__init__(sim, name)
        if num_ports < 1:
            raise ValueError(f"{name}: need at least one port, got {num_ports}")
        self.config = config
        self.num_ports = num_ports
        self.hop_latency = hop_latency
        self.tlp_occupancy = tlp_occupancy
        self._queues: List[deque] = [deque() for _ in range(num_ports)]
        self._pending = 0
        self._rr_next = 0
        self._busy = False
        self._last_arrival = 0
        #: Fault-injection state (:class:`repro.faults.injector
        #: .LinkFaultState`); attached by the system's fault model, None
        #: on every fault-free run.
        self.faults = None
        #: Telemetry hook (:class:`repro.telemetry.tracer.LinkTrace`);
        #: attached by the telemetry runtime, None when tracing is off.
        self.trace = None

        self._tlps = self.stats.scalar("tlps", "TLPs carried")
        self._payload_bytes = self.stats.scalar("payload_bytes", "payload carried")
        self._wire_byte_stat = self.stats.scalar(
            "wire_bytes", "bytes on the wire incl. headers"
        )
        self._busy_ticks = self.stats.scalar("busy_ticks", "wire occupancy")
        self._grants = self.stats.scalar("grants", "TLP trains granted the wire")
        self._wait_ticks = self.stats.scalar(
            "arb_wait_ticks", "time trains waited for a grant"
        )

    def reset_state(self) -> None:
        super().reset_state()
        for queue in self._queues:
            queue.clear()
        self._pending = 0
        self._rr_next = 0
        self._busy = False
        self._last_arrival = 0
        if self.faults is not None:
            self.faults.reset()

    # ------------------------------------------------------------------
    # Submission and arbitration
    # ------------------------------------------------------------------
    def submit(
        self,
        port: int,
        txn: Transaction,
        payload_bytes: int,
        on_arrive: Callable[[Transaction], None],
        force_tlps: int = 0,
        skip_hop: bool = False,
        deliver_domain: Optional[int] = None,
    ) -> None:
        """Queue a TLP train on ``port``; ``on_arrive(txn)`` at the far end.

        ``skip_hop`` submits the train wire-only: the receiving
        component's latency/occupancy was already charged upstream (a
        peer route's turn-around switch traverses once, not twice).

        ``deliver_domain`` names the event domain the arrival must run
        in when the wire crosses a partition boundary (see
        :class:`DomainPlan`); ``None`` -- the only value on an
        unpartitioned system -- delivers in the submitting context.
        """
        if not 0 <= port < self.num_ports:
            raise ValueError(
                f"{self.name}: port {port} out of range 0..{self.num_ports - 1}"
            )
        self._queues[port].append(
            (txn, payload_bytes, on_arrive, force_tlps, skip_hop,
             deliver_domain, self.now)
        )
        self._pending += 1
        if not self._busy:
            self._grant()

    def _grant(self) -> None:
        """Put the next train (round-robin across ports) on the wire."""
        queues = self._queues
        index = self._rr_next
        for _step in range(self.num_ports):
            if queues[index]:
                break
            index = index + 1 if index + 1 < self.num_ports else 0
        else:  # pragma: no cover - guarded by _pending bookkeeping
            return
        self._rr_next = index + 1 if index + 1 < self.num_ports else 0
        (txn, payload_bytes, on_arrive, force_tlps, skip_hop,
         deliver_domain, queued_at) = queues[index].popleft()
        self._pending -= 1

        tlp = tlp_params_for(self.config, txn)
        n_tlps, wire_bytes, serialize, tlp_fill = train_timing(
            self.config, tlp, payload_bytes, force_tlps
        )
        tlp_occupancy = 0 if skip_hop else self.tlp_occupancy
        occupancy = max(serialize, n_tlps * tlp_occupancy)

        now = self.now
        if self.faults is not None:
            # The granted train holds the wire through any retrain stall:
            # folding the stall into the occupancy blocks queued trains
            # behind it exactly as a retraining link would.
            stall, occupancy = self.faults.adjust(
                now, occupancy, n_tlps, tlp_fill
            )
            occupancy += stall
        fill = (0 if skip_hop else self.hop_latency) + tlp_fill
        arrival = now + occupancy + fill
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival

        # Batched stat update (equivalent to inc() per counter).
        self._tlps.value += n_tlps
        self._payload_bytes.value += max(0, payload_bytes)
        self._wire_byte_stat.value += wire_bytes
        self._busy_ticks.value += occupancy
        self._grants.value += 1
        self._wait_ticks.value += now - queued_at
        self.stats.dirty = True

        if self.trace is not None:
            self.trace.tlp_train(now, occupancy, n_tlps, payload_bytes)

        self._busy = True
        sim = self.sim
        sim.schedule(occupancy, self._release, name=self.name)
        if deliver_domain is None:
            sim.schedule_at(arrival, lambda: on_arrive(txn), name=self.name)
        else:
            # The arrival belongs to the peer partition: enqueue it into
            # that domain's inbox.  `fill` includes the full hop latency
            # on every boundary wire (boundary segments never skip_hop),
            # so `arrival` is at least one quantum ahead -- the
            # conservative-lookahead contract barrier delivery relies on.
            deliver_in_domain(sim, deliver_domain, arrival,
                              lambda: on_arrive(txn), name=self.name)

    def _release(self) -> None:
        self._busy = False
        if self._pending:
            self._grant()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def utilization_window(self) -> float:
        """Busy fraction so far (saturation indicator for reports)."""
        return self._busy_ticks.value / self.now if self.now else 0.0


class _Node:
    """Compiled tree node: links plus parent/child bookkeeping."""

    __slots__ = (
        "desc", "parent", "port_in_parent", "children",
        "up_link", "down_link", "endpoint_index",
    )

    def __init__(self, desc: NodeDesc, parent: Optional["_Node"],
                 port_in_parent: int) -> None:
        self.desc = desc
        self.parent = parent
        self.port_in_parent = port_in_parent
        self.children: List[_Node] = []
        self.up_link: Optional[SwitchLink] = None
        self.down_link: Optional[SwitchLink] = None
        self.endpoint_index: Optional[int] = None


class _SwitchedEndpointPort(TargetPort):
    """Adapter: one endpoint's device-initiated traffic onto the fabric."""

    def __init__(self, sim: Simulator, name: str,
                 fabric: "SwitchedPCIeFabric", index: int) -> None:
        super().__init__(sim, name)
        self.fabric = fabric
        self.index = index

    def send(self, txn: Transaction, on_complete: CompletionFn) -> None:
        self.fabric.device_access(txn, on_complete, endpoint=self.index)


class SwitchedPCIeFabric(SimObject):
    """A multi-endpoint PCIe hierarchy compiled from a topology.

    Drop-in for :class:`~repro.interconnect.pcie.fabric.PCIeFabric` --
    same ``device_access`` / ``host_access`` / ``set_host_target``
    protocol, and ``.up`` / ``.down`` expose the root-complex link pair
    so stat collectors work unchanged -- plus per-endpoint entry ports
    and address-routed peer-to-peer transfers.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: PCIeConfig,
        topology: TopologyDesc,
        host_target: Optional[TargetPort] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.topology = topology
        self.host_target = host_target

        self._endpoints: List[_Node] = []
        self._windows: List[Tuple[AddrRange, int, Optional[TargetPort]]] = []
        #: Lowest registered window start: host-bound traffic (IOVAs,
        #: host physical addresses) sits far below the MMIO/devmem
        #: apertures, so the per-segment routing check exits O(1) on the
        #: overwhelmingly common miss.
        self._window_floor = 0
        self._switch_count = 0
        self._top = self._compile(topology.root, parent=None, port=0)
        if not self._endpoints:
            raise ValueError(f"{name}: topology has no endpoints")
        #: Device-side entry ports, one per endpoint (topology DFS order).
        self.endpoint_ports: List[_SwitchedEndpointPort] = [
            _SwitchedEndpointPort(
                sim, f"{name}.ep{i}.port", self, i
            )
            for i in range(len(self._endpoints))
        ]
        #: Raw ``(link, port, skip_hop)`` segments; the finalized routes
        #: below add each segment's delivery domain, recomputed whenever
        #: a domain plan is applied.
        self._up_routes_raw = [self._compile_up_route(node)
                               for node in self._endpoints]
        self._down_routes_raw = [self._compile_down_route(node)
                                 for node in self._endpoints]
        self._up_routes = [self._finalize_route(route)
                           for route in self._up_routes_raw]
        self._down_routes = [self._finalize_route(route)
                             for route in self._down_routes_raw]
        #: Peer routes are static after compile; built on first use per
        #: (src, dst) pair so the DMA hot path never re-walks the tree.
        self._peer_routes: dict = {}
        #: The active partition, if any (``apply_domain_plan``).
        self.domain_plan: Optional[DomainPlan] = None

        self._dev_reads = self.stats.scalar("device_reads", "device-initiated reads")
        self._dev_writes = self.stats.scalar("device_writes", "device-initiated writes")
        self._mmio_ops = self.stats.scalar("mmio_ops", "host-initiated accesses")
        self._p2p_ops = self.stats.scalar("p2p_ops", "peer-to-peer transfers")
        self._p2p_bytes = self.stats.scalar("p2p_bytes", "peer-to-peer payload bytes")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _hop_cost(self, node: Optional[_Node]) -> Tuple[int, int]:
        """(latency, per-TLP occupancy) of the component above a wire.

        ``None`` means the root complex; a switch node uses its
        description's overrides, falling back to the hierarchy config.
        """
        if node is None:
            return self.config.rc_latency, self.config.rc_tlp_occupancy
        desc = node.desc
        assert isinstance(desc, SwitchDesc)
        latency = (desc.latency if desc.latency is not None
                   else self.config.switch_latency)
        occupancy = (desc.tlp_occupancy if desc.tlp_occupancy is not None
                     else self.config.switch_tlp_occupancy)
        return latency, occupancy

    def _compile(self, desc: NodeDesc, parent: Optional[_Node],
                 port: int) -> _Node:
        node = _Node(desc, parent, port)
        if isinstance(desc, EndpointDesc):
            node.endpoint_index = len(self._endpoints)
            self._endpoints.append(node)
            label = desc.name or f"ep{node.endpoint_index}"
            fan_in = 1
        else:
            label = desc.name or f"sw{self._switch_count}"
            self._switch_count += 1
            fan_in = len(desc.children)
        # The top wire is the root-complex pair the stat collectors see
        # as ``<fabric>.up`` / ``<fabric>.down``.
        prefix = self.name if parent is None else f"{self.name}.{label}"
        upper_latency, upper_occupancy = self._hop_cost(parent)
        node.up_link = SwitchLink(
            self.sim, f"{prefix}.up", self.config,
            num_ports=fan_in,
            hop_latency=upper_latency, tlp_occupancy=upper_occupancy,
        )
        node.down_link = SwitchLink(
            self.sim, f"{prefix}.down", self.config,
            num_ports=1,
            hop_latency=upper_latency, tlp_occupancy=upper_occupancy,
        )
        if isinstance(desc, SwitchDesc):
            for child_port, child in enumerate(desc.children):
                node.children.append(self._compile(child, node, child_port))
        return node

    def _compile_up_route(self, endpoint: _Node) -> tuple:
        """Endpoint -> root complex, entering each up link at the port of
        the child the train came from."""
        segments: List[Tuple[SwitchLink, int, bool]] = [
            (endpoint.up_link, 0, False)
        ]
        node = endpoint
        while node.parent is not None:
            segments.append(
                (node.parent.up_link, node.port_in_parent, False)
            )
            node = node.parent
        return tuple(segments)

    def _compile_down_route(self, endpoint: _Node) -> tuple:
        """Root complex -> endpoint (private FIFO wires all the way)."""
        chain: List[_Node] = []
        node: Optional[_Node] = endpoint
        while node is not None:
            chain.append(node)
            node = node.parent
        return tuple((hop.down_link, 0, False) for hop in reversed(chain))

    def _finalize_route(self, segments: tuple) -> Route:
        """Annotate raw segments with their arrival's delivery domain.

        A segment's arrival runs the *next* segment's submit, so it must
        execute in the next link's domain (the route's last arrival runs
        the destination's completion: the link's own domain).  Only
        full-hop segments may carry a train across a partition boundary:
        their fill includes the whole hop latency, which is >= the
        quantum, satisfying the conservative-lookahead contract.  A
        ``skip_hop`` segment facing a boundary (the turn-around wire of
        a deep peer route) delivers locally instead -- execution drifts
        into the submitting domain for the rest of that chain, which is
        harmless under the globally-ordered lockstep engine.
        """
        count = len(segments)
        out = []
        for i, (link, port, skip_hop) in enumerate(segments):
            owner = (segments[i + 1][0].domain if i + 1 < count
                     else link.domain)
            deliver = (owner if owner != link.domain and not skip_hop
                       else None)
            out.append((link, port, skip_hop, deliver))
        return tuple(out)

    def _peer_route(self, src: int, dst: int) -> Route:
        """src endpoint -> dst endpoint through their lowest common
        ancestor switch, never touching the root complex.

        Routes are static after compile, so they are memoized per
        (src, dst) pair -- the DMA hot path submits one per segment.
        """
        route = self._peer_routes.get((src, dst))
        if route is not None:
            return route
        up = self._up_routes_raw[src]
        down = self._down_routes_raw[dst]
        # Down routes start at the top; find the deepest shared node by
        # trimming the common prefix of the two root paths.
        src_chain = self._root_chain(self._endpoints[src])
        dst_chain = self._root_chain(self._endpoints[dst])
        common = 0
        while (common < len(src_chain) and common < len(dst_chain)
               and src_chain[common] is dst_chain[common]):
            common += 1
        # Climb from src into the common ancestor (its up_link segment is
        # the one whose receiving component *is* the ancestor), then
        # descend the dst-side wires below it.  The first down wire's hop
        # cost *is* the ancestor's traversal, already paid on ingress --
        # the turn-around switch forwards once, so that segment goes out
        # wire-only (skip_hop).
        up_hops = len(src_chain) - common
        down_hops = len(dst_chain) - common
        descent = down[len(down) - down_hops:]
        first_link, first_port, _charge = descent[0]
        route = self._finalize_route(
            tuple(up[:up_hops])
            + ((first_link, first_port, True),)
            + tuple(descent[1:])
        )
        self._peer_routes[(src, dst)] = route
        return route

    @staticmethod
    def _root_chain(endpoint: _Node) -> List[_Node]:
        chain: List[_Node] = []
        node: Optional[_Node] = endpoint
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Domain partitioning
    # ------------------------------------------------------------------
    def apply_domain_plan(self, plan: DomainPlan) -> None:
        """Pin each endpoint's link pair and entry port to its domain.

        Switch-tier links (and the root-complex pair) stay in domain 0
        with the host; the compiled routes are re-finalized so every
        boundary-crossing segment knows its delivery domain.  The system
        assigns the accelerator subtree behind each endpoint to the same
        domain by name prefix.
        """
        if len(plan.endpoint_domain) != len(self._endpoints):
            raise ValueError(
                f"{self.name}: plan covers {len(plan.endpoint_domain)} "
                f"endpoint(s), fabric has {len(self._endpoints)}"
            )
        for index, node in enumerate(self._endpoints):
            dom = plan.endpoint_domain[index]
            node.up_link.domain = dom
            node.down_link.domain = dom
            self.endpoint_ports[index].domain = dom
        self.domain_plan = plan
        self._up_routes = [self._finalize_route(route)
                           for route in self._up_routes_raw]
        self._down_routes = [self._finalize_route(route)
                             for route in self._down_routes_raw]
        self._peer_routes.clear()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_host_target(self, target: TargetPort) -> None:
        self.host_target = target

    def _resolved_host_target(self) -> TargetPort:
        return require_host_target(self.name, self.host_target)

    def register_endpoint_window(
        self,
        index: int,
        window: AddrRange,
        target: Optional[TargetPort] = None,
    ) -> None:
        """Add an address window owned by endpoint ``index``.

        ``target`` is where transactions routed *to* the window are
        delivered (peer-to-peer DMA and host MMIO); routing-only windows
        (e.g. a device-memory aperture used for path selection) may omit
        it.
        """
        if not 0 <= index < len(self._endpoints):
            raise ValueError(
                f"{self.name}: endpoint {index} out of range "
                f"0..{len(self._endpoints) - 1}"
            )
        for existing, _owner, _t in self._windows:
            if existing.overlaps(window):
                raise ValueError(
                    f"{self.name}: window {window} overlaps {existing}"
                )
        self._windows.append((window, index, target))
        if len(self._windows) == 1 or window.start < self._window_floor:
            self._window_floor = window.start

    def endpoint_port(self, index: int) -> TargetPort:
        """The device-side entry port of endpoint ``index``."""
        return self.endpoint_ports[index]

    def _window_for(self, addr: int):
        if addr < self._window_floor or not self._windows:
            return None
        for window, owner, target in self._windows:
            if window.contains(addr):
                return window, owner, target
        return None

    # ------------------------------------------------------------------
    # Route traversal
    # ------------------------------------------------------------------
    def _send_route(
        self,
        route: Route,
        txn: Transaction,
        payload_bytes: int,
        on_done: Callable[[Transaction], None],
        force_tlps: int = 0,
    ) -> None:
        if not route:
            on_done(txn)
            return

        def step(index: int) -> None:
            link, port, skip_hop, deliver = route[index]
            nxt = index + 1
            if nxt == len(route):
                link.submit(port, txn, payload_bytes, on_done, force_tlps,
                            skip_hop, deliver)
            else:
                link.submit(
                    port, txn, payload_bytes,
                    lambda _t: step(nxt), force_tlps, skip_hop, deliver,
                )

        step(0)

    def _request_tlps(self, txn: Transaction) -> int:
        packet = txn.packet_size or self.config.tlp.max_payload
        return txn.num_packets(packet)

    # ------------------------------------------------------------------
    # Device-initiated traffic
    # ------------------------------------------------------------------
    def device_access(
        self, txn: Transaction, on_complete: CompletionFn, endpoint: int = 0
    ) -> None:
        """Dispatch a device-initiated transaction from ``endpoint``.

        Peer windows route endpoint -> switch -> endpoint; everything
        else crosses the root complex into the host memory system.
        """
        hit = self._window_for(txn.addr)
        if hit is not None:
            if hit[1] != endpoint:
                self._peer_access(txn, on_complete, endpoint, hit)
                return
            # A loopback would otherwise continue into the host path and
            # surface as an SMMU fault on a BAR address -- far from the
            # actual mistake.
            raise RuntimeError(
                f"{self.name}: endpoint {endpoint} addressed its own "
                f"window {hit[0]} ({txn.addr:#x}); device-local loopback "
                f"is not modeled -- target a peer window or host memory"
            )
        host = self._resolved_host_target()
        if txn.is_read:
            self._dev_reads.inc()

            def request_arrived(_txn: Transaction) -> None:
                host.send(txn, host_done)

            def host_done(_txn: Transaction) -> None:
                self._send_route(
                    self._down_routes[endpoint], txn, txn.size, on_complete
                )

            self._send_route(
                self._up_routes[endpoint], txn, 0, request_arrived,
                force_tlps=self._request_tlps(txn),
            )
        else:
            self._dev_writes.inc()

            def payload_arrived(_txn: Transaction) -> None:
                host.send(txn, on_complete)

            self._send_route(
                self._up_routes[endpoint], txn, txn.size, payload_arrived
            )

    def _peer_access(
        self, txn: Transaction, on_complete: CompletionFn,
        endpoint: int, hit,
    ) -> None:
        window, owner, target = hit
        if target is None:
            raise RuntimeError(
                f"{self.name}: window {window} of endpoint {owner} has no "
                f"delivery target; register_endpoint_window(..., target=...) "
                f"is required for peer-to-peer destinations"
            )
        self._p2p_ops.inc()
        self._p2p_bytes.inc(txn.size)
        route = self._peer_route(endpoint, owner)
        if txn.is_read:
            def request_arrived(_txn: Transaction) -> None:
                target.send(txn, peer_done)

            def peer_done(_txn: Transaction) -> None:
                self._send_route(
                    self._peer_route(owner, endpoint), txn, txn.size,
                    on_complete,
                )

            self._send_route(
                route, txn, 0, request_arrived,
                force_tlps=self._request_tlps(txn),
            )
        else:
            def payload_arrived(_txn: Transaction) -> None:
                target.send(txn, on_complete)

            self._send_route(route, txn, txn.size, payload_arrived)

    # ------------------------------------------------------------------
    # Host-initiated MMIO / device-memory access
    # ------------------------------------------------------------------
    def host_access(
        self, txn: Transaction, device_target: TargetPort,
        on_complete: CompletionFn,
    ) -> None:
        """CPU access to a device window; routed by address, endpoint 0
        when the address is not in any registered window."""
        self._mmio_ops.inc()
        hit = self._window_for(txn.addr)
        endpoint = hit[1] if hit is not None else 0
        if txn.is_read:

            def request_arrived(_txn: Transaction) -> None:
                device_target.send(txn, device_done)

            def device_done(_txn: Transaction) -> None:
                self._send_route(
                    self._up_routes[endpoint], txn, txn.size, on_complete
                )

            self._send_route(
                self._down_routes[endpoint], txn, 0, request_arrived
            )
        else:

            def payload_arrived(_txn: Transaction) -> None:
                device_target.send(txn, on_complete)

            self._send_route(
                self._down_routes[endpoint], txn, txn.size, payload_arrived
            )

    # ------------------------------------------------------------------
    # Stat-collector compatibility and reporting
    # ------------------------------------------------------------------
    @property
    def up(self) -> SwitchLink:
        """The shared link into the root complex (all host-bound traffic)."""
        return self._top.up_link

    @property
    def down(self) -> SwitchLink:
        """The root complex's link down into the topology."""
        return self._top.down_link

    @property
    def num_endpoints(self) -> int:
        return len(self._endpoints)

    def links(self) -> List[SwitchLink]:
        """Every compiled link segment (stable DFS order)."""
        out: List[SwitchLink] = []

        def walk(node: _Node) -> None:
            out.append(node.up_link)
            out.append(node.down_link)
            for child in node.children:
                walk(child)

        walk(self._top)
        return out

    def describe(self) -> str:
        return f"{self.config.describe()}, {self.topology.describe()}"
