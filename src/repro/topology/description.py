"""Declarative PCIe topology descriptions.

A topology names the shape of the interconnect tree of Fig. 1 when more
than one endpoint shares it: the root complex at the top, one or more
tiers of N-port switches below it, and accelerator endpoints at the
leaves.  Descriptions are frozen dataclasses of tuples and scalars, so
they canonicalize through :func:`repro.core.config.canonical_value` and
participate in ``SystemConfig.stable_hash()`` -- the sweep result cache
distinguishes otherwise-identical systems by topology for free.

The description layer is pure data: no simulator objects, no timing.
:func:`repro.topology.fabric.SwitchedPCIeFabric` *compiles* a
description into arbitrated link segments and routing tables.

Builders cover the common shapes::

    flat_topology(4)          # one switch, four endpoints
    tiered_topology(4, 2)     # a chain of two switch tiers above them
    balanced_tree(8, fanout=4)  # 8 endpoints, 4-port switches

Nesting by hand is just data::

    TopologyDesc(root=SwitchDesc(children=(
        EndpointDesc(name="cam0"),
        SwitchDesc(children=(EndpointDesc(), EndpointDesc())),
    )))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union


@dataclass(frozen=True)
class EndpointDesc:
    """One accelerator endpoint slot (a leaf of the topology tree)."""

    name: str = ""


@dataclass(frozen=True)
class SwitchDesc:
    """An N-port switch; children are endpoints or further switches.

    ``latency``/``tlp_occupancy`` override the hierarchy-wide values of
    :class:`~repro.interconnect.pcie.link.PCIeConfig` (``switch_latency``
    / ``switch_tlp_occupancy``) for this switch only, in ticks; ``None``
    inherits.
    """

    children: Tuple[Union["SwitchDesc", EndpointDesc], ...] = field(
        default_factory=tuple
    )
    latency: int | None = None
    tlp_occupancy: int | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("a switch needs at least one downstream port")
        for child in self.children:
            if not isinstance(child, (SwitchDesc, EndpointDesc)):
                raise TypeError(
                    f"switch children must be SwitchDesc or EndpointDesc, "
                    f"got {type(child).__name__}"
                )


#: A topology tree node.
NodeDesc = Union[SwitchDesc, EndpointDesc]


@dataclass(frozen=True)
class TopologyDesc:
    """A full interconnect tree: ``root`` attaches to the root complex."""

    root: NodeDesc = field(default_factory=EndpointDesc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def endpoints(self) -> List[EndpointDesc]:
        """Every endpoint in deterministic depth-first order.

        The position in this list is the endpoint's *index*: the system
        binds accelerator ``i`` to ``endpoints()[i]``.
        """
        return list(_walk_endpoints(self.root))

    @property
    def num_endpoints(self) -> int:
        return sum(1 for _ in _walk_endpoints(self.root))

    @property
    def num_switches(self) -> int:
        return sum(1 for node in _walk_nodes(self.root)
                   if isinstance(node, SwitchDesc))

    @property
    def depth(self) -> int:
        """Number of switch tiers on the deepest endpoint's path."""
        return _depth(self.root)

    def endpoint_depths(self) -> Tuple[int, ...]:
        """Switch hops between each endpoint and the root complex.

        Entry ``i`` corresponds to ``endpoints()[i]``.  An endpoint
        attached directly to the root complex has depth 0.  This is the
        fabric-description introspection the analytical surrogate tier
        uses to price per-hop latency without compiling the fabric.
        """
        return tuple(_endpoint_depths(self.root, 0))

    def describe(self) -> str:
        return (
            f"topology: {self.num_endpoints} endpoint(s), "
            f"{self.num_switches} switch(es), depth {self.depth}"
        )


def _walk_nodes(node: NodeDesc) -> Iterator[NodeDesc]:
    yield node
    if isinstance(node, SwitchDesc):
        for child in node.children:
            yield from _walk_nodes(child)


def _walk_endpoints(node: NodeDesc) -> Iterator[EndpointDesc]:
    for item in _walk_nodes(node):
        if isinstance(item, EndpointDesc):
            yield item


def _depth(node: NodeDesc) -> int:
    if isinstance(node, EndpointDesc):
        return 0
    return 1 + max(_depth(child) for child in node.children)


def _endpoint_depths(node: NodeDesc, depth: int) -> Iterator[int]:
    if isinstance(node, EndpointDesc):
        yield depth
    else:
        for child in node.children:
            yield from _endpoint_depths(child, depth + 1)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def flat_topology(num_endpoints: int) -> TopologyDesc:
    """One switch with ``num_endpoints`` endpoints behind it.

    This is the default multi-accelerator shape: every device contends
    for the switch's single upstream link to the root complex.
    """
    if num_endpoints < 1:
        raise ValueError(f"need at least one endpoint, got {num_endpoints}")
    return TopologyDesc(
        root=SwitchDesc(
            children=tuple(EndpointDesc() for _ in range(num_endpoints))
        )
    )


def tiered_topology(num_endpoints: int, depth: int) -> TopologyDesc:
    """``depth`` chained switch tiers with all endpoints below the last.

    Each extra tier adds one store-and-forward switch hop to every
    path -- the knob behind the ``topo-switch-depth`` experiment.
    """
    if num_endpoints < 1:
        raise ValueError(f"need at least one endpoint, got {num_endpoints}")
    if depth < 1:
        raise ValueError(f"need at least one switch tier, got {depth}")
    node: NodeDesc = SwitchDesc(
        children=tuple(EndpointDesc() for _ in range(num_endpoints))
    )
    for _tier in range(depth - 1):
        node = SwitchDesc(children=(node,))
    return TopologyDesc(root=node)


def balanced_tree(num_endpoints: int, fanout: int = 4) -> TopologyDesc:
    """A tree of ``fanout``-port switches over ``num_endpoints`` leaves."""
    if num_endpoints < 1:
        raise ValueError(f"need at least one endpoint, got {num_endpoints}")
    if fanout < 2:
        raise ValueError(f"fanout must be at least 2, got {fanout}")
    level: List[NodeDesc] = [EndpointDesc() for _ in range(num_endpoints)]
    while len(level) > 1:
        level = [
            SwitchDesc(children=tuple(level[i:i + fanout]))
            for i in range(0, len(level), fanout)
        ]
    root = level[0]
    if isinstance(root, EndpointDesc):
        root = SwitchDesc(children=(root,))
    return TopologyDesc(root=root)
