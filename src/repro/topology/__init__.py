"""Multi-accelerator interconnect topologies.

Declarative descriptions (:mod:`repro.topology.description`) compile
into a simulated switch fabric (:mod:`repro.topology.fabric`): shared
upstream links with round-robin arbitration, store-and-forward TLP
occupancy per tier, address-based routing, and peer-to-peer transfers
that never touch the root complex.  See docs/TOPOLOGY.md.
"""

from repro.topology.description import (
    EndpointDesc,
    NodeDesc,
    SwitchDesc,
    TopologyDesc,
    balanced_tree,
    flat_topology,
    tiered_topology,
)
from repro.topology.fabric import SwitchedPCIeFabric, SwitchLink

__all__ = [
    "EndpointDesc",
    "NodeDesc",
    "SwitchDesc",
    "TopologyDesc",
    "balanced_tree",
    "flat_topology",
    "tiered_topology",
    "SwitchedPCIeFabric",
    "SwitchLink",
]
