"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this machine lacks ``wheel``,
so the PEP 660 editable build cannot run; this shim enables the legacy
``setup.py develop`` path (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
