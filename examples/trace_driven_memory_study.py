#!/usr/bin/env python3
"""Trace-driven memory study: capture once, replay everywhere.

Wraps the accelerator's DMA path of a live system with a tracing monitor
(gem5's CommMonitor pattern), captures the full request stream of a GEMM,
saves it to disk, and then replays the identical stream against every
Table III memory technology -- comparing memory systems without
re-simulating the accelerator.

Run:  python examples/trace_driven_memory_study.py
"""

import tempfile

from repro import SystemConfig, format_table
from repro.core.system import AcceSysSystem
from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController
from repro.memory.dram.devices import MEMORY_PRESETS
from repro.sim.eventq import Simulator
from repro.sim.trace import Trace, TraceReplayer, TracingPort
from repro.sim.ticks import ticks_to_seconds
from repro.workloads import GemmWorkload

SIZE = 128


def capture_trace() -> Trace:
    """Run one GEMM with a monitor on the DMA path; return its trace."""
    system = AcceSysSystem(SystemConfig.devmem_system())
    monitor = TracingPort(system.sim, "monitor", system.wrapper.dma.target)
    system.wrapper.dma.target = monitor

    workload = GemmWorkload(SIZE, SIZE, SIZE)
    a = system.alloc_buffer("A", workload.a_bytes)
    b = system.alloc_buffer("B", workload.b_bytes)
    c = system.alloc_buffer("C", workload.c_bytes)
    done = []
    system.driver.launch_gemm(SIZE, SIZE, SIZE, a, b, c,
                              lambda j, s: done.append(True))
    system.run()
    assert done
    return monitor.trace


def main() -> None:
    print(f"Capturing DMA trace of a {SIZE}x{SIZE} GEMM (DevMem system)...")
    trace = capture_trace()
    print(f"  {len(trace)} requests, {trace.total_bytes / 1e6:.2f} MB, "
          f"{trace.duration_ticks / 1e6:.1f} us of activity")

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
        path = tmp.name
    trace.save(path)
    reloaded = Trace.load(path)
    print(f"  saved + reloaded from {path} ({len(reloaded)} records)\n")

    # Rebase addresses to zero for standalone memory models.
    base = min(record.addr for record in reloaded)
    from repro.sim.trace import TraceRecord

    rebased = Trace([
        TraceRecord(r.tick, r.cmd, r.addr - base, r.size, r.source, r.stream)
        for r in reloaded
    ])

    rows = []
    for name, preset in MEMORY_PRESETS.items():
        sim = Simulator()
        ctrl = DRAMController(sim, "mem", preset, AddrRange(0, 1 << 30))
        replayer = TraceReplayer(sim, "rp", rebased, ctrl, window=16)
        done = []
        replayer.run(lambda t: done.append(t))
        sim.run()
        elapsed = ticks_to_seconds(done[0])
        rows.append(
            (
                name,
                f"{elapsed * 1e6:.1f}",
                f"{rebased.total_bytes / elapsed / 1e9:.1f}",
                f"{100 * ctrl.row_hit_rate:.1f}%",
                f"{ctrl.energy_report(done[0]).energy_per_bit_pj(rebased.total_bytes):.1f}",
            )
        )
    print(format_table(
        ["memory", "replay us", "GB/s", "row hits", "pJ/bit"],
        rows,
        title="identical request stream replayed against each technology",
    ))


if __name__ == "__main__":
    main()
