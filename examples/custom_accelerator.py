#!/usr/bin/env python3
"""Extending the framework: custom accelerators and dataflow ablations.

Shows the lower-level API a framework user would reach for:

1. a custom systolic-array geometry (32x32, wide ingest) swapped into the
   standard system;
2. the A-panel reuse ablation: MatrixFlow's streaming dataflow refetches
   the A panel for every output tile (this is what the paper's Table IV
   translation counts imply); enabling reuse shows what a small dataflow
   change buys;
3. driving the accelerator by hand -- config-space probe, buffer pinning,
   register writes, doorbell -- without the run_gemm convenience wrapper.

Run:  python examples/custom_accelerator.py
"""

from repro import AcceSysSystem, SystemConfig, format_table
from repro.accel.systolic import SystolicParams
from repro.core.runner import run_gemm

SIZE = 128


def custom_geometry() -> None:
    print("=" * 60)
    print("Custom systolic geometries")
    print("=" * 60)
    rows = []
    for rows_cols, ingest in ((16, 1), (16, 4), (32, 4), (32, 16)):
        params = SystolicParams(rows=rows_cols, cols=rows_cols,
                                ingest_elems=ingest)
        config = SystemConfig.pcie_8gb(systolic=params)
        result = run_gemm(config, SIZE, SIZE, SIZE)
        rows.append(
            (
                f"{rows_cols}x{rows_cols}",
                ingest,
                f"{params.ingest_bytes_per_sec / 1e9:.0f}",
                f"{result.seconds * 1e6:.1f}",
            )
        )
    print(format_table(
        ["array", "ingest elem/cyc", "demand GB/s", "exec us"], rows
    ))
    print()


def reuse_ablation() -> None:
    print("=" * 60)
    print("A-panel reuse ablation (dataflow design choice)")
    print("=" * 60)
    rows = []
    for reuse in (False, True):
        config = SystemConfig.pcie_2gb(reuse_a_panels=reuse)
        result = run_gemm(config, SIZE, SIZE, SIZE)
        rows.append(
            (
                "reuse A panels" if reuse else "stream everything",
                f"{result.traffic_bytes / 1e6:.2f}",
                f"{result.seconds * 1e6:.1f}",
            )
        )
    print(format_table(["dataflow", "traffic MB", "exec us"], rows))
    print()


def bare_metal_launch() -> None:
    print("=" * 60)
    print("Driving the device by hand (driver-level API)")
    print("=" * 60)
    system = AcceSysSystem(SystemConfig.table2_baseline())
    driver = system.driver

    function = system.config_space.function(driver.slot)
    print(f"Probed device {function.vendor_id:#06x}:{function.device_id:#06x}")
    print(f"  BAR0 (registers): {driver.bar0}")

    a = driver.pin_buffer("A", 128 * 128 * 4)
    b = driver.pin_buffer("B", 128 * 128 * 4)
    c = driver.pin_buffer("C", 128 * 128 * 4)
    print(f"  Pinned A at IOVA {a:#x} -> phys {driver.buffer_paddr('A'):#x}")

    finished = {}
    driver.launch_gemm(
        128, 128, 128, a, b, c,
        lambda job, stats: finished.update(stats),
    )
    system.run()
    print(f"  Job finished at t={system.now / 1e6:.1f} us; "
          f"{finished['tiles']:.0f} tiles, "
          f"{finished['bytes_read'] / 1e6:.1f} MB streamed")
    print(f"  MMIO register writes issued: "
          f"{int(driver.stats['mmio_writes'].value)}")
    print(f"  uTLB hit rate: {system.smmu.utlb.hit_rate:.3f}")


if __name__ == "__main__":
    custom_geometry()
    reuse_ablation()
    bare_metal_launch()
