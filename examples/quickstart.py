#!/usr/bin/env python3
"""Quickstart: run one GEMM on the accelerator and verify the result.

Builds the Table II baseline system (ARM-class CPU, DDR3-1600 host
memory, Gen-2-style PCIe x4, SMMU, MatrixFlow-style 16x16 systolic
accelerator), runs a 128x128x128 integer GEMM through the kernel-driver
model, checks the functional result against numpy, and prints the key
timing statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SystemConfig, run_gemm
from repro.workloads import GemmWorkload


def main() -> None:
    size = 128
    config = SystemConfig.table2_baseline()
    print(f"System: {config.name}")
    print(f"  PCIe: {config.pcie.describe()}")
    print(f"  Host memory: {config.host_mem.describe()}")
    print(f"  Access mode: {config.access_mode.value}")
    print()

    print(f"Running {size}x{size}x{size} int32 GEMM (functional check on)...")
    result = run_gemm(config, size, size, size, functional=True, seed=42)

    workload = GemmWorkload(size, size, size, seed=42)
    a, b = workload.generate()
    expected = workload.reference(a, b)
    np.testing.assert_array_equal(result.c_matrix, expected)
    print("Functional check: PASSED (matches numpy int32 reference)")
    print()

    print(f"Execution time:      {result.seconds * 1e6:10.1f} us")
    print(f"DMA traffic:         {result.traffic_bytes / 1e6:10.2f} MB")
    print(
        f"Delivered bandwidth: "
        f"{result.delivered_bytes_per_sec / 1e9:10.2f} GB/s "
        f"(link: {config.pcie.effective_bytes_per_sec / 1e9:.1f} GB/s)"
    )
    if result.table4:
        print()
        print("Address translation (Table IV metrics):")
        for key, value in result.table4.items():
            if isinstance(value, float):
                print(f"  {key:28s} {value:12.2f}")
            else:
                print(f"  {key:28s} {value:12d}")


if __name__ == "__main__":
    main()
