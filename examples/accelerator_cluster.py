#!/usr/bin/env python3
"""Accelerator clusters: multiple endpoints sharing the PCIe hierarchy.

The paper's Fig. 1 shows a "single accelerator or accelerator cluster"
behind the PCIe switch.  This example enumerates a cluster of identical
MatrixFlow-style accelerators, launches concurrent GEMMs on all of them,
and shows how the shared link divides bandwidth -- then repeats the run
on a fat link where the array, not the interconnect, limits each member.

Run:  python examples/accelerator_cluster.py
"""

from repro import SystemConfig, format_table
from repro.core.system import AcceSysSystem
from repro.workloads import GemmWorkload

SIZE = 128


def run_cluster(config, n) -> float:
    """Run one GEMM per accelerator concurrently; return makespan (s)."""
    system = AcceSysSystem(config.with_(num_accelerators=n))
    done = []
    for driver in system.drivers:
        workload = GemmWorkload(SIZE, SIZE, SIZE)
        prefix = driver.name
        a = driver.pin_buffer(f"{prefix}.A", workload.a_bytes)
        b = driver.pin_buffer(f"{prefix}.B", workload.b_bytes)
        c = driver.pin_buffer(f"{prefix}.C", workload.c_bytes)
        driver.launch_gemm(
            SIZE, SIZE, SIZE, a, b, c,
            lambda job, stats: done.append(system.now),
        )
    system.run()
    assert len(done) == n
    return max(done) / 1e12


def main() -> None:
    print("Cluster scaling: one GEMM per accelerator, all concurrent")
    print(f"(matrix {SIZE}x{SIZE}, makespan = slowest member)\n")
    for label, config in (
        ("PCIe-2GB (link-bound)", SystemConfig.pcie_2gb()),
        ("PCIe-64GB (array-bound)", SystemConfig.pcie_64gb()),
    ):
        rows = []
        solo = None
        for n in (1, 2, 4):
            makespan = run_cluster(config, n)
            if solo is None:
                solo = makespan
            rows.append(
                (
                    n,
                    f"{makespan * 1e6:.1f}",
                    f"{makespan / solo:.2f}x",
                    f"{n * solo / makespan:.2f}",
                )
            )
        print(format_table(
            ["accelerators", "makespan us", "vs solo", "throughput gain"],
            rows,
            title=label,
        ))
        print()
    print("On the slow link the members split the bandwidth (makespan")
    print("roughly doubles per doubling); on the fat link each member is")
    print("limited by its own systolic array, so the cluster scales.")


if __name__ == "__main__":
    main()
