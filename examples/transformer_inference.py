#!/usr/bin/env python3
"""Transformer inference across the paper's four system configurations.

Runs ViT inference (reduced hidden dimension for speed; pass --full for
paper-scale) on PCIe-2GB, PCIe-8GB, PCIe-64GB and DevMem systems, then:

* compares total inference time (Fig. 7 style),
* splits time into GEMM and non-GEMM (Fig. 8 style),
* calibrates the analytical trade-off model and reports the GEMM-fraction
  thresholds where DevMem starts to pay off (Fig. 9 style).

Run:  python examples/transformer_inference.py [--full]
"""

import sys

from repro import (
    SystemConfig,
    TradeoffModel,
    format_table,
    nongemm_time_threshold,
    run_vit,
)

MODEL = "base"


def main(dim_scale: float) -> None:
    systems = SystemConfig.paper_systems()
    results = {}
    print(f"Running ViT-{MODEL} (dim scale {dim_scale:g}) on 4 systems...")
    for name, config in systems.items():
        results[name] = run_vit(config, MODEL, dim_scale=dim_scale)
        print(f"  {name:10s} done: {results[name].seconds * 1e3:.2f} ms")
    print()

    baseline = results["PCIe-2GB"].total_ticks
    rows = [
        (
            name,
            f"{r.seconds * 1e3:.2f}",
            f"{baseline / r.total_ticks:.2f}x",
            f"{r.gemm_ticks / 1e9:.2f}",
            f"{r.nongemm_ticks / 1e9:.2f}",
            f"{100 * r.nongemm_fraction:.1f}%",
        )
        for name, r in results.items()
    ]
    print(
        format_table(
            ["system", "total ms", "speedup", "GEMM ms", "non-GEMM ms",
             "non-GEMM %"],
            rows,
            title="ViT inference (Fig. 7 / Fig. 8 style)",
        )
    )
    print()

    devmem_model = TradeoffModel.from_measured(
        "DevMem",
        results["DevMem"].gemm_ticks,
        results["DevMem"].nongemm_ticks,
    )
    print("DevMem-vs-PCIe thresholds (Fig. 9 style; paper: 34.31% / "
          "10.16% / 4.27%):")
    for name in ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB"):
        pcie_model = TradeoffModel.from_measured(
            name, results[name].gemm_ticks, results[name].nongemm_ticks
        )
        threshold = nongemm_time_threshold(devmem_model, pcie_model)
        if threshold is None:
            print(f"  vs {name:10s}: PCIe wins at every workload mix")
        else:
            print(
                f"  vs {name:10s}: DevMem wins while non-GEMM share "
                f"< {100 * threshold:.2f}%"
            )


if __name__ == "__main__":
    main(1.0 if "--full" in sys.argv else 0.25)
