#!/usr/bin/env python3
"""Transformer inference across the paper's four system configurations.

Runs ViT inference (reduced hidden dimension for speed; pass --full for
paper-scale) on PCIe-2GB, PCIe-8GB, PCIe-64GB and DevMem systems through
the ``fig7-transformer`` registered sweep, then:

* compares total inference time (Fig. 7 style),
* splits time into GEMM and non-GEMM (Fig. 8 style),
* calibrates the analytical trade-off model and reports the GEMM-fraction
  thresholds where DevMem starts to pay off (Fig. 9 style).

Because the runs go through ``repro.sweep``, they parallelize across
processes (REPRO_SWEEP_WORKERS or --workers) and replay from the on-disk
result cache on a second invocation.

Run:  python examples/transformer_inference.py [--full] [--workers N]
"""

import argparse

from repro import (
    TradeoffModel,
    format_table,
    nongemm_time_threshold,
)
from repro.sweep import build_sweep, run_sweep

MODEL = "base"


def main(dim_scale: float, workers) -> None:
    spec = build_sweep("fig7-transformer", models=(MODEL,),
                       dim_scale=dim_scale, segment=4096)
    print(f"Running ViT-{MODEL} (dim scale {dim_scale:g}) on "
          f"{len(spec)} systems...")
    report = run_sweep(spec, workers=workers)
    results = {name: result for (_model, name), result
               in report.results().items()}
    print(f"  {report.describe()}")
    print()

    baseline = results["PCIe-2GB"].total_ticks
    rows = [
        (
            name,
            f"{r.seconds * 1e3:.2f}",
            f"{baseline / r.total_ticks:.2f}x",
            f"{r.gemm_ticks / 1e9:.2f}",
            f"{r.nongemm_ticks / 1e9:.2f}",
            f"{100 * r.nongemm_fraction:.1f}%",
        )
        for name, r in results.items()
    ]
    print(
        format_table(
            ["system", "total ms", "speedup", "GEMM ms", "non-GEMM ms",
             "non-GEMM %"],
            rows,
            title="ViT inference (Fig. 7 / Fig. 8 style)",
        )
    )
    print()

    devmem_model = TradeoffModel.from_measured(
        "DevMem",
        results["DevMem"].gemm_ticks,
        results["DevMem"].nongemm_ticks,
    )
    print("DevMem-vs-PCIe thresholds (Fig. 9 style; paper: 34.31% / "
          "10.16% / 4.27%):")
    for name in ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB"):
        pcie_model = TradeoffModel.from_measured(
            name, results[name].gemm_ticks, results[name].nongemm_ticks
        )
        threshold = nongemm_time_threshold(devmem_model, pcie_model)
        if threshold is None:
            print(f"  vs {name:10s}: PCIe wins at every workload mix")
        else:
            print(
                f"  vs {name:10s}: DevMem wins while non-GEMM share "
                f"< {100 * threshold:.2f}%"
            )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale hidden dimensions")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count (default: $REPRO_SWEEP_WORKERS)")
    args = parser.parse_args()
    main(1.0 if args.full else 0.25, args.workers)
