#!/usr/bin/env python3
"""Memory hierarchy study: device-side vs host-side, and memory types.

A compact version of the paper's Fig. 5 and Fig. 6 studies:

1. compare GEMM performance with data in device-side memory vs host-side
   memory behind slow and fast PCIe links, across DRAM technologies;
2. sweep device-memory bandwidth and latency independently and observe
   that the accelerator is far more sensitive to bandwidth.

A wide-ingest systolic array (8 elements/cycle) is used so the memory
system, not the array, is the binding constraint, and host-side runs use
the DM access method so memory technology is measured rather than LLC
retention at reduced scale -- see DESIGN.md / EXPERIMENTS.md.

Run:  python examples/memory_hierarchy_study.py
"""

from repro import AccessMode, SystemConfig, format_table, run_gemm
from repro.accel.systolic import SystolicParams
from repro.memory.dram.devices import DDR4_2400, GDDR5, HBM2, LPDDR5
from repro.sim.ticks import ns

SIZE = 128
WIDE_SA = SystolicParams(ingest_elems=8)
GB = 10**9


def location_study() -> None:
    print("=" * 68)
    print(f"Device-side vs host-side memory ({SIZE}x{SIZE} GEMM, Fig. 5 style)")
    print("=" * 68)
    rows = []
    baseline_ticks = None
    for mem in (DDR4_2400, HBM2, GDDR5, LPDDR5):
        dev = run_gemm(
            SystemConfig.devmem_system(devmem=mem, systolic=WIDE_SA),
            SIZE, SIZE, SIZE,
        )
        host_slow = run_gemm(
            SystemConfig.pcie_2gb(
                host_mem=mem, systolic=WIDE_SA,
                access_mode=AccessMode.DIRECT_MEMORY,
            ),
            SIZE, SIZE, SIZE,
        )
        host_fast = run_gemm(
            SystemConfig.pcie_64gb(
                host_mem=mem, systolic=WIDE_SA,
                access_mode=AccessMode.DIRECT_MEMORY,
            ),
            SIZE, SIZE, SIZE,
        )
        if baseline_ticks is None:
            baseline_ticks = dev.ticks  # normalize to device-side DDR4
        rows.append(
            (
                mem.name,
                f"{baseline_ticks / dev.ticks:.2f}",
                f"{baseline_ticks / host_slow.ticks:.2f}",
                f"{baseline_ticks / host_fast.ticks:.2f}",
                f"{dev.ticks / host_fast.ticks:.2f}",
            )
        )
    print(
        format_table(
            [
                "memory",
                "device-side",
                "host @2GB/s",
                "host @64GB/s",
                "fast-host/device",
            ],
            rows,
            title="Normalized speedup (w.r.t. device-side DDR4)",
        )
    )
    print()


def bandwidth_latency_study() -> None:
    print("=" * 68)
    print("Device-memory bandwidth & latency sweeps (Fig. 6 style)")
    print("=" * 68)
    base = SystemConfig.devmem_system(devmem=None, systolic=WIDE_SA)

    rows = []
    times = {}
    for bw_gb in (2, 8, 25, 50, 100, 256):
        config = base.with_(devmem_simple=(ns(40), bw_gb * GB))
        result = run_gemm(config, SIZE, SIZE, SIZE)
        times[bw_gb] = result.ticks
        rows.append((bw_gb, f"{result.seconds * 1e6:.1f}"))
    print(format_table(["bandwidth GB/s", "exec us"], rows,
                       title="(a) bandwidth sweep at 40 ns latency"))
    gain = 100 * (times[2] - times[50]) / times[2]
    tail = 100 * (times[50] - times[256]) / times[50]
    print(f"  2 -> 50 GB/s improves {gain:.1f}%; 50 -> 256 GB/s only {tail:.1f}%\n")

    rows = []
    times = {}
    for lat_ns in (1, 6, 12, 24, 36):
        config = base.with_(devmem_simple=(ns(lat_ns), 64 * GB))
        result = run_gemm(config, SIZE, SIZE, SIZE)
        times[lat_ns] = result.ticks
        rows.append((lat_ns, f"{result.seconds * 1e6:.1f}"))
    print(format_table(["latency ns", "exec us"], rows,
                       title="(b) latency sweep at 64 GB/s"))
    overhead = 100 * (times[36] - times[1]) / times[1]
    print(f"  1 -> 36 ns adds only {overhead:.1f}% (pipelining hides latency)")


if __name__ == "__main__":
    location_study()
    bandwidth_latency_study()
