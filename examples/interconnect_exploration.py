#!/usr/bin/env python3
"""Interconnect exploration: PCIe bandwidth and packet-size effects.

A compact version of the paper's Fig. 3 and Fig. 4 studies:

1. sweep the number of lanes and per-lane speed and watch GEMM execution
   time fall until the systolic array becomes the bottleneck;
2. sweep the request packet size at a fixed link and observe the convex
   curve (small packets pay header overhead, large packets stall the
   store-and-forward hierarchy).

Run:  python examples/interconnect_exploration.py
"""

from repro import SystemConfig, format_table, run_gemm

SIZE = 128


def bandwidth_sweep() -> None:
    print("=" * 64)
    print(f"PCIe bandwidth sweep ({SIZE}x{SIZE} GEMM, Fig. 3 style)")
    print("=" * 64)
    rows = []
    results = {}
    for lanes in (2, 4, 8, 16):
        for gbps in (2.0, 8.0, 32.0):
            config = SystemConfig.table2_baseline().with_pcie_bandwidth(
                lanes, gbps
            )
            result = run_gemm(config, SIZE, SIZE, SIZE)
            results[(lanes, gbps)] = result.ticks
            rows.append(
                (
                    f"x{lanes}",
                    f"{gbps:g} Gb/s",
                    f"{config.pcie.effective_bytes_per_sec / 1e9:.1f}",
                    f"{result.seconds * 1e6:.1f}",
                    f"{result.delivered_bytes_per_sec / 1e9:.2f}",
                )
            )
    print(
        format_table(
            ["lanes", "lane rate", "link GB/s", "exec us", "delivered GB/s"],
            rows,
        )
    )
    worst = max(results.values())
    best = min(results.values())
    print(f"\nBest configuration outperforms worst by {worst / best:.1f}x")
    print()


def packet_size_sweep() -> None:
    print("=" * 64)
    print(f"Packet-size sweep ({SIZE}x{SIZE} GEMM, Fig. 4 style)")
    print("=" * 64)
    base = SystemConfig.pcie_8gb()
    rows = []
    times = {}
    for packet in (64, 128, 256, 512, 1024, 2048, 4096):
        config = base.with_packet_size(packet)
        result = run_gemm(config, SIZE, SIZE, SIZE)
        times[packet] = result.ticks
        rows.append((packet, f"{result.seconds * 1e6:.1f}"))
    best_packet = min(times, key=times.get)
    print(format_table(["packet B", "exec us"], rows))
    print(f"\nOptimal packet size: {best_packet} B")
    for packet in (64, 4096):
        overhead = 100.0 * (times[packet] / times[best_packet] - 1)
        print(f"  {packet:5d} B costs {overhead:+.1f}% vs optimum")


if __name__ == "__main__":
    bandwidth_sweep()
    packet_size_sweep()
