#!/usr/bin/env python3
"""Interconnect exploration: PCIe bandwidth and packet-size effects.

A compact version of the paper's Fig. 3 and Fig. 4 studies, driven
through the sweep engine (``repro.sweep``):

1. sweep the number of lanes and per-lane speed and watch GEMM execution
   time fall until the systolic array becomes the bottleneck;
2. sweep the request packet size at a fixed link and observe the convex
   curve (small packets pay header overhead, large packets stall the
   store-and-forward hierarchy).

Points shard across worker processes (``REPRO_SWEEP_WORKERS``, default:
up to 4) and land in the on-disk result cache, so a second run of this
script replays instantly.  See docs/SWEEPS.md.

Run:  python examples/interconnect_exploration.py
"""

import os

from repro import SystemConfig, format_table
from repro.sweep import WORKERS_ENV, build_sweep, run_sweep

SIZE = 128
#: $REPRO_SWEEP_WORKERS wins; otherwise up to 4 workers.
WORKERS = (None if os.environ.get(WORKERS_ENV)
           else min(4, os.cpu_count() or 1))


def bandwidth_sweep() -> None:
    print("=" * 64)
    print(f"PCIe bandwidth sweep ({SIZE}x{SIZE} GEMM, Fig. 3 style)")
    print("=" * 64)
    spec = build_sweep("pcie-bandwidth", size=SIZE)
    report = run_sweep(spec, workers=WORKERS)
    rows = []
    ticks = {}
    for outcome in report.outcomes:
        lanes, gbps = outcome.key
        result = outcome.result
        ticks[outcome.key] = result.ticks
        rows.append(
            (
                f"x{lanes}",
                f"{gbps:g} Gb/s",
                f"{outcome.point.config.pcie.effective_bytes_per_sec / 1e9:.1f}",
                f"{result.seconds * 1e6:.1f}",
                f"{result.delivered_bytes_per_sec / 1e9:.2f}",
            )
        )
    print(
        format_table(
            ["lanes", "lane rate", "link GB/s", "exec us", "delivered GB/s"],
            rows,
        )
    )
    worst = max(ticks.values())
    best = min(ticks.values())
    print(f"\nBest configuration outperforms worst by {worst / best:.1f}x")
    print(report.describe())
    print()


def packet_size_sweep() -> None:
    print("=" * 64)
    print(f"Packet-size sweep ({SIZE}x{SIZE} GEMM, Fig. 4 style)")
    print("=" * 64)
    spec = build_sweep("packet-size", base=SystemConfig.pcie_8gb(), size=SIZE)
    report = run_sweep(spec, workers=WORKERS)
    results = report.results()
    times = {packet: result.ticks for packet, result in results.items()}
    rows = [
        (packet, f"{result.seconds * 1e6:.1f}")
        for packet, result in results.items()
    ]
    best_packet = min(times, key=times.get)
    print(format_table(["packet B", "exec us"], rows))
    print(f"\nOptimal packet size: {best_packet} B")
    for packet in (64, 4096):
        overhead = 100.0 * (times[packet] / times[best_packet] - 1)
        print(f"  {packet:5d} B costs {overhead:+.1f}% vs optimum")
    print(report.describe())


if __name__ == "__main__":
    bandwidth_sweep()
    packet_size_sweep()
