"""Deterministic fault injection and the resilience machinery.

Covers the guarantees docs/FAULTS.md makes:

* the counter-based PRNG is a pure function of (seed, label, counter),
* a :class:`FaultSpec` rides the config hash (no cache aliasing),
* the fault-free path is bit-identical to a tree without the subsystem
  (zero-overhead off switch: no ``fault_*`` stats, same results),
* injection is bit-identical across reruns, memoized-system resets,
  ``--shard`` slices and ``--domains 1`` vs ``4``,
* the DMA completion-timeout/retry/abort machinery and the driver's
  device-lost refusal behave as specified.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.runner import clear_system_memo, run_gemm, system_for
from repro.faults.prng import draw64, mix64, stream_for, uniform
from repro.faults.spec import (
    EndpointFault,
    FaultSpec,
    LinkFaults,
    RetryPolicy,
    fault_preset,
)
from repro.faults.runner import apply_faults, run_resilience
from repro.sim.ticks import us
from repro.sweep.spec import build_sweep, resolve_runner
from repro.topology import flat_topology


def _noisy_config(rate=1e-2, seed=7, **config_kw):
    return SystemConfig.pcie_2gb(**config_kw).with_faults(FaultSpec(
        seed=seed,
        links=(LinkFaults(link="*", corrupt_rate=rate),),
        retry=RetryPolicy(),
    ))


def _encode(result):
    return resolve_runner("resilience").encode(result)


# ----------------------------------------------------------------------
# PRNG: pure, stable, label-separated
# ----------------------------------------------------------------------
class TestPrng:
    def test_draws_are_pure_functions(self):
        stream = stream_for(7, "system.pcie.up")
        first = [draw64(stream, i) for i in range(64)]
        again = [draw64(stream, i) for i in range(64)]
        assert first == again

    def test_streams_separate_by_seed_and_label(self):
        a = stream_for(7, "system.pcie.up")
        assert stream_for(8, "system.pcie.up") != a
        assert stream_for(7, "system.pcie.down") != a

    def test_uniform_range_and_spread(self):
        stream = stream_for(1, "link")
        values = [uniform(stream, i) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # splitmix64 output should not cluster: crude spread check.
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_mix64_stays_in_64_bits(self):
        assert mix64(2**64 - 1) < 2**64
        assert mix64(0) == 0  # splitmix64 finalizer fixed point


# ----------------------------------------------------------------------
# Spec: validation and cache identity
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_rides_config_hash(self):
        base = SystemConfig.pcie_2gb()
        faulty = base.with_faults(FaultSpec(seed=7))
        assert base.stable_hash() != faulty.stable_hash()
        assert faulty.stable_hash() != base.with_faults(
            FaultSpec(seed=8)
        ).stable_hash()
        canonical = faulty.to_canonical()
        assert canonical["faults"]["seed"] == 7

    def test_endpoint_faults_require_retry_policy(self):
        with pytest.raises(ValueError, match="RetryPolicy"):
            FaultSpec(endpoints=(EndpointFault(endpoint=0, crash_at=1),))

    def test_duplicate_endpoint_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultSpec(
                endpoints=(
                    EndpointFault(endpoint=0, crash_at=1),
                    EndpointFault(endpoint=0, crash_at=2),
                ),
                retry=RetryPolicy(),
            )

    def test_retrain_window_must_fit_period(self):
        with pytest.raises(ValueError, match="shorter"):
            LinkFaults(retrain_period=100, retrain_duration=100)

    def test_link_pattern_first_match_wins(self):
        spec = FaultSpec(links=(
            LinkFaults(link="*.up", corrupt_rate=0.5),
            LinkFaults(link="*", corrupt_rate=0.1),
        ))
        assert spec.link_spec_for("system.pcie.up").corrupt_rate == 0.5
        assert spec.link_spec_for("system.pcie.down").corrupt_rate == 0.1

    def test_presets_build_and_describe(self):
        spec = fault_preset("noisy-wire", seed=11)
        assert spec.seed == 11
        assert "corrupt_rate" in spec.describe()
        with pytest.raises(ValueError, match="unknown fault preset"):
            fault_preset("no-such-preset")


# ----------------------------------------------------------------------
# Zero-overhead off switch
# ----------------------------------------------------------------------
class TestFaultFreePath:
    def test_no_fault_stats_without_a_spec(self):
        result = run_gemm(SystemConfig.pcie_8gb(), 32, 32, 32)
        assert not any("fault_" in key for key in result.component_stats)

    def test_inactive_entries_change_nothing(self):
        """A spec whose link entries inject nothing attaches nothing:
        results are bit-identical to ``faults=None`` (same ticks, same
        stat snapshot -- the golden values hold with the field set)."""
        clean = run_gemm(SystemConfig.pcie_8gb(), 32, 32, 32)
        noop = run_gemm(
            SystemConfig.pcie_8gb().with_faults(FaultSpec(
                seed=7, links=(LinkFaults(link="*", corrupt_rate=0.0),),
            )),
            32, 32, 32,
        )
        assert noop.ticks == clean.ticks
        assert noop.component_stats == clean.component_stats

    def test_cxl_port_refuses_fault_spec(self):
        with pytest.raises(ValueError, match="CXL|PCIe"):
            system_for(SystemConfig.cxl_host().with_faults(
                FaultSpec(seed=7,
                          links=(LinkFaults(link="*", corrupt_rate=0.1),))
            ))


# ----------------------------------------------------------------------
# Injection determinism
# ----------------------------------------------------------------------
class TestInjectionDeterminism:
    def test_rerun_and_reset_are_bit_identical(self):
        """Two runs through the memoized-system path (the second rides
        ``reset()``) and a fresh-build run all agree record-for-record."""
        config = _noisy_config()
        first = _encode(run_resilience(config, size_bytes=16384,
                                       transfers=4))
        second = _encode(run_resilience(config, size_bytes=16384,
                                        transfers=4))
        assert first == second
        clear_system_memo()
        fresh = _encode(run_resilience(config, size_bytes=16384,
                                       transfers=4))
        assert fresh == first
        assert first["replays"] > 0  # the schedule actually injected

    def test_domains_1_vs_4_bit_identical(self):
        base = SystemConfig.pcie_2gb().with_topology(
            flat_topology(4)
        ).with_faults(FaultSpec(
            seed=7,
            links=(LinkFaults(link="*", corrupt_rate=5e-3),),
            retry=RetryPolicy(),
        ))
        serial = _encode(run_resilience(base, size_bytes=16384,
                                        transfers=8))
        parallel = _encode(run_resilience(base.with_domains(4),
                                          size_bytes=16384, transfers=8))
        assert serial == parallel
        assert serial["replays"] > 0

    def test_shard_slices_compose_bit_identical(self, tmp_path):
        """Shard 1/2 + 2/2 into one cache equals the unsharded run."""
        from repro.sweep import parse_shard, run_sweep

        spec = build_sweep("resilience-error-rate", transfers=2,
                           size_bytes=8192, rates=(0.0, 1e-2))
        full = run_sweep(spec, cache=False)
        cache_dir = tmp_path / "cache"
        for shard in ("1/2", "2/2"):
            run_sweep(spec, cache_dir=cache_dir,
                      shard=parse_shard(shard))
        merged = run_sweep(spec, cache_dir=cache_dir)
        assert merged.fully_cached
        assert {repr(o.key): o.record for o in merged.outcomes} == \
               {repr(o.key): o.record for o in full.outcomes}

    def test_seed_changes_the_schedule(self):
        a = run_resilience(_noisy_config(seed=7), size_bytes=65536,
                           transfers=4)
        b = run_resilience(_noisy_config(seed=8), size_bytes=65536,
                           transfers=4)
        assert a.replays != b.replays or a.ticks != b.ticks


# ----------------------------------------------------------------------
# Retry/timeout/abort machinery
# ----------------------------------------------------------------------
class TestRetryMachinery:
    def test_stall_window_retries_then_completes(self):
        """Completions dropped in a transient stall window come back
        through timeout-driven retries; nothing aborts."""
        config = SystemConfig.pcie_2gb().with_faults(FaultSpec(
            seed=7,
            endpoints=(EndpointFault(endpoint=0, stall_from=us(10),
                                     stall_until=us(250)),),
            retry=RetryPolicy(),
        ))
        result = run_resilience(config, size_bytes=16384, transfers=4)
        assert result.completed == result.transfers
        assert result.aborted == 0
        assert result.timeouts > 0
        assert result.retries > 0

    def test_crash_aborts_with_device_lost_error(self):
        config = SystemConfig.pcie_2gb().with_topology(
            flat_topology(4)
        ).with_faults(FaultSpec(
            seed=7,
            endpoints=(EndpointFault(endpoint=0, crash_at=us(5)),),
            retry=RetryPolicy(completion_timeout=us(50)),
        ))
        result = run_resilience(config, size_bytes=16384, transfers=8)
        # Endpoint 0's two transfers die; the other three devices finish.
        assert result.device_lost == [0]
        assert result.aborted == 2
        assert result.completed == 6
        assert result.timeouts > 0

    def test_abort_sets_descriptor_error(self):
        from repro.dma import DMADescriptor, DMADirection

        config = SystemConfig.pcie_2gb().with_faults(FaultSpec(
            seed=7,
            endpoints=(EndpointFault(endpoint=0, crash_at=0),),
            retry=RetryPolicy(completion_timeout=us(20), max_retries=1),
        ))
        system = system_for(config)
        addr = system.alloc_buffer("abort-probe", 4096)
        descriptor = DMADescriptor(addr=addr, size=4096,
                                   direction=DMADirection.DEVICE_TO_HOST)
        done = []
        system.wrapper.dma.submit(descriptor, done.append)
        system.run()
        assert done and done[0] is descriptor
        assert descriptor.completed_at is not None
        assert "device lost" in descriptor.error

    def test_retry_budget_bounds_outstanding_retries(self):
        with pytest.raises(ValueError, match="retry budget"):
            RetryPolicy(retry_budget=0)

    def test_driver_refuses_launch_on_lost_device(self):
        from repro.faults.spec import DeviceLostError

        config = SystemConfig.pcie_2gb().with_faults(FaultSpec(
            seed=7,
            endpoints=(EndpointFault(endpoint=0, crash_at=0),),
            retry=RetryPolicy(),
        ))
        system = system_for(config)
        workload_addr = system.alloc_buffer("refuse-probe", 4096)
        with pytest.raises(DeviceLostError, match="refusing to launch"):
            system.driver.launch_gemm(
                16, 16, 16, workload_addr, workload_addr, workload_addr,
                lambda job, stats: None,
            )


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestSweepIntegration:
    def test_apply_faults_overlays_every_point(self):
        spec = build_sweep("packet-size", size=32)
        overlay = apply_faults(spec, fault_preset("noisy-wire"))
        assert all(p.config.faults is not None for p in overlay.points)
        assert apply_faults(spec, None) is spec
        # Overlaid points can never alias the fault-free grid.
        keys = {p.config.stable_hash() for p in spec.points}
        overlay_keys = {p.config.stable_hash() for p in overlay.points}
        assert keys.isdisjoint(overlay_keys)

    def test_resilience_sweeps_registered_and_cached(self, tmp_path):
        from repro.sweep import run_sweep

        spec = build_sweep("resilience-error-rate", transfers=2,
                           size_bytes=8192, rates=(1e-2,))
        first = run_sweep(spec, cache_dir=tmp_path)
        second = run_sweep(spec, cache_dir=tmp_path)
        assert second.fully_cached
        assert [o.record for o in first.outcomes] == \
               [o.record for o in second.outcomes]

    def test_all_resilience_sweeps_build(self):
        for name in ("resilience-error-rate", "resilience-retrain-storm",
                     "resilience-slow-link", "resilience-crash"):
            spec = build_sweep(name)
            assert spec.runner == "resilience"
            assert len(spec.points) >= 3
