"""Unit tests for the DRAM energy model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController
from repro.memory.dram.devices import DDR3_1600, DDR4_2400, HBM2
from repro.memory.dram.energy import (
    ENERGY_PRESETS,
    DRAMEnergyParams,
    EnergyReport,
    energy_params_for,
    integrate_energy,
)
from repro.sim.eventq import Simulator
from repro.sim.ticks import from_seconds, ns
from repro.sim.transaction import Transaction


class TestParams:
    def test_lookup_by_prefix(self):
        assert energy_params_for("DDR4-2400") is ENERGY_PRESETS["DDR4"]
        assert energy_params_for("HBM2") is ENERGY_PRESETS["HBM2"]
        assert energy_params_for("GDDR5") is ENERGY_PRESETS["GDDR"]

    def test_unknown_gets_defaults(self):
        params = energy_params_for("FeRAM-9000")
        assert isinstance(params, DRAMEnergyParams)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DRAMEnergyParams(e_act_pj=-1)

    def test_hbm_cheaper_per_byte_than_ddr3(self):
        assert (
            ENERGY_PRESETS["HBM2"].e_rd_pj_per_byte
            < ENERGY_PRESETS["DDR3"].e_rd_pj_per_byte
        )


class TestIntegration:
    def test_component_arithmetic(self):
        params = DRAMEnergyParams(
            e_act_pj=1000.0, e_rd_pj_per_byte=10.0,
            e_wr_pj_per_byte=20.0, e_ref_pj=5000.0, p_background_mw=100.0,
        )
        report = integrate_energy(
            params, activates=10, bytes_read=100, bytes_written=50,
            refreshes=2, channels=1, elapsed_ticks=from_seconds(1e-6),
        )
        assert report.activate_nj == pytest.approx(10.0)
        assert report.read_nj == pytest.approx(1.0)
        assert report.write_nj == pytest.approx(1.0)
        assert report.refresh_nj == pytest.approx(10.0)
        # 100 mW for 1 us = 100 nJ.
        assert report.background_nj == pytest.approx(100.0)
        assert report.total_nj == pytest.approx(122.0)

    def test_average_power(self):
        report = EnergyReport(0, 0, 0, 0, background_nj=100.0)
        # 100 nJ over 1 us = 100 mW.
        assert report.average_power_mw(from_seconds(1e-6)) == pytest.approx(100.0)

    def test_energy_per_bit(self):
        report = EnergyReport(0, 800.0, 0, 0, 0)
        # 800 nJ over 100 bytes = 1000 pJ/bit.
        assert report.energy_per_bit_pj(100) == pytest.approx(1000.0)

    def test_degenerate_inputs(self):
        report = EnergyReport(0, 0, 0, 0, 0)
        assert report.average_power_mw(0) == 0.0
        assert report.energy_per_bit_pj(0) == 0.0


class TestControllerEnergy:
    def stream(self, timings, nbytes):
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", timings, AddrRange(0, 1 << 24))
        addr = 0
        while addr < nbytes:
            ctrl.send(Transaction.read(addr, 4096), lambda t: None)
            addr += 4096
        sim.run()
        return ctrl, sim.now

    def test_energy_grows_with_traffic(self):
        ctrl_small, t_small = self.stream(DDR4_2400, 64 * 1024)
        ctrl_large, t_large = self.stream(DDR4_2400, 1 << 20)
        small = ctrl_small.energy_report(t_small)
        large = ctrl_large.energy_report(t_large)
        assert large.dynamic_nj > small.dynamic_nj

    def test_hbm_more_efficient_per_bit(self):
        nbytes = 1 << 20
        ctrl_ddr3, t_a = self.stream(DDR3_1600, nbytes)
        ctrl_hbm, t_b = self.stream(HBM2, nbytes)
        ddr3 = ctrl_ddr3.energy_report(t_a).energy_per_bit_pj(nbytes)
        hbm = ctrl_hbm.energy_report(t_b).energy_per_bit_pj(nbytes)
        assert hbm < ddr3

    def test_refresh_energy_counted(self):
        ctrl, now = self.stream(DDR4_2400, 1 << 20)
        # Push the clock past several refresh intervals.
        later = now + 100 * ns(DDR4_2400.t_refi)
        report = ctrl.energy_report(later)
        assert report.refresh_nj > 0

    @settings(max_examples=15, deadline=None)
    @given(kb=st.integers(min_value=16, max_value=512))
    def test_total_is_sum_of_parts(self, kb):
        ctrl, now = self.stream(DDR4_2400, kb * 1024)
        report = ctrl.energy_report(now)
        assert report.total_nj == pytest.approx(
            report.activate_nj + report.read_nj + report.write_nj
            + report.refresh_nj + report.background_nj
        )
