"""Unit tests for the accelerator controller (tiling + overlap)."""

import numpy as np
import pytest

from repro.accel.controller import AcceleratorController, GemmJob
from repro.accel.local_buffer import LocalBuffer
from repro.accel.systolic import SystolicArray, SystolicParams
from repro.dma import DMAEngine
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns


def make_controller(target_latency=ns(200), ingest=16, capacity=512 * 1024,
                    prefetch_depth=2, reuse_a=False):
    sim = Simulator()
    target = FixedLatencyTarget(sim, "path", latency=target_latency)
    sa = SystolicArray(sim, "sa", SystolicParams(ingest_elems=ingest))
    buf = LocalBuffer(sim, "lbuf", capacity=capacity)
    dma = DMAEngine(sim, "dma", target, max_outstanding=16)
    ctrl = AcceleratorController(
        sim, "ctrl", sa, buf, dma,
        prefetch_depth=prefetch_depth, reuse_a_panels=reuse_a,
    )
    return sim, ctrl, target


def run_job(sim, ctrl, job):
    results = []
    ctrl.launch(job, lambda j, s: results.append((j, s)))
    sim.run()
    assert results, "job never completed"
    return results[0]


def simple_job(m=32, k=64, n=32, **kw):
    return GemmJob(m=m, k=k, n=n, a_addr=0x10000, b_addr=0x40000,
                   c_addr=0x80000, **kw)


class TestJobValidation:
    def test_bad_dims(self):
        with pytest.raises(ValueError):
            GemmJob(m=0, k=4, n=4, a_addr=0, b_addr=0, c_addr=0)

    def test_operand_shape_checked(self):
        with pytest.raises(ValueError):
            GemmJob(m=4, k=4, n=4, a_addr=0, b_addr=0, c_addr=0,
                    a_data=np.zeros((2, 2), dtype=np.int32),
                    b_data=np.zeros((4, 4), dtype=np.int32))

    def test_traffic_model(self):
        job = simple_job(m=32, k=64, n=32)
        # 2x2 tiles; per tile: A panel 16*64*4 + B panel 64*16*4 = 8192.
        assert job.traffic_bytes() == 4 * 8192
        # With A reuse: A fetched once per tile row.
        assert job.traffic_bytes(reuse_a=True) == 2 * 4096 + 4 * 4096


class TestExecution:
    def test_all_tiles_computed(self):
        sim, ctrl, _ = make_controller()
        job, stats = run_job(sim, ctrl, simple_job(m=64, k=64, n=64))
        assert stats["tiles"] == 16
        assert ctrl.stats["tiles"].value == 16
        assert ctrl.stats["jobs"].value == 1

    def test_partial_tiles(self):
        sim, ctrl, _ = make_controller()
        job, stats = run_job(sim, ctrl, simple_job(m=20, k=32, n=40))
        # ceil(20/16) x ceil(40/16) = 2 x 3.
        assert stats["tiles"] == 6

    def test_busy_flag(self):
        sim, ctrl, _ = make_controller()
        ctrl.launch(simple_job(), lambda j, s: None)
        assert ctrl.busy
        with pytest.raises(RuntimeError):
            ctrl.launch(simple_job(), lambda j, s: None)
        sim.run()
        assert not ctrl.busy

    def test_functional_result_matches_numpy(self):
        sim, ctrl, _ = make_controller()
        rng = np.random.default_rng(7)
        m, k, n = 48, 32, 48
        a = rng.integers(-50, 50, size=(m, k), dtype=np.int32)
        b = rng.integers(-50, 50, size=(k, n), dtype=np.int32)
        job, _ = run_job(
            sim, ctrl, simple_job(m=m, k=k, n=n, a_data=a, b_data=b)
        )
        np.testing.assert_array_equal(job.c_result, a @ b)

    def test_buffer_drained_at_end(self):
        sim, ctrl, _ = make_controller()
        run_job(sim, ctrl, simple_job())
        assert ctrl.local_buffer.in_use == 0

    def test_prefetch_overlaps_compute(self):
        """Deep prefetch should beat no prefetch with a slow data path."""

        def run(depth):
            sim, ctrl, _ = make_controller(
                target_latency=ns(5000), prefetch_depth=depth, ingest=16
            )
            _, stats = run_job(sim, ctrl, simple_job(m=64, k=64, n=64))
            return stats["ticks"]

        assert run(4) < run(1)

    def test_reuse_a_reduces_traffic(self):
        sim_a, ctrl_a, target_a = make_controller(reuse_a=False)
        run_job(sim_a, ctrl_a, simple_job(m=64, k=64, n=64))
        no_reuse_reads = ctrl_a.dma.stats["bytes_read"].value

        sim_b, ctrl_b, target_b = make_controller(reuse_a=True)
        run_job(sim_b, ctrl_b, simple_job(m=64, k=64, n=64))
        reuse_reads = ctrl_b.dma.stats["bytes_read"].value
        assert reuse_reads < no_reuse_reads

    def test_writebacks_counted(self):
        sim, ctrl, _ = make_controller()
        _, stats = run_job(sim, ctrl, simple_job(m=32, k=32, n=32))
        assert stats["bytes_written"] == 4 * 16 * 16 * 4

    def test_tiny_buffer_still_completes(self):
        # Buffer fits exactly one tile's panels: serialized but correct.
        k = 64
        pair = 2 * 16 * k * 4
        sim, ctrl, _ = make_controller(capacity=pair)
        _, stats = run_job(sim, ctrl, simple_job(m=32, k=k, n=32))
        assert stats["tiles"] == 4

    def test_validation(self):
        sim = Simulator()
        target = FixedLatencyTarget(sim, "t", 1)
        sa = SystolicArray(sim, "sa", SystolicParams())
        buf = LocalBuffer(sim, "b")
        dma = DMAEngine(sim, "d", target)
        with pytest.raises(ValueError):
            AcceleratorController(sim, "c", sa, buf, dma, prefetch_depth=0)
