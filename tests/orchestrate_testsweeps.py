"""Test-only registered sweeps for the orchestrator suite.

Imported by name on *worker subprocesses* through the run manifest's
``extra_imports`` hook (the tests put this directory on ``PYTHONPATH``
before launching backends), which doubles as coverage for the hook
itself: user-registered sweeps must be orchestratable.

The ``orch-test-slow`` sweep exists because real simulation points at
test scale finish in milliseconds -- far too fast to reliably kill a
worker *mid-shard*.  Its runner sleeps a configurable delay per point
and returns a deterministic record, so crash-injection tests get a
predictable window while bit-identity checks stay trivial.
"""

import time

from repro.core.config import SystemConfig
from repro.sweep.spec import SweepPoint, SweepSpec, register_sweep


def run_slow_point(config, tag: int = 0, delay: float = 0.0, **_ignored):
    """Deterministic 'simulation': sleep, then a record derived from
    the point tag and config (so different points differ)."""
    if delay:
        time.sleep(delay)
    return {"tag": tag, "value": tag * 7 + 1, "packet": config.packet_size}


@register_sweep("orch-test-slow")
def orch_test_slow_sweep(points: int = 6, delay: float = 0.3) -> SweepSpec:
    """Orchestrator test grid: ``points`` points, ``delay`` s each."""
    base = SystemConfig.table2_baseline()
    grid = [
        SweepPoint(key=i, config=base, params={"tag": i, "delay": delay})
        for i in range(points)
    ]
    return SweepSpec(name="orch-test-slow", points=grid,
                     runner=run_slow_point)
