"""Unit tests for workload definitions (ops, GEMM packing, ViT graphs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    VIT_VARIANTS,
    GemmWorkload,
    OpGraph,
    ViTConfig,
    build_vit_graph,
    pack_a_panels,
    pack_b_panels,
    unpack_c_tiles,
)
from repro.workloads.ops import GemmOp, NonGemmOp


class TestOps:
    def test_gemm_op_flops(self):
        op = GemmOp("qkv", (), (), m=197, k=768, n=2304)
        assert op.flops == 2 * 197 * 768 * 2304

    def test_gemm_batch(self):
        op = GemmOp("qk", (), (), m=197, k=64, n=197, batch=12)
        assert op.flops == 12 * 2 * 197 * 64 * 197

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmOp("bad", (), (), m=0, k=1, n=1)
        with pytest.raises(ValueError):
            NonGemmOp("bad", (), (), op_type="add", elements=0)

    def test_graph_tensor_tracking(self):
        graph = OpGraph("g")
        graph.add_tensor("x", 1024)
        with pytest.raises(ValueError):
            graph.add_tensor("x", 2048)  # size conflict
        with pytest.raises(ValueError):
            graph.add(GemmOp("op", ("missing",), ("x",), m=1, k=1, n=1))

    def test_graph_partition(self):
        graph = OpGraph("g")
        graph.add_tensor("a", 64)
        graph.add(GemmOp("g1", ("a",), ("a",), m=16, k=16, n=16))
        graph.add(NonGemmOp("n1", ("a",), ("a",), op_type="add", elements=16))
        assert len(graph.gemm_ops()) == 1
        assert len(graph.nongemm_ops()) == 1


class TestPacking:
    def test_pack_a_round_trip_via_layout(self):
        a = np.arange(32 * 8, dtype=np.int32).reshape(32, 8)
        packed = pack_a_panels(a, tile=16)
        # Panel 0 = rows 0..15 in row-major order.
        panel0 = packed.view(np.int32)[: 16 * 8].reshape(16, 8)
        np.testing.assert_array_equal(panel0, a[:16])

    def test_pack_a_pads_ragged(self):
        a = np.ones((20, 4), dtype=np.int32)
        packed = pack_a_panels(a, tile=16)
        assert packed.view(np.int32).size == 32 * 4
        tail = packed.view(np.int32)[20 * 4:]
        assert not tail.any()

    def test_pack_b_panel_layout(self):
        b = np.arange(8 * 32, dtype=np.int32).reshape(8, 32)
        packed = pack_b_panels(b, tile=16)
        # Panel 1 = columns 16..31, row-major inside the panel.
        panel1 = packed.view(np.int32)[8 * 16:].reshape(8, 16)
        np.testing.assert_array_equal(panel1, b[:, 16:])

    def test_unpack_c_round_trip(self):
        rng = np.random.default_rng(3)
        c = rng.integers(-100, 100, size=(48, 32), dtype=np.int32)
        # Build the tile-major buffer by hand.
        tiles = []
        for i in range(3):
            for j in range(2):
                tiles.append(
                    c[i * 16:(i + 1) * 16, j * 16:(j + 1) * 16].copy()
                )
        raw = np.concatenate([t.reshape(-1) for t in tiles]).view(np.uint8)
        np.testing.assert_array_equal(unpack_c_tiles(raw, 48, 32), c)

    def test_unpack_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            unpack_c_tiles(np.zeros(100, dtype=np.uint8), 16, 16)

    @settings(max_examples=20)
    @given(
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=20),
    )
    def test_pack_a_size_property(self, m, k):
        a = np.ones((m, k), dtype=np.int32)
        packed = pack_a_panels(a, tile=16)
        padded_m = -(-m // 16) * 16
        assert packed.size == padded_m * k * 4


class TestGemmWorkload:
    def test_reproducible(self):
        w = GemmWorkload(32, 32, 32, seed=5)
        a1, b1 = w.generate()
        a2, b2 = w.generate()
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_reference_result(self):
        w = GemmWorkload(16, 16, 16)
        a, b = w.generate()
        np.testing.assert_array_equal(w.reference(a, b), a @ b)

    def test_buffer_sizes_padded(self):
        w = GemmWorkload(20, 32, 40)
        assert w.a_bytes == 32 * 32 * 4
        assert w.b_bytes == 32 * 48 * 4
        assert w.c_bytes == 32 * 48 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmWorkload(0, 1, 1)


class TestViT:
    def test_paper_variants(self):
        assert VIT_VARIANTS["base"].hidden == 768
        assert VIT_VARIANTS["large"].hidden == 1024
        assert VIT_VARIANTS["huge"].hidden == 1280
        assert VIT_VARIANTS["base"].heads == 12
        assert VIT_VARIANTS["large"].heads == 16

    def test_seq_len(self):
        # 224/16 = 14 -> 196 patches + CLS.
        assert VIT_VARIANTS["base"].seq_len == 197

    def test_graph_op_counts(self):
        config = VIT_VARIANTS["base"]
        graph = build_vit_graph(config)
        # Per layer: 6 GEMM (qkv, qk, av, proj, fc1, fc2) + 6 non-GEMM;
        # plus embed/head GEMMs and patchify/ln_f/pool non-GEMMs.
        assert len(graph.gemm_ops()) == config.layers * 6 + 2
        assert len(graph.nongemm_ops()) == config.layers * 6 + 3

    def test_gemm_flops_scale_with_model(self):
        base = build_vit_graph(VIT_VARIANTS["base"]).total_gemm_flops
        large = build_vit_graph(VIT_VARIANTS["large"]).total_gemm_flops
        huge = build_vit_graph(VIT_VARIANTS["huge"]).total_gemm_flops
        assert base < large < huge

    def test_attention_shapes(self):
        graph = build_vit_graph(VIT_VARIANTS["base"])
        qk = next(op for op in graph.gemm_ops() if op.name == "l0.qk")
        assert (qk.m, qk.k, qk.n) == (197, 64, 197)
        assert qk.batch == 12

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            ViTConfig("bad", hidden=100, layers=1, heads=12)

    def test_image_patch_divisibility(self):
        with pytest.raises(ValueError):
            ViTConfig("bad", hidden=96, layers=1, heads=12, image_size=225)

    def test_custom_tiny_model(self):
        tiny = ViTConfig("tiny", hidden=64, layers=2, heads=4,
                         image_size=64, patch_size=16)
        graph = build_vit_graph(tiny)
        assert tiny.seq_len == 17
        assert graph.total_gemm_flops > 0
