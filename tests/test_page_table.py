"""Unit and property tests for the radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smmu.page_table import (
    LEVELS,
    PAGE_SIZE,
    PageFault,
    PageTable,
)

TABLE_BASE = 0x8000_0000


def make_table():
    return PageTable(TABLE_BASE)


class TestMapping:
    def test_map_and_translate(self):
        pt = make_table()
        pt.map_page(0x1000, 0x40000)
        assert pt.translate(0x1000) == 0x40000
        assert pt.translate(0x1234) == 0x40234

    def test_unmapped_faults(self):
        pt = make_table()
        with pytest.raises(PageFault):
            pt.translate(0xDEAD000)

    def test_unaligned_mapping_rejected(self):
        pt = make_table()
        with pytest.raises(ValueError):
            pt.map_page(0x1001, 0x2000)
        with pytest.raises(ValueError):
            pt.map_page(0x1000, 0x2001)

    def test_map_range_counts_pages(self):
        pt = make_table()
        pages = pt.map_range(0x10000, 0x200000, 3 * PAGE_SIZE)
        assert pages == 3
        assert pt.mapped_pages == 3

    def test_map_range_partial_pages(self):
        pt = make_table()
        # 1 byte crossing a boundary needs 2 pages.
        pages = pt.map_range(PAGE_SIZE - 1, 0x100000 + PAGE_SIZE - 1, 2)
        assert pages == 2

    def test_map_range_preserves_offset(self):
        pt = make_table()
        pt.map_range(0x10000, 0x900000, 4 * PAGE_SIZE)
        for offset in (0, 0x1111, 0x3FFF):
            assert pt.translate(0x10000 + offset) == 0x900000 + offset

    def test_remap_does_not_double_count(self):
        pt = make_table()
        pt.map_page(0x1000, 0x2000)
        pt.map_page(0x1000, 0x3000)
        assert pt.mapped_pages == 1
        assert pt.translate(0x1000) == 0x3000

    def test_zero_size_range_rejected(self):
        pt = make_table()
        with pytest.raises(ValueError):
            pt.map_range(0, 0, 0)

    def test_is_mapped(self):
        pt = make_table()
        pt.map_page(0x5000, 0x6000)
        assert pt.is_mapped(0x5000)
        assert not pt.is_mapped(0x7000)


class TestWalkPath:
    def test_walk_path_has_all_levels(self):
        pt = make_table()
        pt.map_page(0x1000, 0x2000)
        path = pt.walk_path(1)
        assert len(path) == LEVELS
        assert [level for level, _ in path] == list(range(LEVELS))

    def test_walk_path_addresses_in_table_region(self):
        pt = make_table()
        pt.map_page(0x1000, 0x2000)
        for _, pte_addr in pt.walk_path(1):
            assert TABLE_BASE <= pte_addr < TABLE_BASE + pt.table_bytes

    def test_walk_path_unmapped_faults(self):
        pt = make_table()
        with pytest.raises(PageFault):
            pt.walk_path(123)

    def test_shared_interior_nodes(self):
        pt = make_table()
        pt.map_page(0x1000, 0x2000)
        before = pt.table_bytes
        pt.map_page(0x2000, 0x3000)  # same leaf node
        assert pt.table_bytes == before

    def test_distant_mappings_allocate_new_nodes(self):
        pt = make_table()
        pt.map_page(0x1000, 0x2000)
        before = pt.table_bytes
        pt.map_page(1 << 40, 0x3000)  # far away -> new interior nodes
        assert pt.table_bytes > before


class TestPageTableProperties:
    @settings(max_examples=50)
    @given(
        vpage=st.integers(min_value=0, max_value=1 << 30),
        ppage=st.integers(min_value=0, max_value=1 << 30),
        offset=st.integers(min_value=0, max_value=PAGE_SIZE - 1),
    )
    def test_translate_round_trip(self, vpage, ppage, offset):
        pt = make_table()
        vaddr = vpage * PAGE_SIZE
        paddr = ppage * PAGE_SIZE
        pt.map_page(vaddr, paddr)
        assert pt.translate(vaddr + offset) == paddr + offset

    @settings(max_examples=25)
    @given(
        mappings=st.dictionaries(
            st.integers(min_value=0, max_value=10000),
            st.integers(min_value=0, max_value=10000),
            min_size=1,
            max_size=30,
        )
    )
    def test_many_mappings_independent(self, mappings):
        pt = make_table()
        for vpn, pfn in mappings.items():
            pt.map_page(vpn * PAGE_SIZE, pfn * PAGE_SIZE)
        for vpn, pfn in mappings.items():
            assert pt.translate(vpn * PAGE_SIZE) == pfn * PAGE_SIZE
        assert pt.mapped_pages == len(mappings)
